//! # dpvk — Dynamic compilation of data-parallel kernels for vector processors
//!
//! A Rust reproduction of Kerr, Diamos & Yalamanchili, *"Dynamic
//! Compilation of Data-Parallel Kernels for Vector Processors"* (CGO
//! 2012): a dynamic compiler that maps bulk-synchronous SPMD kernels onto
//! CPU SIMD units by statically interleaving scalar threads
//! (*vectorization*), tolerating control-flow divergence with a
//! software-only context switch (*yield-on-diverge*), and re-forming warps
//! at runtime in a dynamic execution manager.
//!
//! This façade crate re-exports the workspace's public API:
//!
//! * [`ptx`] — the PTX-like virtual ISA: parser, builder, analyses.
//! * [`ir`] — the typed vector IR and its optimization pipeline.
//! * [`vm`] — the simulated vector machine (interpreter + cost model).
//! * [`core`] — translation, vectorization, translation cache, execution
//!   manager, and the CUDA-runtime-like [`Device`](core::Device) API.
//! * [`workloads`] — the 22-kernel benchmark suite of the evaluation.
//! * [`trace`] — structured tracing, metrics and profiling hooks across
//!   the compile + execute pipeline (set `DPVK_TRACE=1` to enable).
//! * [`server`] — the hardened multi-tenant kernel service: wire
//!   protocol, admission control, load shedding and
//!   retry-with-degradation on top of the device pool.
//!
//! ## Quickstart
//!
//! ```
//! use dpvk::core::{Device, ExecConfig, ParamValue};
//! use dpvk::vm::MachineModel;
//!
//! let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
//! dev.register_source(
//!     r#"
//! .kernel axpy (.param .u64 xs, .param .u64 ys, .param .f32 a, .param .u32 n) {
//!   .reg .u32 %r<4>;
//!   .reg .u64 %rd<4>;
//!   .reg .f32 %f<4>;
//!   .reg .pred %p<2>;
//! entry:
//!   mov.u32 %r0, %tid.x;
//!   mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
//!   ld.param.u32 %r1, [n];
//!   setp.ge.u32 %p0, %r0, %r1;
//!   @%p0 bra done;
//!   cvt.u64.u32 %rd0, %r0;
//!   shl.u64 %rd0, %rd0, 2;
//!   ld.param.u64 %rd1, [xs];
//!   add.u64 %rd1, %rd1, %rd0;
//!   ld.global.f32 %f0, [%rd1];
//!   ld.param.u64 %rd2, [ys];
//!   add.u64 %rd2, %rd2, %rd0;
//!   ld.global.f32 %f1, [%rd2];
//!   ld.param.f32 %f2, [a];
//!   fma.rn.f32 %f1, %f0, %f2, %f1;
//!   st.global.f32 [%rd2], %f1;
//! done:
//!   ret;
//! }
//! "#,
//! )?;
//! let n = 100u32;
//! // RAII buffers: freed back to the device heap's size-classed free
//! // lists when they go out of scope.
//! let xs = dev.alloc(n as usize * 4)?;
//! let ys = dev.alloc(n as usize * 4)?;
//! dev.copy_f32_htod(xs.ptr(), &vec![1.0; n as usize])?;
//! dev.copy_f32_htod(ys.ptr(), &vec![2.0; n as usize])?;
//! dev.launch(
//!     "axpy",
//!     [2, 1, 1],
//!     [64, 1, 1],
//!     &[
//!         ParamValue::Ptr(xs.ptr()),
//!         ParamValue::Ptr(ys.ptr()),
//!         ParamValue::F32(3.0),
//!         ParamValue::U32(n),
//!     ],
//!     &ExecConfig::dynamic(4),
//! )?;
//! let out = dev.copy_f32_dtoh(ys.ptr(), n as usize)?;
//! assert!(out.iter().all(|&v| v == 5.0));
//! # Ok::<(), dpvk::core::CoreError>(())
//! ```

#![warn(missing_docs)]

pub use dpvk_core as core;
pub use dpvk_ir as ir;
pub use dpvk_ptx as ptx;
pub use dpvk_server as server;
pub use dpvk_trace as trace;
pub use dpvk_vm as vm;
pub use dpvk_workloads as workloads;
