//! Benchmarks of the dynamic compiler itself: parse, translate,
//! vectorize, optimize. These measure real wall time on the host (the
//! paper's compilation-cost dimension).
//!
//! Plain timing harness (no external benchmark dependency): each case is
//! warmed up, then timed over enough iterations to smooth scheduler
//! noise, reporting the per-iteration mean and minimum.

use dpvk_core::{specialize, translate, SpecializeOptions};
use dpvk_ptx::parse_kernel;
use dpvk_workloads::workload;
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over repeated batches and print mean / best per-iteration ns.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Warm-up, and a rough calibration of how many iterations fit in a
    // few milliseconds.
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1);
    let iters = ((5_000_000 / once).clamp(1, 10_000)) as u32;

    let mut best = u128::MAX;
    let mut total = 0u128;
    const BATCHES: u32 = 20;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() / iters as u128;
        best = best.min(ns);
        total += ns;
    }
    let mean = total / BATCHES as u128;
    println!("{name:<40} mean {mean:>12} ns/iter   best {best:>12} ns/iter   ({iters} iters x {BATCHES})");
}

fn source() -> String {
    workload("blackscholes").expect("suite includes blackscholes").source()
}

fn main() {
    let src = source();
    bench("parse blackscholes", || {
        black_box(parse_kernel(black_box(&src)).unwrap());
    });

    let kernel = parse_kernel(&src).unwrap();
    bench("translate blackscholes", || {
        black_box(translate(black_box(&kernel)).unwrap());
    });

    let tk = translate(&kernel).unwrap();
    for w in [1u32, 2, 4, 8] {
        bench(&format!("specialize blackscholes w{w}"), || {
            black_box(specialize(black_box(&tk), &SpecializeOptions::dynamic(w)).unwrap());
        });
    }
    let no_opt = SpecializeOptions { optimize: false, ..SpecializeOptions::dynamic(4) };
    bench("specialize blackscholes w4 no-opt", || {
        black_box(specialize(black_box(&tk), &no_opt).unwrap());
    });

    let unoptimized = specialize(&tk, &no_opt).unwrap().function;
    bench("optimization pipeline w4", || {
        let mut f = unoptimized.clone();
        black_box(dpvk_ir::opt::standard_pipeline(&mut f));
    });

    if let Err(e) = dpvk_trace::write_if_enabled() {
        eprintln!("warning: failed to write trace report: {e}");
    }
}
