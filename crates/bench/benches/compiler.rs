//! Criterion benchmarks of the dynamic compiler itself: parse, translate,
//! vectorize, optimize. These measure real wall time on the host (the
//! paper's compilation-cost dimension).

use criterion::{criterion_group, criterion_main, Criterion};
use dpvk_core::{specialize, translate, SpecializeOptions};
use dpvk_ptx::parse_kernel;
use dpvk_workloads::workload;
use std::hint::black_box;

fn source() -> String {
    workload("blackscholes").expect("suite includes blackscholes").source()
}

fn bench_parse(c: &mut Criterion) {
    let src = source();
    c.bench_function("parse blackscholes", |b| {
        b.iter(|| parse_kernel(black_box(&src)).unwrap())
    });
}

fn bench_translate(c: &mut Criterion) {
    let kernel = parse_kernel(&source()).unwrap();
    c.bench_function("translate blackscholes", |b| {
        b.iter(|| translate(black_box(&kernel)).unwrap())
    });
}

fn bench_specialize(c: &mut Criterion) {
    let kernel = parse_kernel(&source()).unwrap();
    let tk = translate(&kernel).unwrap();
    let mut group = c.benchmark_group("specialize blackscholes");
    for w in [1u32, 2, 4, 8] {
        group.bench_function(format!("w{w}"), |b| {
            b.iter(|| specialize(black_box(&tk), &SpecializeOptions::dynamic(w)).unwrap())
        });
    }
    group.bench_function("w4 no-opt", |b| {
        let opts = SpecializeOptions { optimize: false, ..SpecializeOptions::dynamic(4) };
        b.iter(|| specialize(black_box(&tk), &opts).unwrap())
    });
    group.finish();
}

fn bench_opt_pipeline(c: &mut Criterion) {
    let kernel = parse_kernel(&source()).unwrap();
    let tk = translate(&kernel).unwrap();
    let opts = SpecializeOptions { optimize: false, ..SpecializeOptions::dynamic(4) };
    let unoptimized = specialize(&tk, &opts).unwrap().function;
    c.bench_function("optimization pipeline w4", |b| {
        b.iter(|| {
            let mut f = unoptimized.clone();
            dpvk_ir::opt::standard_pipeline(&mut f)
        })
    });
}

criterion_group!(benches, bench_parse, bench_translate, bench_specialize, bench_opt_pipeline);
criterion_main!(benches);
