//! Benchmarks of end-to-end kernel launches (host wall time of the
//! simulated execution, including the dynamic execution manager).
//!
//! Plain timing harness (no external benchmark dependency): a small fixed
//! number of samples per configuration, reporting mean and best.

use dpvk_core::ExecConfig;
use dpvk_workloads::{workload, WorkloadExt};
use std::time::Instant;

fn bench_config(name: &str, label: &str, config: &ExecConfig) {
    let w = workload(name).unwrap_or_else(|| panic!("workload {name}"));
    // Warm-up (also populates the translation cache).
    w.run_checked(config).unwrap();

    const SAMPLES: u32 = 10;
    let mut best = u128::MAX;
    let mut total = 0u128;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        w.run_checked(config).unwrap();
        let us = start.elapsed().as_micros();
        best = best.min(us);
        total += us;
    }
    let mean = total / SAMPLES as u128;
    println!("{name:<12} {label:<12} mean {mean:>9} us   best {best:>9} us   ({SAMPLES} samples)");
}

fn main() {
    for name in ["vecadd", "cp", "reduction"] {
        bench_config(name, "baseline", &ExecConfig::baseline().with_workers(1));
        bench_config(name, "dynamic w4", &ExecConfig::dynamic(4).with_workers(1));
    }

    if let Err(e) = dpvk_trace::write_if_enabled() {
        eprintln!("warning: failed to write trace report: {e}");
    }
}
