//! Criterion benchmarks of end-to-end kernel launches (host wall time of
//! the simulated execution, including the dynamic execution manager).

use criterion::{criterion_group, criterion_main, Criterion};
use dpvk_core::ExecConfig;
use dpvk_workloads::{workload, WorkloadExt};

fn bench_workload(c: &mut Criterion, name: &str) {
    let w = workload(name).unwrap_or_else(|| panic!("workload {name}"));
    let mut group = c.benchmark_group(name.to_string());
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        b.iter(|| w.run_checked(&ExecConfig::baseline().with_workers(1)).unwrap())
    });
    group.bench_function("dynamic w4", |b| {
        b.iter(|| w.run_checked(&ExecConfig::dynamic(4).with_workers(1)).unwrap())
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    for name in ["vecadd", "cp", "reduction"] {
        bench_workload(c, name);
    }
}

criterion_group!(execution, benches);
criterion_main!(execution);
