//! Figure 10 + Section 6.2: static warp formation with thread-invariant
//! expression elimination, relative to dynamic warp formation, plus the
//! static-instruction reduction TIE achieves.
//!
//! Paper shape: average ~+11.3%; irregular kernels recover dramatically
//! (MersenneTwister 6.4x vs dynamic); TIE removes 9.5% (w=2) / 11.5%
//! (w=4) of instructions on average.

use dpvk_bench::{format_table, run_suite};

fn main() {
    let results = run_suite(1).expect("suite validates");
    let mut rows = Vec::new();
    let mut product = 1.0f64;
    let (mut red2, mut red4) = (0.0f64, 0.0f64);
    for r in &results {
        let s = r.static_over_dynamic();
        product *= s;
        red2 += r.tie_reduction(2);
        red4 += r.tie_reduction(4);
        rows.push(vec![
            r.name.to_string(),
            format!("{s:.2}x"),
            format!("{:.1}%", 100.0 * r.tie_reduction(2)),
            format!("{:.1}%", 100.0 * r.tie_reduction(4)),
        ]);
    }
    let n = results.len() as f64;
    println!("Figure 10: static warp formation + TIE vs dynamic warp formation");
    println!();
    println!(
        "{}",
        format_table(&["app", "static/dynamic", "insts removed w2", "insts removed w4"], &rows)
    );
    println!(
        "geomean speedup: {:.2}x (paper avg +11.3%); mean reduction w2 {:.1}% (paper 9.5%), w4 {:.1}% (paper 11.5%)",
        product.powf(1.0 / n),
        100.0 * red2 / n,
        100.0 * red4 / n
    );
}
