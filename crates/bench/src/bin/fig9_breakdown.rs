//! Figure 9: fraction of modeled cycles spent in the execution manager,
//! in yield save/restore handlers, and in the vectorized subkernel, under
//! dynamic warp formation.
//!
//! Paper shape: compute-bound kernels (Nbody, CP) spend nearly all time
//! in the subkernel; synchronization-heavy kernels (BinomialOptions,
//! MatrixMul) spend a large share in the execution manager.

use dpvk_bench::{format_table, run_suite};

fn main() {
    let results = run_suite(1).expect("suite validates");
    let mut rows = Vec::new();
    for r in &results {
        let e = &r.dynamic.exec;
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}%", 100.0 * e.manager_fraction()),
            format!("{:.0}%", 100.0 * e.yield_fraction()),
            format!("{:.0}%", 100.0 * e.body_fraction()),
        ]);
    }
    println!("Figure 9: cycle breakdown under dynamic warp formation");
    println!();
    println!("{}", format_table(&["app", "exec manager", "yields", "subkernel"], &rows));
    if let Err(e) = dpvk_trace::write_if_enabled() {
        eprintln!("warning: failed to write trace report: {e}");
    }
}
