//! Figure 9: fraction of modeled cycles spent in the execution manager,
//! in yield save/restore handlers, and in the vectorized subkernel, under
//! dynamic warp formation.
//!
//! Paper shape: compute-bound kernels (Nbody, CP) spend nearly all time
//! in the subkernel; synchronization-heavy kernels (BinomialOptions,
//! MatrixMul) spend a large share in the execution manager.

use dpvk_bench::{format_table, run_suite};

fn main() {
    let results = run_suite(1).expect("suite validates");
    let mut rows = Vec::new();
    for r in &results {
        let e = &r.dynamic.exec;
        let total = e.total_cycles().max(1) as f64;
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}%", 100.0 * e.cycles_manager as f64 / total),
            format!("{:.0}%", 100.0 * e.cycles_yield as f64 / total),
            format!("{:.0}%", 100.0 * e.cycles_body as f64 / total),
        ]);
    }
    println!("Figure 9: cycle breakdown under dynamic warp formation");
    println!();
    println!(
        "{}",
        format_table(&["app", "exec manager", "yields", "subkernel"], &rows)
    );
}
