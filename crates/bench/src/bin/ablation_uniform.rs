//! Ablation: the uniform-value (divergence) analysis on/off.
//!
//! This quantifies the optimization the paper defers to future work
//! (divergence analysis [11] / affine analysis [12]): warp-invariant
//! values are computed once per warp and warp-invariant loads issue once
//! instead of per lane. It is what lifts compute-bound kernels with
//! warp-invariant inner-loop data (cp, nbody, mri-q) toward the paper's
//! hardware numbers under our costlier load model.

use dpvk_bench::format_table;
use dpvk_core::{specialize, translate, SpecializeOptions};
use dpvk_workloads::all_workloads;

fn main() {
    let mut rows = Vec::new();
    for w in all_workloads() {
        let module = dpvk_ptx::parse_module(&w.source()).expect("suite kernels parse");
        let mut with = 0usize;
        let mut without = 0usize;
        for k in &module.kernels {
            let tk = translate(k).expect("suite kernels translate");
            let on = specialize(&tk, &SpecializeOptions::dynamic(4)).expect("specialize");
            let off = specialize(&tk, &SpecializeOptions::dynamic(4).without_uniform_analysis())
                .expect("specialize");
            with += on.post_opt_instructions;
            without += off.post_opt_instructions;
        }
        rows.push(vec![
            w.name().to_string(),
            without.to_string(),
            with.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - with as f64 / without.max(1) as f64)),
        ]);
    }
    println!("Ablation: uniform-value analysis (width-4 dynamic specialization)");
    println!();
    println!("{}", format_table(&["app", "insts (off)", "insts (on)", "removed"], &rows));
}
