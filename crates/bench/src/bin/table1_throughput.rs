//! Table 1: peak single-precision throughput vs warp size (1/2/4/8)
//! for the FMA-chain microbenchmark.
//!
//! Paper: 25.0 / 47.9 / 97.1 / 37.0 GFLOP/s on a machine with an
//! estimated 108 GFLOP/s peak (warp 4 reaches 90% of peak; warp 8
//! collapses under register pressure).

use dpvk_bench::{format_table, gflops};
use dpvk_core::ExecConfig;
use dpvk_vm::MachineModel;
use dpvk_workloads::{workload, WorkloadExt};

fn main() {
    let model = MachineModel::sandybridge_sse();
    let throughput = workload("throughput").expect("suite includes throughput");
    let mut rows = Vec::new();
    for w in [1u32, 2, 4, 8] {
        // Width 1 is plain scalar execution (the paper's scalar row);
        // wider rows use the vectorized dynamic-formation specializations.
        let config = if w == 1 {
            ExecConfig::baseline().with_workers(1)
        } else {
            ExecConfig::dynamic(w).with_workers(1)
        };
        let stats = throughput.run_checked(&config).expect("throughput validates").stats;
        let g = gflops(&stats, &model);
        rows.push(vec![
            w.to_string(),
            format!("{g:.1}"),
            format!("{:.0}%", 100.0 * g / model.peak_gflops()),
        ]);
    }
    println!("Table 1: peak floating-point throughput ({})", model.name);
    println!("machine peak: {:.1} GFLOP/s", model.peak_gflops());
    println!();
    println!("{}", format_table(&["Warp size", "GFLOP/s", "% of peak"], &rows));
    println!("paper reference: w1 25.0, w2 47.9, w4 97.1, w8 37.0 GFLOP/s");
    if let Err(e) = dpvk_trace::write_if_enabled() {
        eprintln!("warning: failed to write trace report: {e}");
    }
}
