//! Run every table/figure reproduction in sequence (the full evaluation).

use std::process::Command;

fn main() {
    let bins = [
        "table1_throughput",
        "fig6_speedup",
        "fig7_warp_size",
        "fig8_liveness",
        "fig9_breakdown",
        "fig10_static_tie",
    ];
    for bin in bins {
        println!("================================================================");
        let status = Command::new(
            std::env::current_exe().expect("self path").parent().expect("bin dir").join(bin),
        )
        .status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                std::process::exit(1);
            }
        }
        println!();
    }
}
