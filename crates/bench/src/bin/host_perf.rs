//! Wall-clock benchmark of warm-cache launches (host-side hot path).
//!
//! Unlike the figure/table binaries, which report *modeled* cycles, this
//! binary measures real host nanoseconds per launch once the translation
//! cache is warm — the cost of warp formation, dispatch, and the
//! interpreter loop itself. It exists to prove host-side optimizations
//! with numbers rather than assertions, and seeds the `BENCH_*.json`
//! trajectory at the repo root.
//!
//! Usage:
//!   host_perf [--quick] [--engine {bytecode,tree,jit}] [--streams N]
//!             [--widths W1,W2,...] [--cold-start] [--out PATH]
//!             [--before PATH] [--check PATH] [--timeline] [--profile]
//!
//! * `--quick` — reduced repeat counts (CI smoke configuration)
//! * `--widths W1,W2,...` — sweep warm-launch latency per static warp
//!   width, then run each workload once more under the adaptive width
//!   policy (`DPVK_ADAPT=on` semantics, candidates = the sweep widths)
//!   starting from the measured-worst width, and report the width the
//!   policy converged to next to the static best (the `adaptive`
//!   section of `--out`)
//! * `--cold-start` — additionally measure first-launch latency on a
//!   fresh device with an empty persistent cache directory (cold:
//!   parse + translate + specialize) vs a fresh device over the
//!   populated directory (warm restart: rehydrate artifacts from disk),
//!   and report the speedup
//! * `--engine E` — guest engine to benchmark: `bytecode` (the
//!   pre-decoded default), `tree` (the tree-walk oracle), or `jit`
//!   (the native copy-and-patch tier)
//! * `--streams N` — additionally benchmark the stream API: warm
//!   submit-to-complete launch latency on one stream, and launches/sec
//!   with the same total work spread round-robin over 1 vs N streams
//! * `--out PATH` — write results as JSON (default: no file, stdout table)
//! * `--before P` — fold a previous results file in as the "before"
//!   section and emit before/after/speedup in `--out`
//! * `--check P` — compare against the `after` (or sole) results in a
//!   committed baseline; exit non-zero only on a gross (>5x)
//!   per-configuration regression
//! * `--timeline` — switch the flight recorder on and write the
//!   per-launch span timeline as Chrome trace-event JSON (loadable in
//!   Perfetto); honors `DPVK_TIMELINE_OUT`
//! * `--profile` — switch the flight recorder on, print the µop hotspot
//!   table, and write the collapsed-stack µop profile (flamegraph
//!   input); honors `DPVK_PROFILE_OUT`
//!
//! Both recorder flags add tracing overhead to every timed launch —
//! use the numbers they print for *attribution*, not as the benchmark
//! result.

use std::time::Instant;

use dpvk_bench::format_table;
use dpvk_core::{AdaptConfig, Engine, ExecConfig, ParamValue};
use dpvk_vm::MachineModel;
use dpvk_workloads::{workload, Workload};

const WORKLOADS: [&str; 4] = ["throughput", "blackscholes", "matrixmul", "bitonic"];
const WORKERS: [usize; 3] = [1, 2, 4];
const HEAP: usize = 256 << 20;

/// Gross-regression threshold for `--check` (CI fails only beyond this).
const REGRESSION_FACTOR: f64 = 5.0;

#[derive(Debug, Clone)]
struct Sample {
    workload: String,
    workers: usize,
    launches: u64,
    min_ns: u64,
    median_ns: u64,
    mean_ns: u64,
}

fn fresh_device(w: &dyn Workload) -> dpvk_core::Device {
    let dev = dpvk_core::Device::new(MachineModel::sandybridge_sse(), HEAP);
    dev.register_source(&w.source()).expect("workload source parses");
    dev
}

/// Time warm launches of one workload under one worker count.
///
/// The first run on a fresh device compiles the specializations; every
/// timed run after that exercises only the steady-state launch path. If
/// the bump allocator fills up mid-run the device is recycled (and
/// re-warmed) without counting the cold run.
fn bench_one(name: &str, workers: usize, quick: bool, engine: Engine) -> Sample {
    let w = workload(name).expect("workload exists");
    let config = ExecConfig::dynamic(4).with_workers(workers).with_engine(engine);
    let mut dev = fresh_device(w.as_ref());
    w.run(&dev, &config).expect("warm-up run validates");

    // Calibrate the repeat count so each configuration takes a roughly
    // fixed slice of wall time regardless of workload size.
    let t0 = Instant::now();
    w.run(&dev, &config).expect("calibration run validates");
    let per = t0.elapsed().as_nanos().max(1) as u64;
    let (budget_ns, lo, hi) = if quick { (100_000_000, 3, 24) } else { (600_000_000, 8, 160) };
    let iters = (budget_ns / per).clamp(lo, hi);

    let mut samples_ns = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        match w.run(&dev, &config) {
            Ok(_) => samples_ns.push(t.elapsed().as_nanos() as u64),
            Err(_) => {
                // Device heap exhausted: recycle and re-warm, discard
                // the failed (and the next, cold) run.
                dev = fresh_device(w.as_ref());
                w.run(&dev, &config).expect("re-warm run validates");
            }
        }
    }
    assert!(!samples_ns.is_empty(), "no successful timed runs for {name}");
    samples_ns.sort_unstable();
    let launches = samples_ns.len() as u64;
    Sample {
        workload: name.to_string(),
        workers,
        launches,
        min_ns: samples_ns[0],
        median_ns: samples_ns[samples_ns.len() / 2],
        mean_ns: samples_ns.iter().sum::<u64>() / launches,
    }
}

/// First-launch latency with and without the persistent translation
/// cache populated.
#[derive(Debug, Clone)]
struct ColdStartSample {
    workload: String,
    /// Best-of-reps first launch on an empty cache directory.
    cold_ns: u64,
    /// Best-of-reps first launch on the directory the cold run filled.
    warm_ns: u64,
    /// `cold_ns / warm_ns`.
    speedup: f64,
}

/// Measure one workload's cold-start vs warm-restart first launch.
///
/// Every sample uses a brand-new device, so the in-memory caches are
/// exactly what a new process would have; only the on-disk artifact
/// cache distinguishes cold from warm. Best-of-`reps` on both sides
/// keeps scheduler noise out of the headline speedup.
fn bench_cold_start(name: &str, reps: usize, engine: Engine) -> ColdStartSample {
    let w = workload(name).expect("workload exists");
    let config = ExecConfig::dynamic(4).with_workers(1).with_engine(engine);
    let dir = std::env::temp_dir().join(format!("dpvk-coldstart-{name}-{}", std::process::id()));
    let run_fresh = |persist_dir: &std::path::Path| -> u64 {
        let dev = dpvk_core::Device::with_persist(
            MachineModel::sandybridge_sse(),
            HEAP,
            Some(dpvk_core::PersistConfig::at(persist_dir)),
        );
        dev.register_source(&w.source()).expect("workload source parses");
        let t = Instant::now();
        w.run(&dev, &config).expect("cold-start run validates");
        t.elapsed().as_nanos() as u64
    };
    let (mut cold, mut warm) = (u64::MAX, u64::MAX);
    for _ in 0..reps.max(1) {
        let _ = std::fs::remove_dir_all(&dir);
        cold = cold.min(run_fresh(&dir));
        warm = warm.min(run_fresh(&dir));
    }
    let _ = std::fs::remove_dir_all(&dir);
    ColdStartSample {
        workload: name.to_string(),
        cold_ns: cold,
        warm_ns: warm,
        speedup: cold as f64 / warm.max(1) as f64,
    }
}

/// Warm-launch latency of one workload at one static warp width.
#[derive(Debug, Clone)]
struct WidthSample {
    width: u32,
    median_ns: u64,
    launches: u64,
}

/// One workload's width sweep: static latency per width, plus the
/// adaptive policy's converged choice starting from the worst width.
#[derive(Debug, Clone)]
struct AdaptiveSample {
    workload: String,
    widths: Vec<WidthSample>,
    /// Width with the lowest static median.
    static_best_width: u32,
    static_best_ns: u64,
    /// Width the sweep measured as slowest — the adaptive run's
    /// deliberately bad starting point.
    adaptive_start_width: u32,
    /// Width the policy committed (0 = never converged).
    adaptive_chosen_width: u32,
    /// Warm-launch median once the policy has converged.
    adaptive_ns: u64,
    /// Background respecializations the run scheduled.
    respec_events: u64,
}

/// Median warm-launch nanoseconds of `iters` runs on an already-warm
/// device.
fn time_warm(
    w: &dyn Workload,
    dev: &dpvk_core::Device,
    config: &ExecConfig,
    iters: usize,
) -> (u64, u64) {
    let mut samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        if w.run(dev, config).is_ok() {
            samples.push(t.elapsed().as_nanos() as u64);
        }
    }
    assert!(!samples.is_empty(), "no successful timed runs for {}", w.name());
    samples.sort_unstable();
    (samples[samples.len() / 2], samples.len() as u64)
}

/// Sweep one workload across `widths`: static warm-launch latency per
/// width (adaptation forced off), then one adaptive run whose policy may
/// pick any sweep width, started at the measured-worst width and driven
/// past convergence.
fn bench_widths(name: &str, widths: &[u32], quick: bool, engine: Engine) -> AdaptiveSample {
    let w = workload(name).expect("workload exists");
    let iters = if quick { 8 } else { 24 };

    let mut rows = Vec::with_capacity(widths.len());
    for &width in widths {
        let config = ExecConfig::dynamic(width)
            .with_workers(1)
            .with_engine(engine)
            .with_adapt(AdaptConfig::off());
        let dev = fresh_device(w.as_ref());
        w.run(&dev, &config).expect("warm-up run validates");
        let (median_ns, launches) = time_warm(w.as_ref(), &dev, &config, iters);
        rows.push(WidthSample { width, median_ns, launches });
    }
    let best = rows.iter().min_by_key(|r| r.median_ns).expect("non-empty sweep");
    let worst = rows.iter().max_by_key(|r| r.median_ns).expect("non-empty sweep");
    let (static_best_width, static_best_ns) = (best.width, best.median_ns);
    let start_width = worst.width;

    // Adaptive run: request the worst width every launch and let the
    // policy steer. Enough launches to warm up, explore every candidate,
    // and commit; the hotness threshold is lowered so the bench stays
    // fast.
    let threshold: u32 = if quick { 3 } else { 6 };
    let adapt = AdaptConfig::on().with_threshold(threshold).with_candidates(widths);
    let config =
        ExecConfig::dynamic(start_width).with_workers(1).with_engine(engine).with_adapt(adapt);
    let dev = fresh_device(w.as_ref());
    let converge_runs = threshold as usize * (widths.len() + 1) + 6;
    for _ in 0..converge_runs {
        w.run(&dev, &config).expect("adaptive run validates");
    }
    dev.synchronize();
    let (adaptive_ns, _) = time_warm(w.as_ref(), &dev, &config, iters);

    // The policy is per kernel; report the most-launched kernel of the
    // workload (multi-kernel workloads converge per kernel).
    let kernels: Vec<String> = dpvk_ptx::parse_module(&w.source())
        .map(|m| m.kernels.iter().map(|k| k.name.clone()).collect())
        .unwrap_or_default();
    let mut chosen = 0u32;
    let mut respec_events = 0u64;
    let mut best_launches = 0u64;
    for kernel in &kernels {
        let snap = dev.width_policy(kernel);
        respec_events += snap.respec_events;
        if let Some(cw) = snap.chosen_width {
            if snap.launches > best_launches {
                best_launches = snap.launches;
                chosen = cw;
            }
        }
    }
    AdaptiveSample {
        workload: name.to_string(),
        widths: rows,
        static_best_width,
        static_best_ns,
        adaptive_start_width: start_width,
        adaptive_chosen_width: chosen,
        adaptive_ns,
        respec_events,
    }
}

/// One throughput measurement of the stream benchmark: `launches`
/// identical kernels spread round-robin over `streams` streams, all
/// submitted before any is waited on.
#[derive(Debug, Clone)]
struct StreamSample {
    streams: usize,
    launches: u64,
    elapsed_ns: u64,
    launches_per_sec: f64,
}

#[derive(Debug, Clone)]
struct StreamReport {
    latency_launches: u64,
    latency_min_ns: u64,
    latency_median_ns: u64,
    latency_mean_ns: u64,
    throughput: Vec<StreamSample>,
    /// N-stream launches/sec over 1-stream launches/sec.
    multi_stream_speedup: f64,
}

/// Benchmark the stream API with the Table 1 `throughput` kernel
/// (9 CTAs x 64 threads): submit-to-complete latency of a warm launch
/// on one stream, then launches/sec for the same total launch count
/// driven through 1 stream vs `nstreams` streams. Each stream owns its
/// output buffer, so concurrent launches never share device state.
fn bench_streams(nstreams: usize, quick: bool, engine: Engine) -> StreamReport {
    let w = workload("throughput").expect("workload exists");
    let dev = fresh_device(w.as_ref());
    // One pool worker per launch: stream-level overlap, not intra-launch
    // parallelism, is what this benchmark isolates.
    let config = ExecConfig::dynamic(4).with_workers(1).with_engine(engine);
    let grid = [9, 1, 1];
    let block = [64, 1, 1];
    let iters = 32u32;
    let bufs: Vec<_> =
        (0..nstreams.max(1)).map(|_| dev.malloc(576 * 4).expect("stream buffer")).collect();
    w.run(&dev, &config).expect("warm-up run validates");

    // Submit-to-complete latency of an otherwise idle stream.
    let latency_iters = if quick { 24 } else { 96 };
    let stream = dev.stream();
    let mut lat = Vec::with_capacity(latency_iters);
    for _ in 0..latency_iters {
        let t = Instant::now();
        let h = stream
            .launch(
                "throughput",
                grid,
                block,
                &[ParamValue::Ptr(bufs[0]), ParamValue::U32(iters)],
                &config,
            )
            .expect("latency launch submits");
        h.wait().expect("latency launch completes");
        lat.push(t.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();

    // Throughput: identical total work through 1 stream vs N streams.
    let per_stream = if quick { 8 } else { 24 };
    let total = (per_stream * nstreams) as u64;
    let mut throughput = Vec::new();
    let mut widths = vec![1];
    if nstreams > 1 {
        widths.push(nstreams);
    }
    for streams in widths {
        let pool: Vec<_> = (0..streams).map(|_| dev.stream()).collect();
        let start = Instant::now();
        let handles: Vec<_> = (0..total)
            .map(|i| {
                let s = i as usize % streams;
                pool[s]
                    .launch(
                        "throughput",
                        grid,
                        block,
                        &[ParamValue::Ptr(bufs[s]), ParamValue::U32(iters)],
                        &config,
                    )
                    .expect("throughput launch submits")
            })
            .collect();
        for h in &handles {
            h.wait().expect("throughput launch completes");
        }
        let elapsed_ns = start.elapsed().as_nanos().max(1) as u64;
        throughput.push(StreamSample {
            streams,
            launches: total,
            elapsed_ns,
            launches_per_sec: total as f64 * 1e9 / elapsed_ns as f64,
        });
    }
    dev.synchronize();
    let single = throughput[0].launches_per_sec;
    let multi = throughput.last().unwrap().launches_per_sec;
    StreamReport {
        latency_launches: lat.len() as u64,
        latency_min_ns: lat[0],
        latency_median_ns: lat[lat.len() / 2],
        latency_mean_ns: lat.iter().sum::<u64>() / lat.len() as u64,
        throughput,
        multi_stream_speedup: multi / single.max(f64::MIN_POSITIVE),
    }
}

fn result_line(s: &Sample) -> String {
    format!(
        "{{\"workload\": \"{}\", \"workers\": {}, \"launches\": {}, \
         \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}",
        s.workload, s.workers, s.launches, s.min_ns, s.median_ns, s.mean_ns
    )
}

/// Render the `"streams"` JSON object. Deliberately reuses none of the
/// result-line keys (`workload` + `min_ns`) so `read_results` on a
/// combined file never mistakes a stream row for a warm-launch sample.
fn render_streams_json(r: &StreamReport) -> String {
    let mut out = String::new();
    out.push_str("  \"streams\": {\n");
    out.push_str("    \"kernel\": \"throughput\",\n");
    out.push_str(&format!(
        "    \"latency\": {{\"launches\": {}, \"submit_to_complete_min_ns\": {}, \
         \"submit_to_complete_median_ns\": {}, \"submit_to_complete_mean_ns\": {}}},\n",
        r.latency_launches, r.latency_min_ns, r.latency_median_ns, r.latency_mean_ns
    ));
    out.push_str("    \"throughput\": [\n");
    for (i, s) in r.throughput.iter().enumerate() {
        let comma = if i + 1 < r.throughput.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"streams\": {}, \"launches\": {}, \"elapsed_ns\": {}, \
             \"launches_per_sec\": {:.1}}}{comma}\n",
            s.streams, s.launches, s.elapsed_ns, s.launches_per_sec
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!("    \"multi_stream_speedup\": {:.2}\n", r.multi_stream_speedup));
    out.push_str("  }\n");
    out
}

/// Render the `"cold_start"` JSON array. Like the stream section, the
/// rows share no key pair with the warm-launch result lines (`cold_ns`
/// instead of `min_ns`), so `read_results` never picks them up.
fn render_cold_start_json(rows: &[ColdStartSample], trailing: bool) -> String {
    let mut out = String::new();
    out.push_str("  \"cold_start\": [\n");
    for (i, s) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"cold_ns\": {}, \"warm_ns\": {}, \
             \"speedup\": {:.2}}}{comma}\n",
            s.workload, s.cold_ns, s.warm_ns, s.speedup
        ));
    }
    out.push_str(if trailing { "  ],\n" } else { "  ]\n" });
    out
}

/// Render the `"adaptive"` JSON array. Rows carry `width`/`median_ns`
/// pairs but never the `workers` + `min_ns` combination, so
/// `read_results` on a combined file skips them.
fn render_adaptive_json(rows: &[AdaptiveSample], trailing: bool) -> String {
    let mut out = String::new();
    out.push_str("  \"adaptive\": [\n");
    for (i, s) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let widths = s
            .widths
            .iter()
            .map(|w| {
                format!(
                    "{{\"width\": {}, \"median_ns\": {}, \"launches\": {}}}",
                    w.width, w.median_ns, w.launches
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"static\": [{widths}], \
             \"static_best_width\": {}, \"static_best_ns\": {}, \
             \"adaptive_start_width\": {}, \"adaptive_chosen_width\": {}, \
             \"adaptive_ns\": {}, \"respec_events\": {}}}{comma}\n",
            s.workload,
            s.static_best_width,
            s.static_best_ns,
            s.adaptive_start_width,
            s.adaptive_chosen_width,
            s.adaptive_ns,
            s.respec_events
        ));
    }
    out.push_str(if trailing { "  ],\n" } else { "  ]\n" });
    out
}

fn render_json(
    before: Option<&[Sample]>,
    after: &[Sample],
    engine: Engine,
    streams: Option<&StreamReport>,
    cold_start: Option<&[ColdStartSample]>,
    adaptive: Option<&[AdaptiveSample]>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"host_perf\",\n");
    out.push_str("  \"unit\": \"ns_per_warm_launch\",\n");
    out.push_str("  \"policy\": \"dynamic_w4\",\n");
    out.push_str(&format!("  \"engine\": \"{}\",\n", engine.label()));
    let emit = |out: &mut String, key: &str, rows: &[Sample], trailing: bool| {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, s) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", result_line(s)));
        }
        out.push_str(if trailing { "  ],\n" } else { "  ]\n" });
    };
    if let Some(b) = before {
        emit(&mut out, "before", b, true);
        emit(&mut out, "after", after, true);
        let speedups = |pick: fn(&Sample) -> u64| {
            let mut rows = Vec::new();
            for s in after {
                if let Some(prev) =
                    b.iter().find(|p| p.workload == s.workload && p.workers == s.workers)
                {
                    rows.push(format!(
                        "    {{\"workload\": \"{}\", \"workers\": {}, \"speedup\": {:.2}}}",
                        s.workload,
                        s.workers,
                        pick(prev) as f64 / pick(s).max(1) as f64
                    ));
                }
            }
            rows.join(",\n")
        };
        out.push_str("  \"speedup_min\": [\n");
        out.push_str(&speedups(|s| s.min_ns));
        out.push_str("\n  ],\n");
        out.push_str("  \"speedup_median\": [\n");
        out.push_str(&speedups(|s| s.median_ns));
        out.push_str(if streams.is_some() || cold_start.is_some() || adaptive.is_some() {
            "\n  ],\n"
        } else {
            "\n  ]\n"
        });
    } else {
        emit(
            &mut out,
            "after",
            after,
            streams.is_some() || cold_start.is_some() || adaptive.is_some(),
        );
    }
    if let Some(rows) = adaptive {
        out.push_str(&render_adaptive_json(rows, streams.is_some() || cold_start.is_some()));
    }
    if let Some(rows) = cold_start {
        out.push_str(&render_cold_start_json(rows, streams.is_some()));
    }
    if let Some(r) = streams {
        out.push_str(&render_streams_json(r));
    }
    out.push_str("}\n");
    out
}

// --- minimal reader for our own result-line format (no JSON dependency) ---

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parse result lines from a file previously written by this binary.
/// If an `"after"` section exists, only its lines are read (so a
/// combined before/after file compares against the newer numbers).
fn read_results(path: &str) -> Vec<Sample> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let body = match text.find("\"after\"") {
        Some(i) => &text[i..],
        None => &text[..],
    };
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(workload) = extract_str(line, "workload") else { continue };
        let (Some(workers), Some(min_ns)) =
            (extract_u64(line, "workers"), extract_u64(line, "min_ns"))
        else {
            continue;
        };
        out.push(Sample {
            workload,
            workers: workers as usize,
            launches: extract_u64(line, "launches").unwrap_or(0),
            min_ns,
            median_ns: extract_u64(line, "median_ns").unwrap_or(min_ns),
            mean_ns: extract_u64(line, "mean_ns").unwrap_or(min_ns),
        });
    }
    out
}

fn check_against(baseline_path: &str, current: &[Sample]) -> bool {
    let baseline = read_results(baseline_path);
    assert!(!baseline.is_empty(), "no result lines found in {baseline_path}");
    let mut ok = true;
    for s in current {
        let Some(b) = baseline.iter().find(|p| p.workload == s.workload && p.workers == s.workers)
        else {
            continue;
        };
        let factor = s.min_ns as f64 / b.min_ns.max(1) as f64;
        if factor > REGRESSION_FACTOR {
            eprintln!(
                "REGRESSION: {} workers={} is {factor:.1}x slower than baseline \
                 ({} ns vs {} ns)",
                s.workload, s.workers, s.min_ns, b.min_ns
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut engine = Engine::default();
    let mut cold_start = false;
    let mut widths_arg: Option<Vec<u32>> = None;
    let mut streams_n: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut before_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut timeline = false;
    let mut profile = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--cold-start" => cold_start = true,
            "--timeline" => timeline = true,
            "--profile" => profile = true,
            "--widths" => {
                i += 1;
                let parsed: Result<Vec<u32>, _> =
                    args[i].split(',').map(|s| s.trim().parse::<u32>()).collect();
                match parsed {
                    Ok(ws) if ws.len() >= 2 && ws.iter().all(|&w| w >= 1) => {
                        widths_arg = Some(ws);
                    }
                    _ => {
                        eprintln!(
                            "--widths expects a comma-separated list of at least two \
                             positive warp widths (e.g. 4,8,16)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--streams" => {
                i += 1;
                let n: usize = args[i].parse().unwrap_or(0);
                if n == 0 {
                    eprintln!("--streams expects a positive stream count");
                    std::process::exit(2);
                }
                streams_n = Some(n);
            }
            "--engine" => {
                i += 1;
                engine = match Engine::parse(args[i].as_str()) {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("--engine: {e}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            "--before" => {
                i += 1;
                before_path = Some(args[i].clone());
            }
            "--check" => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if timeline || profile {
        dpvk_trace::enable();
    }

    let mut results = Vec::new();
    for name in WORKLOADS {
        for workers in WORKERS {
            let s = bench_one(name, workers, quick, engine);
            eprintln!(
                "{:<14} workers={}  min {:>12} ns  median {:>12} ns  ({} launches)",
                s.workload, s.workers, s.min_ns, s.median_ns, s.launches
            );
            results.push(s);
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                s.workers.to_string(),
                s.min_ns.to_string(),
                s.median_ns.to_string(),
                s.launches.to_string(),
            ]
        })
        .collect();
    println!("\nWarm-launch wall clock (dynamic w4, {} engine), ns per launch", engine.label());
    println!(
        "{}",
        format_table(&["workload", "workers", "min_ns", "median_ns", "launches"], &rows)
    );

    let cold_results = cold_start.then(|| {
        let reps = if quick { 3 } else { 6 };
        let rows: Vec<ColdStartSample> =
            WORKLOADS.iter().map(|name| bench_cold_start(name, reps, engine)).collect();
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|s| {
                vec![
                    s.workload.clone(),
                    s.cold_ns.to_string(),
                    s.warm_ns.to_string(),
                    format!("{:.2}x", s.speedup),
                ]
            })
            .collect();
        println!(
            "\nCold start vs warm restart ({} engine), first-launch ns on a fresh device",
            engine.label()
        );
        println!(
            "{}",
            format_table(&["workload", "cold_ns", "warm_restart_ns", "speedup"], &table)
        );
        rows
    });

    let adaptive_results = widths_arg.map(|widths| {
        let rows: Vec<AdaptiveSample> =
            WORKLOADS.iter().map(|name| bench_widths(name, &widths, quick, engine)).collect();
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|s| {
                let sweep = s
                    .widths
                    .iter()
                    .map(|w| format!("w{}:{}", w.width, w.median_ns))
                    .collect::<Vec<_>>()
                    .join(" ");
                vec![
                    s.workload.clone(),
                    sweep,
                    format!("w{}", s.static_best_width),
                    format!("w{}", s.adaptive_start_width),
                    if s.adaptive_chosen_width == 0 {
                        "-".to_string()
                    } else {
                        format!("w{}", s.adaptive_chosen_width)
                    },
                    s.adaptive_ns.to_string(),
                    s.respec_events.to_string(),
                ]
            })
            .collect();
        println!(
            "\nWidth sweep ({} engine): static median ns per width vs adaptive policy",
            engine.label()
        );
        println!(
            "{}",
            format_table(
                &["workload", "static_ns", "best", "start", "chosen", "adaptive_ns", "respecs"],
                &table
            )
        );
        rows
    });

    let streams_report = streams_n.map(|n| {
        let r = bench_streams(n, quick, engine);
        eprintln!(
            "stream latency: submit-to-complete min {} ns, median {} ns ({} launches)",
            r.latency_min_ns, r.latency_median_ns, r.latency_launches
        );
        let rows: Vec<Vec<String>> = r
            .throughput
            .iter()
            .map(|s| {
                vec![
                    s.streams.to_string(),
                    s.launches.to_string(),
                    format!("{:.1}", s.launches_per_sec),
                ]
            })
            .collect();
        println!(
            "\nStream throughput ({} engine, throughput kernel, w4 workers=1)",
            engine.label()
        );
        println!("{}", format_table(&["streams", "launches", "launches_per_sec"], &rows));
        println!("multi-stream speedup: {:.2}x ({n} streams vs 1)", r.multi_stream_speedup);
        r
    });

    let before = before_path.map(|p| {
        let b = read_results(&p);
        assert!(!b.is_empty(), "no result lines found in --before file");
        b
    });
    if let Some(path) = out_path {
        std::fs::write(
            &path,
            render_json(
                before.as_deref(),
                &results,
                engine,
                streams_report.as_ref(),
                cold_results.as_deref(),
                adaptive_results.as_deref(),
            ),
        )
        .expect("write --out file");
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        if !check_against(&path, &results) {
            std::process::exit(1);
        }
        println!("perf check vs {path}: within {REGRESSION_FACTOR}x");
    }

    if profile {
        let total = dpvk_trace::profile::total_cycles();
        let hotspots = dpvk_trace::profile::hotspots(10);
        println!("\nµop hotspots (top {} rows, {total} modeled cycles attributed)", hotspots.len());
        let rows: Vec<Vec<String>> = hotspots
            .iter()
            .map(|h| {
                let pct = if total == 0 { 0.0 } else { 100.0 * h.cycles as f64 / total as f64 };
                vec![
                    h.kernel.clone(),
                    format!("w{} {}", h.warp_size, h.variant),
                    h.path.to_string(),
                    h.uop.to_string(),
                    h.hits.to_string(),
                    h.cycles.to_string(),
                    format!("{pct:.1}%"),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(&["kernel", "spec", "path", "µop", "hits", "cycles", "share"], &rows)
        );
        let path = dpvk_trace::profile::default_folded_path();
        dpvk_trace::profile::write_folded(&path).expect("write µop profile");
        println!("µop profile: {} (collapsed stacks, flamegraph input)", path.display());
    }
    if timeline {
        let path = dpvk_trace::timeline::default_timeline_path();
        dpvk_trace::timeline::write_chrome_trace(&path).expect("write timeline");
        println!("timeline: {} (load in Perfetto / chrome://tracing)", path.display());
    }
}
