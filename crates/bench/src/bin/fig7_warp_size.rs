//! Figure 7: average warp size mix under dynamic warp formation —
//! the fraction of kernel entries executed at warp sizes 1/2/4.
//!
//! Paper shape: most applications enter mostly at the maximum warp size;
//! SimpleVoteIntrinsics is capped at 2 by its tiny CTAs.

use dpvk_bench::{format_table, run_suite};

fn main() {
    let results = run_suite(1).expect("suite validates");
    let mut rows = Vec::new();
    for r in &results {
        let fr = r.dynamic.warp_size_fractions();
        let get = |i: usize| fr.get(i).copied().unwrap_or(0.0);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}%", 100.0 * get(1)),
            format!("{:.0}%", 100.0 * get(2)),
            format!("{:.0}%", 100.0 * (get(3) + get(4))),
            format!("{:.2}", r.dynamic.exec.average_warp_size()),
        ]);
    }
    println!("Figure 7: warp-size mix under dynamic warp formation (max 4)");
    println!();
    println!("{}", format_table(&["app", "w=1", "w=2", "w=3..4", "avg warp"], &rows));
}
