//! Figure 8: average number of live values restored per thread at entry
//! points from the execution manager.
//!
//! Paper shape: ~4.54 values on average — fewer than the architectural
//! register count, so compiler-inserted context switches are cheap.

use dpvk_bench::{format_table, run_suite};

fn main() {
    let results = run_suite(1).expect("suite validates");
    let mut rows = Vec::new();
    let mut sum = 0.0;
    for r in &results {
        let v = r.dynamic.exec.average_values_restored();
        sum += v;
        rows.push(vec![r.name.to_string(), format!("{v:.2}")]);
    }
    println!("Figure 8: average values restored per thread at entry points");
    println!();
    println!("{}", format_table(&["app", "avg restores/thread"], &rows));
    println!("suite average: {:.2} (paper average: 4.54)", sum / results.len() as f64);
}
