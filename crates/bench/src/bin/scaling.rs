//! Scalability sweep (paper Sections 1 & 8: "performance scalability is
//! expected from 2-wide to arbitrary-width vector units"): the throughput
//! microbenchmark across warp widths on three machine models.

use dpvk_bench::{format_table, gflops};
use dpvk_core::ExecConfig;
use dpvk_vm::MachineModel;
use dpvk_workloads::{workload, WorkloadExt};

fn main() {
    let throughput = workload("throughput").expect("suite includes throughput");
    let models =
        [MachineModel::sandybridge_sse(), MachineModel::sandybridge_avx(), MachineModel::wide16()];
    let widths = [1u32, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for model in &models {
        let mut row = vec![model.name.clone(), format!("{:.0}", model.peak_gflops())];
        for &w in &widths {
            let config = if w == 1 {
                ExecConfig::baseline().with_workers(1)
            } else {
                ExecConfig::dynamic(w).with_workers(1)
            };
            let stats = throughput
                .run_on_model(model.clone(), &config)
                .expect("throughput validates")
                .stats;
            row.push(format!("{:.1}", gflops(&stats, model)));
        }
        rows.push(row);
    }
    println!("Scalability: throughput microbenchmark GFLOP/s per machine model");
    println!("(vector speedup tracks the machine width until register pressure bites)");
    println!();
    println!("{}", format_table(&["model", "peak", "w1", "w2", "w4", "w8", "w16"], &rows));
}
