//! Figure 6: speedup of dynamic warp formation (max warp 4) over the
//! serialized scalar baseline, per application.
//!
//! Paper shape: average ~1.45x; compute-bound uniform kernels win big
//! (cp 3.9x, BinomialOptions 2.25x); memory-bound kernels sit near 1.0x;
//! irregularly divergent kernels (MersenneTwister, mri-fhd) lose.

use dpvk_bench::{format_table, run_suite};

fn main() {
    let results = run_suite(1).expect("suite validates");
    let mut rows = Vec::new();
    let mut product = 1.0f64;
    let mut counted = 0usize;
    for r in &results {
        let s = r.dynamic_speedup();
        // The throughput microbenchmark belongs to Table 1, not Figure 6.
        if r.name != "throughput" {
            product *= s;
            counted += 1;
        }
        rows.push(vec![
            r.name.to_string(),
            format!("{s:.2}x"),
            format!("{}", r.baseline.exec.total_cycles()),
            format!("{}", r.dynamic.exec.total_cycles()),
            r.stands_for.to_string(),
        ]);
    }
    let geomean = product.powf(1.0 / counted as f64);
    println!("Figure 6: dynamic warp formation speedup over scalar baseline");
    println!();
    println!(
        "{}",
        format_table(&["app", "speedup", "scalar cycles", "vec4 cycles", "stands for"], &rows)
    );
    println!("geometric mean speedup: {geomean:.2}x (paper average: 1.45x)");
}
