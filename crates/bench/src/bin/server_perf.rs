//! Closed-loop benchmark of the multi-tenant kernel service.
//!
//! Unlike `host_perf`, which times the in-process launch path, this
//! binary measures the serving layer end to end: framing, admission,
//! the retry ladder, and read-back over real loopback TCP. Its job is
//! to put numbers on *graceful degradation* — what happens to latency
//! and shed rate when offered load exceeds admission capacity, and
//! what server-side retries cost when workers are panicking.
//!
//! Usage:
//!   server_perf [--quick] [--out PATH] [--fault]
//!
//! * `--quick` — reduced client counts and iteration budget (CI smoke)
//! * `--out PATH` — write results as JSON (default: stdout table only)
//! * `--fault` — additionally run the fault-injection scenario
//!   (requires building with `--features fault-inject`)
//!
//! Three scenarios:
//!
//! * `baseline` — as many closed-loop clients as admission slots: no
//!   shedding expected, this is the service's un-contended latency.
//! * `overload` — twice as many clients as slots: the gate must shed
//!   (non-zero `Overloaded`), and the p99 of *admitted* requests must
//!   stay bounded (shedding refuses work instead of queueing it).
//! * `fault` — baseline load with a budgeted worker-panic plan
//!   installed: the retry ladder must absorb the panics (non-zero
//!   retries, zero typed errors).

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use dpvk_bench::format_table;
use dpvk_server::{Client, LaunchSpec, Response, Server, ServerConfig, WireBuffer, WireParam};
use dpvk_vm::MachineModel;

/// Fixed admission capacity so results are comparable across machines
/// with different core counts.
const CAPACITY: usize = 4;
const HEAP: usize = 64 << 20;

/// Work per launch: `data[i] *= 3` over this many u32 elements. Large
/// enough that launches genuinely overlap on the pool (so the overload
/// scenario contends on real work, not socket timing).
const N: u32 = 1 << 15;

/// The benched kernel, parameterized by entry-point name so each tenant
/// owns a distinct kernel (kernel names are globally owned).
fn kernel_source(name: &str) -> String {
    format!(
        r#"
.kernel {name} (.param .u64 data, .param .u32 n) {{
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}}
"#
    )
}

#[derive(Debug, Default)]
struct Tally {
    requests: u64,
    completed: u64,
    shed: u64,
    errors: u64,
    retries: u64,
    degraded: u64,
    /// Submit-to-complete latencies of completed requests, ns.
    latencies_ns: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.requests += other.requests;
        self.completed += other.completed;
        self.shed += other.shed;
        self.errors += other.errors;
        self.retries += other.retries;
        self.degraded += other.degraded;
        self.latencies_ns.extend(other.latencies_ns);
    }
}

#[derive(Debug)]
struct ScenarioResult {
    scenario: String,
    clients: usize,
    capacity: usize,
    requests: u64,
    completed: u64,
    shed: u64,
    errors: u64,
    retries: u64,
    degraded: u64,
    p50_ns: u64,
    p99_ns: u64,
    launches_per_sec: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One closed-loop client: `iters` launches of its tenant's kernel,
/// honoring `retry_after_ms` hints on shed (bounded, so the run always
/// terminates), counting every outcome.
fn client_loop(addr: SocketAddr, tenant: String, kernel: String, iters: u64) -> Tally {
    let mut client = Client::connect(addr).expect("client connects");
    let input: Vec<u8> = (0..N).flat_map(u32::to_le_bytes).collect();
    let mut tally = Tally::default();
    for _ in 0..iters {
        let spec = LaunchSpec {
            tenant: tenant.clone(),
            kernel: kernel.clone(),
            grid: [N.div_ceil(64), 1, 1],
            block: [64, 1, 1],
            deadline_ms: 0,
            buffers: vec![WireBuffer { bytes: input.clone(), read_back: false }],
            params: vec![WireParam::Buffer(0), WireParam::U32(N)],
        };
        tally.requests += 1;
        let t0 = Instant::now();
        match client.launch(spec).expect("transport stays up") {
            Response::Launched { attempts, degraded, .. } => {
                tally.completed += 1;
                tally.retries += u64::from(attempts.saturating_sub(1));
                tally.degraded += u64::from(degraded);
                tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
            }
            Response::Overloaded { retry_after_ms } => {
                tally.shed += 1;
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.min(100))));
            }
            Response::Error { .. } => tally.errors += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    tally
}

fn server_config() -> ServerConfig {
    ServerConfig {
        admission_capacity: Some(CAPACITY),
        // Per-tenant limits out of the way: this benchmark exercises the
        // *global* gate; tests cover the per-tenant paths.
        tenant_rate_per_sec: 1e9,
        tenant_burst: 1e9,
        tenant_parallelism: 64,
        ..ServerConfig::default()
    }
}

/// Run `clients` closed-loop clients against a fresh server; one tenant
/// (and kernel) per client so the tenant registry is exercised at the
/// same scale as the connection count.
fn run_scenario(scenario: &str, clients: usize, iters: u64) -> ScenarioResult {
    let server =
        Server::bind(MachineModel::sandybridge_sse(), HEAP, server_config()).expect("server binds");
    let capacity = server.admission_capacity();
    let handle = server.start().expect("server starts");
    let addr = handle.addr();

    // Register every tenant's kernel up front so the timed window is
    // pure launch traffic.
    for c in 0..clients {
        let mut setup = Client::connect(addr).expect("setup client connects");
        match setup
            .register(&format!("tenant-{c}"), &kernel_source(&format!("bench_k{c}")))
            .expect("register transport")
        {
            Response::Registered => {}
            other => panic!("registration failed: {other:?}"),
        }
    }

    let mut total = Tally::default();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    client_loop(addr, format!("tenant-{c}"), format!("bench_k{c}"), iters)
                })
            })
            .collect();
        for h in handles {
            total.merge(h.join().expect("client thread"));
        }
    });
    let elapsed_ns = (t0.elapsed().as_nanos() as u64).max(1);
    handle.shutdown();
    total.latencies_ns.sort_unstable();
    ScenarioResult {
        scenario: scenario.to_string(),
        clients,
        capacity,
        requests: total.requests,
        completed: total.completed,
        shed: total.shed,
        errors: total.errors,
        retries: total.retries,
        degraded: total.degraded,
        p50_ns: percentile(&total.latencies_ns, 0.50),
        p99_ns: percentile(&total.latencies_ns, 0.99),
        launches_per_sec: total.completed as f64 * 1e9 / elapsed_ns as f64,
    }
}

/// The fault scenario: baseline load with a budgeted worker-panic plan
/// installed. Every panic must be absorbed by the retry ladder.
#[cfg(feature = "fault-inject")]
fn run_fault_scenario(clients: usize, iters: u64) -> ScenarioResult {
    use dpvk_core::faults::{install, FaultPlan};
    // CTA 0 exists in every launch; the budget caps how many attempts
    // (first tries *and* retries) panic, so with a budget below the
    // ladder depth every faulted launch still recovers.
    let _guard =
        install(FaultPlan { panic_at_cta: Some(0), panic_budget: Some(3), ..Default::default() });
    // The injected panics would spam stderr through the default hook.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut result = run_scenario("fault", clients, iters);
    std::panic::set_hook(prev_hook);
    result.scenario = "fault".into();
    result
}

fn render_json(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"server_perf\",\n");
    out.push_str("  \"unit\": \"ns_submit_to_complete_over_tcp\",\n");
    out.push_str(&format!("  \"elements_per_launch\": {N},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"clients\": {}, \"capacity\": {}, \
             \"requests\": {}, \"completed\": {}, \"shed\": {}, \"errors\": {}, \
             \"retries\": {}, \"degraded\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"launches_per_sec\": {:.1}}}{comma}\n",
            r.scenario,
            r.clients,
            r.capacity,
            r.requests,
            r.completed,
            r.shed,
            r.errors,
            r.retries,
            r.degraded,
            r.p50_ns,
            r.p99_ns,
            r.launches_per_sec
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let fault = args.iter().any(|a| a == "--fault");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let (iters, baseline_clients) = if quick { (12, CAPACITY) } else { (60, CAPACITY) };
    let overload_clients = 2 * baseline_clients;

    let mut results = Vec::new();
    eprintln!("server_perf: baseline ({baseline_clients} clients, {iters} iters each)...");
    results.push(run_scenario("baseline", baseline_clients, iters));
    eprintln!("server_perf: overload ({overload_clients} clients, {iters} iters each)...");
    results.push(run_scenario("overload", overload_clients, iters));

    if fault {
        #[cfg(feature = "fault-inject")]
        {
            eprintln!("server_perf: fault ({baseline_clients} clients, {iters} iters each)...");
            results.push(run_fault_scenario(baseline_clients, iters));
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            eprintln!("server_perf: --fault requires `--features fault-inject`; skipping scenario");
        }
    }

    let headers = [
        "scenario", "clients", "cap", "req", "ok", "shed", "err", "retry", "degr", "p50 ms",
        "p99 ms", "ok/s",
    ];
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.scenario.clone(),
            r.clients.to_string(),
            r.capacity.to_string(),
            r.requests.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.errors.to_string(),
            r.retries.to_string(),
            r.degraded.to_string(),
            format!("{:.2}", r.p50_ns as f64 / 1e6),
            format!("{:.2}", r.p99_ns as f64 / 1e6),
            format!("{:.1}", r.launches_per_sec),
        ]);
    }
    println!("{}", format_table(&headers, &rows));

    // Graceful-degradation sanity: overload must shed rather than queue,
    // and nothing may fail with a typed error in the healthy scenarios.
    let baseline = &results[0];
    let overload = &results[1];
    let mut ok = true;
    if overload.shed == 0 {
        eprintln!("FAIL: overload scenario shed nothing (queueing instead of refusing?)");
        ok = false;
    }
    if baseline.errors != 0 || overload.errors != 0 {
        eprintln!("FAIL: healthy scenarios surfaced typed errors");
        ok = false;
    }
    if let Some(fault) = results.iter().find(|r| r.scenario == "fault") {
        if fault.retries == 0 {
            eprintln!("FAIL: fault scenario saw no retries (plan not tripping?)");
            ok = false;
        }
        if fault.errors != 0 {
            eprintln!("FAIL: fault scenario leaked injected panics as errors");
            ok = false;
        }
    }

    if let Some(path) = out_path {
        std::fs::write(&path, render_json(&results)).expect("write results");
        eprintln!("server_perf: wrote {path}");
    }
    if let Err(e) = dpvk_trace::write_if_enabled() {
        eprintln!("warning: failed to write trace report: {e}");
    }
    std::process::exit(i32::from(!ok));
}
