//! # dpvk-bench
//!
//! Reproduction harness for the paper's evaluation: one binary per table
//! and figure (see DESIGN.md §4), plus shared helpers for running the
//! workload suite under the three execution policies and formatting
//! report tables.

#![warn(missing_docs)]

use dpvk_core::{Device, ExecConfig, LaunchStats};
use dpvk_vm::MachineModel;
use dpvk_workloads::{all_workloads, Workload, WorkloadError};

/// Results of one workload under the three policies of the evaluation.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Workload name.
    pub name: &'static str,
    /// Which paper application it stands in for.
    pub stands_for: &'static str,
    /// Serialized scalar baseline (the paper's comparison baseline).
    pub baseline: LaunchStats,
    /// Dynamic warp formation, max warp = 4.
    pub dynamic: LaunchStats,
    /// Static warp formation with thread-invariant elimination.
    pub static_tie: LaunchStats,
    /// Optimized static instruction counts of the width-4 specializations
    /// `(dynamic, static+TIE)` summed over the workload's kernels.
    pub insts_w4: (usize, usize),
    /// Same at width 2.
    pub insts_w2: (usize, usize),
}

impl AppResult {
    /// Speedup of dynamic warp formation over the scalar baseline
    /// (Figure 6).
    pub fn dynamic_speedup(&self) -> f64 {
        self.baseline.exec.total_cycles() as f64 / self.dynamic.exec.total_cycles() as f64
    }

    /// Speedup of static formation + TIE over dynamic formation
    /// (Figure 10).
    pub fn static_over_dynamic(&self) -> f64 {
        self.dynamic.exec.total_cycles() as f64 / self.static_tie.exec.total_cycles() as f64
    }

    /// Fraction of instructions removed by thread-invariant elimination at
    /// the given width (Section 6.2's 9.5% / 11.5% metric).
    pub fn tie_reduction(&self, w: u32) -> f64 {
        let (dynamic, tie) = match w {
            2 => self.insts_w2,
            _ => self.insts_w4,
        };
        if dynamic == 0 {
            return 0.0;
        }
        1.0 - tie as f64 / dynamic as f64
    }
}

/// Run one workload under one policy on a fresh device, returning launch
/// statistics (the run validates its own output).
///
/// # Errors
///
/// Propagates workload and runtime errors.
pub fn run_one(
    workload: &dyn Workload,
    config: &ExecConfig,
) -> Result<(LaunchStats, Device), WorkloadError> {
    let dev = Device::new(MachineModel::sandybridge_sse(), 256 << 20);
    dev.register_source(&workload.source())?;
    let outcome = workload.run(&dev, config)?;
    Ok((outcome.stats, dev))
}

/// Run the full suite under all three policies with `workers` worker
/// threads (1 gives deterministic modeled cycles).
///
/// # Errors
///
/// Propagates the first workload failure.
pub fn run_suite(workers: usize) -> Result<Vec<AppResult>, WorkloadError> {
    let mut out = Vec::new();
    for w in all_workloads() {
        let (baseline, _) = run_one(w.as_ref(), &ExecConfig::baseline().with_workers(workers))?;
        let (dynamic, dev) = run_one(w.as_ref(), &ExecConfig::dynamic(4).with_workers(workers))?;
        let (static_tie, _) =
            run_one(w.as_ref(), &ExecConfig::static_tie(4).with_workers(workers))?;
        let insts_w4 = instruction_counts(&dev, w.as_ref(), 4)?;
        let insts_w2 = instruction_counts(&dev, w.as_ref(), 2)?;
        out.push(AppResult {
            name: w.name(),
            stands_for: w.stands_for(),
            baseline,
            dynamic,
            static_tie,
            insts_w4,
            insts_w2,
        });
    }
    Ok(out)
}

/// Optimized instruction counts (dynamic vs static+TIE) of a workload's
/// kernels at warp width `w`.
///
/// Both specializations are built *without* the uniform-value analysis so
/// the measurement isolates thread-invariant expression elimination, the
/// way the paper's Section 6.2 measures it (their compiler has no uniform
/// hoisting pass — TIE via CSE is the only mechanism removing replicated
/// thread-invariant work).
fn instruction_counts(
    dev: &Device,
    workload: &dyn Workload,
    w: u32,
) -> Result<(usize, usize), WorkloadError> {
    use dpvk_core::{specialize, translate, SpecializeOptions};
    let _ = dev;
    let module =
        dpvk_ptx::parse_module(&workload.source()).map_err(|e| WorkloadError::Core(e.into()))?;
    let mut dynamic = 0;
    let mut tie = 0;
    for k in &module.kernels {
        let tk = translate(k).map_err(WorkloadError::Core)?;
        let d = specialize(&tk, &SpecializeOptions::dynamic(w).without_uniform_analysis())
            .map_err(WorkloadError::Core)?;
        let s = specialize(&tk, &SpecializeOptions::static_tie(w).without_uniform_analysis())
            .map_err(WorkloadError::Core)?;
        dynamic += d.post_opt_instructions;
        tie += s.post_opt_instructions;
    }
    Ok((dynamic, tie))
}

/// GFLOP/s of a launch on the whole modeled chip, assuming CTAs spread
/// evenly over the cores.
pub fn gflops(stats: &LaunchStats, model: &MachineModel) -> f64 {
    let cycles = stats.exec.total_cycles();
    if cycles == 0 {
        return 0.0;
    }
    stats.exec.flops as f64 * model.clock_ghz * model.cores as f64 / cycles as f64
}

/// Render an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut s = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    s.push_str(&fmt_row(&headers, &widths));
    s.push('\n');
    s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    s.push('\n');
    for row in rows {
        s.push_str(&fmt_row(row, &widths));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["app", "speedup"],
            &[vec!["cp".into(), "3.9x".into()], vec!["blackscholes".into(), "1.8x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[3].starts_with("blackscholes"));
    }

    #[test]
    fn gflops_scaling() {
        let model = MachineModel::sandybridge_sse();
        let mut stats = LaunchStats::default();
        stats.exec.flops = 1000;
        stats.exec.cycles_body = 1000;
        // 1 flop/cycle * 3.4 GHz * 4 cores = 13.6 GFLOP/s.
        assert!((gflops(&stats, &model) - 13.6).abs() < 1e-9);
    }
}
