//! The daemon: accept loop, per-connection handlers, admission, and the
//! retry-with-degradation ladder around the device pool.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpvk_core::{CoreError, Device, ExecConfig, ParamValue};
use dpvk_trace::ServerOutcome;
use dpvk_vm::MachineModel;

use crate::admission::CapacityGate;
use crate::bufpool::BufferPool;
use crate::protocol::{write_frame, LaunchSpec, ProtoError, Request, Response, WireParam};
use crate::tenant::{TenantRegistry, TenantState};
use crate::ServerConfig;

/// How often an idle connection handler and the accept loop re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// The kernel service: owns the device (worker pool included), the
/// tenant registry, the buffer pool and the listening socket.
///
/// Create with [`Server::bind`], then either run [`Server::serve`] on
/// the current thread or [`Server::start`] a background thread and keep
/// the returned [`ServerHandle`] for shutdown.
pub struct Server {
    dev: Device,
    config: ServerConfig,
    listener: TcpListener,
    tenants: TenantRegistry,
    buffers: BufferPool,
    gate: Arc<CapacityGate>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind a server on `127.0.0.1` (ephemeral port) with a fresh device
    /// of the given machine model and heap size.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration errors.
    pub fn bind(
        model: MachineModel,
        heap_bytes: usize,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let dev = Device::new(model, heap_bytes);
        let capacity = config.admission_capacity.unwrap_or_else(|| 2 * dev.pool_workers());
        Ok(Server {
            dev,
            config,
            listener,
            tenants: TenantRegistry::default(),
            buffers: BufferPool::default(),
            gate: CapacityGate::new(capacity),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address clients connect to.
    ///
    /// # Errors
    ///
    /// Socket introspection errors.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// In-flight capacity of the admission gate.
    pub fn admission_capacity(&self) -> usize {
        self.gate.capacity()
    }

    /// Run the accept loop on the current thread until [`ServerHandle`]
    /// (or anything holding the shutdown flag) requests shutdown. Each
    /// connection gets a scoped handler thread; requests on one
    /// connection execute in order (the handler blocks on each launch),
    /// while connections proceed concurrently up to the admission
    /// limits.
    pub fn serve(&self) {
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || self.handle_connection(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => std::thread::sleep(POLL),
                }
            }
            // Scope exit joins the handlers; each notices the flag within
            // one poll interval and drains.
        });
        self.gate.wait_idle();
    }

    /// Spawn [`Server::serve`] on a background thread and return a
    /// handle that shuts it down (and joins it) on
    /// [`ServerHandle::shutdown`] or drop.
    ///
    /// # Errors
    ///
    /// Socket introspection errors (the bound address is captured into
    /// the handle).
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let join =
            std::thread::Builder::new().name("dpvk-server".into()).spawn(move || self.serve())?;
        Ok(ServerHandle { addr, shutdown, join: Some(join) })
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        loop {
            let payload = match read_frame_interruptible(&mut stream, &self.shutdown) {
                Ok(Some(p)) => p,
                Ok(None) | Err(_) => return,
            };
            let response = match Request::decode(&payload) {
                Ok(req) => self.handle_request(&req),
                Err(e) => proto_error(&e),
            };
            if write_frame(&mut stream, &response.encode()).is_err() {
                return;
            }
        }
    }

    fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::Register { tenant, source } => self.handle_register(tenant, source),
            Request::Launch(spec) => self.handle_launch(spec),
            Request::Stats { tenant } => Response::Stats(self.tenant_stats(tenant)),
        }
    }

    /// Assemble a `Stats` payload: the tenant's serving counters, its
    /// adaptation state (the width committed for its most-launched
    /// kernel, plus respecializations summed across its kernels), and a
    /// device-wide heap snapshot. An unknown tenant gets zeroed serving
    /// counters but still sees the heap snapshot.
    fn tenant_stats(&self, tenant: &str) -> crate::protocol::TenantStats {
        let mut stats = crate::protocol::TenantStats::default();
        if let Some(t) = self.tenants.get(tenant) {
            stats = t.stats();
            let mut kernels: Vec<String> = t
                .kernels
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .cloned()
                .collect();
            // Sorted so "most-launched" ties break deterministically.
            kernels.sort();
            let mut best_launches = 0u64;
            for kernel in &kernels {
                let snap = self.dev.width_policy(kernel);
                stats.respec_events += snap.respec_events;
                if let Some(w) = snap.chosen_width {
                    if snap.launches > best_launches {
                        best_launches = snap.launches;
                        stats.chosen_width = u64::from(w);
                    }
                }
            }
        }
        let mem = self.dev.memory_stats();
        stats.heap_live_bytes = mem.live_bytes;
        stats.heap_high_water = mem.high_water;
        stats
    }

    fn handle_register(&self, tenant_name: &str, source: &str) -> Response {
        let tenant = self.tenants.get_or_create(tenant_name, &self.config);
        // Claim every kernel name *before* registering: a name conflict
        // must not let one tenant overwrite another's registered kernel.
        let names = match dpvk_ptx::parse_module(source) {
            Ok(module) => module.kernels.iter().map(|k| k.name.clone()).collect::<Vec<_>>(),
            Err(e) => {
                let e = CoreError::from(e);
                return error_response(&e, 0);
            }
        };
        for name in &names {
            if let Err(owner) = self.tenants.claim_kernel(name, tenant_name) {
                return Response::Error {
                    code: "name_conflict".into(),
                    retryable: false,
                    attempts: 0,
                    message: format!("kernel `{name}` is already registered by tenant `{owner}`"),
                };
            }
        }
        if let Err(e) = self.dev.register_source(source) {
            return error_response(&e, 0);
        }
        let mut kernels = tenant.kernels.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for name in names {
            kernels.insert(name);
        }
        Response::Registered
    }

    fn handle_launch(&self, spec: &LaunchSpec) -> Response {
        let tenant = self.tenants.get_or_create(&spec.tenant, &self.config);
        dpvk_trace::record_server(&tenant.name, ServerOutcome::Request);
        tenant.update_stats(|s| s.requests += 1);

        // Ownership: launching another tenant's kernel is denied, an
        // unknown kernel is not found. Checked before admission so a
        // misaddressed request cannot consume another tenant's budget.
        if !tenant.owns(&spec.kernel) {
            let (code, message) = match self.tenants.owner_of(&spec.kernel) {
                Some(owner) => {
                    ("denied", format!("kernel `{}` belongs to tenant `{owner}`", spec.kernel))
                }
                None => ("not_found", format!("kernel `{}` is not registered", spec.kernel)),
            };
            tenant.update_stats(|s| s.failed += 1);
            dpvk_trace::record_server(&tenant.name, ServerOutcome::Failed);
            return Response::Error { code: code.into(), retryable: false, attempts: 0, message };
        }

        // Quota: a tenant that has spent its execution budget gets a
        // typed, non-retryable refusal, not silent service.
        if let Some(quota) = self.config.tenant_quota_exec_ns {
            let spent = tenant.exec_ns.load(Ordering::Relaxed);
            if spent >= quota {
                tenant.update_stats(|s| s.failed += 1);
                dpvk_trace::record_server(&tenant.name, ServerOutcome::Failed);
                return Response::Error {
                    code: "quota".into(),
                    retryable: false,
                    attempts: 0,
                    message: format!("execution quota exhausted ({spent} of {quota} ns)"),
                };
            }
        }

        // Admission: token bucket first (per-tenant rate), then the
        // global capacity gate (pool saturation), then the tenant's
        // stream-group slots (per-tenant concurrency). All three shed
        // with an explicit retry hint instead of queueing.
        if let Err(retry_after_ms) = tenant.try_take_token() {
            return self.shed(&tenant, retry_after_ms);
        }
        let Some(_global_permit) = self.gate.try_acquire() else {
            return self.shed(&tenant, self.config.shed_retry_ms);
        };
        let Some(_tenant_permit) = tenant.slots.try_acquire() else {
            return self.shed(&tenant, self.config.shed_retry_ms);
        };

        dpvk_trace::record_server(&tenant.name, ServerOutcome::Admitted);
        tenant.update_stats(|s| s.admitted += 1);
        self.execute_admitted(&tenant, spec)
    }

    fn shed(&self, tenant: &TenantState, retry_after_ms: u32) -> Response {
        dpvk_trace::record_server(&tenant.name, ServerOutcome::Shed);
        tenant.update_stats(|s| s.shed += 1);
        Response::Overloaded { retry_after_ms }
    }

    /// The retry ladder, run with admission permits held: vectorized
    /// attempts with capped exponential backoff on transient failures
    /// (worker panics, deadline-adjacent timeouts), then one
    /// scalar-baseline attempt, then a typed error.
    fn execute_admitted(&self, tenant: &TenantState, spec: &LaunchSpec) -> Response {
        // Resolve buffers and parameters before the first attempt.
        let mut ptrs = Vec::with_capacity(spec.buffers.len());
        for buf in &spec.buffers {
            match self.buffers.acquire(&self.dev, buf.bytes.len()) {
                Ok(ptr) => ptrs.push(ptr),
                Err(e) => {
                    self.release_buffers(&ptrs);
                    return self.fail(tenant, &e, 0, 0);
                }
            }
        }
        let mut params = Vec::with_capacity(spec.params.len());
        for p in &spec.params {
            params.push(match *p {
                WireParam::U32(v) => ParamValue::U32(v),
                WireParam::U64(v) => ParamValue::U64(v),
                WireParam::F32(v) => ParamValue::F32(v),
                WireParam::F64(v) => ParamValue::F64(v),
                WireParam::Buffer(i) => match ptrs.get(i as usize) {
                    Some(&ptr) => ParamValue::Ptr(ptr),
                    None => {
                        self.release_buffers(&ptrs);
                        let e = CoreError::BadLaunch(format!(
                            "parameter references buffer {i} of {}",
                            ptrs.len()
                        ));
                        return self.fail(tenant, &e, 0, 0);
                    }
                },
            });
        }
        let deadline_ms = match spec.deadline_ms {
            0 => self.config.default_deadline_ms,
            ms => ms.min(self.config.max_deadline_ms),
        };
        let budget = Duration::from_millis(u64::from(deadline_ms));

        let mut config = ExecConfig::dynamic(4);
        let mut attempts: u32 = 0;
        let mut degraded = false;
        let mut exec_ns: u64 = 0;
        let outcome = loop {
            attempts += 1;
            // Re-upload inputs on every attempt: kernels are not
            // idempotent (in-place updates), so a retry must not see a
            // half-written buffer from the failed attempt.
            if let Some(e) = spec
                .buffers
                .iter()
                .zip(&ptrs)
                .find_map(|(buf, &ptr)| self.dev.memcpy_htod(ptr, &buf.bytes).err())
            {
                break Err(e);
            }
            let t0 = Instant::now();
            let result = self.dev.launch_with_deadline(
                &spec.kernel,
                spec.grid,
                spec.block,
                &params,
                &config,
                budget,
            );
            exec_ns += t0.elapsed().as_nanos() as u64;
            match result {
                Ok(_stats) => break Ok(()),
                Err(e) if e.is_retryable() => {
                    if attempts <= self.config.max_retries {
                        dpvk_trace::record_server(&tenant.name, ServerOutcome::Retried);
                        tenant.update_stats(|s| s.retries += 1);
                        let shift = (attempts - 1).min(16);
                        let backoff = self
                            .config
                            .backoff_base_ms
                            .saturating_mul(1 << shift)
                            .min(self.config.backoff_cap_ms);
                        std::thread::sleep(Duration::from_millis(backoff));
                        continue;
                    }
                    if self.config.degrade_to_scalar && !degraded {
                        // Last rung before giving up: the scalar baseline
                        // avoids the vector-specialized path entirely.
                        degraded = true;
                        config = ExecConfig::baseline();
                        dpvk_trace::record_server(&tenant.name, ServerOutcome::Degraded);
                        tenant.update_stats(|s| s.degraded += 1);
                        continue;
                    }
                    break Err(e);
                }
                Err(e) => break Err(e),
            }
        };

        let response = match outcome {
            Ok(()) => {
                let mut outputs = Vec::new();
                let mut read_back_error = None;
                for (buf, &ptr) in spec.buffers.iter().zip(&ptrs) {
                    if !buf.read_back {
                        continue;
                    }
                    let mut bytes = vec![0u8; buf.bytes.len()];
                    match self.dev.memcpy_dtoh(&mut bytes, ptr) {
                        Ok(()) => outputs.push(bytes),
                        Err(e) => {
                            read_back_error = Some(e);
                            break;
                        }
                    }
                }
                match read_back_error {
                    Some(e) => self.fail(tenant, &e, attempts, exec_ns),
                    None => {
                        dpvk_trace::record_server(
                            &tenant.name,
                            ServerOutcome::Completed { exec_ns },
                        );
                        tenant.update_stats(|s| {
                            s.completed += 1;
                            s.exec_ns += exec_ns;
                        });
                        tenant.charge_exec_ns(exec_ns);
                        Response::Launched { attempts, degraded, outputs }
                    }
                }
            }
            Err(e) => self.fail(tenant, &e, attempts, exec_ns),
        };
        self.release_buffers(&ptrs);
        response
    }

    fn fail(&self, tenant: &TenantState, e: &CoreError, attempts: u32, exec_ns: u64) -> Response {
        dpvk_trace::record_server(&tenant.name, ServerOutcome::Failed);
        tenant.update_stats(|s| {
            s.failed += 1;
            s.exec_ns += exec_ns;
        });
        tenant.charge_exec_ns(exec_ns);
        error_response(e, attempts)
    }

    fn release_buffers(&self, ptrs: &[dpvk_core::DevicePtr]) {
        for &ptr in ptrs {
            self.buffers.release(&self.dev, ptr);
        }
    }
}

fn error_response(e: &CoreError, attempts: u32) -> Response {
    Response::Error {
        code: e.code().into(),
        retryable: e.is_retryable(),
        attempts,
        message: e.to_string(),
    }
}

fn proto_error(e: &ProtoError) -> Response {
    Response::Error { code: "proto".into(), retryable: false, attempts: 0, message: e.to_string() }
}

/// [`read_frame`] against a socket with a read timeout installed:
/// timeouts while *waiting between frames* loop back to check the
/// shutdown flag; timeouts (or EOF) *inside* a frame mean the peer died
/// mid-message and close the connection.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    // The rest of the frame follows the first length byte; a peer that
    // started a frame is expected to finish it promptly.
    let mut rest = [0u8; 3];
    read_full(stream, &mut rest)?;
    let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len > crate::protocol::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::TooLarge(u64::from(len)).to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload)?;
    Ok(Some(payload))
}

/// `read_exact` that rides through read-timeout and interrupt errors
/// (the socket has a short timeout installed for shutdown polling).
fn read_full(stream: &mut TcpStream, mut buf: &mut [u8]) -> io::Result<()> {
    let mut stalls = 0;
    while !buf.is_empty() {
        match stream.read(buf) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                buf = &mut buf[n..];
                stalls = 0;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                stalls += 1;
                // ~10 s of silence mid-frame: the peer is gone.
                if stalls > 500 {
                    return Err(io::ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Shuts the background server down (sets the flag, joins the thread) on
/// [`ServerHandle::shutdown`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and join the server thread. In-flight requests
    /// drain; idle connections close within one poll interval.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
