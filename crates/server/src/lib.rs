//! # dpvk-server
//!
//! A hardened multi-tenant kernel service on top of the dpvk device
//! pool: clients submit kernel source and launch requests over a simple
//! length-prefixed TCP protocol ([`protocol`]), and the server executes
//! them on a shared [`Device`](dpvk_core::Device) — the "millions of
//! users" serving layer the paper's dynamic compiler exists for.
//!
//! Robustness is the headline, not throughput:
//!
//! * **Admission control** — each tenant has a token bucket (rate +
//!   burst) and a stream group bounding its concurrent launches; a
//!   global capacity gate bounds total in-flight work against the
//!   device pool.
//! * **Load shedding** — requests that do not pass admission are
//!   answered immediately with [`Response::Overloaded`] and a
//!   retry-after hint instead of queueing unboundedly, so overload
//!   degrades into fast refusals with bounded latency for the admitted.
//! * **Retry with degradation** — transient failures (contained worker
//!   panics, deadline-adjacent timeouts) are retried server-side with
//!   capped exponential backoff; when the vectorized retry budget is
//!   exhausted the launch falls back to the scalar baseline
//!   specialization before a typed error
//!   ([`CoreError::code`](dpvk_core::CoreError::code)) is surfaced.
//! * **Tenant isolation** — kernels are owned by the registering
//!   tenant; inputs are re-uploaded per attempt so retries cannot see
//!   another attempt's partial writes; per-tenant admission keeps one
//!   tenant's traffic from starving the rest. Per-tenant outcomes are
//!   visible in the trace report's `tenants` section and via
//!   [`Request::Stats`].
//!
//! ## Quickstart
//!
//! ```
//! use dpvk_server::{Client, LaunchSpec, Response, Server, ServerConfig, WireBuffer, WireParam};
//! use dpvk_vm::MachineModel;
//!
//! let server = Server::bind(
//!     MachineModel::sandybridge_sse(),
//!     1 << 20,
//!     ServerConfig::default(),
//! )?;
//! let handle = server.start()?;
//! let mut client = Client::connect(handle.addr())?;
//! client.register(
//!     "tenant-a",
//!     r#"
//! .kernel triple (.param .u64 data, .param .u32 n) {
//!   .reg .u32 %r<4>;
//!   .reg .u64 %rd<3>;
//!   .reg .pred %p<2>;
//! entry:
//!   mov.u32 %r0, %tid.x;
//!   mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
//!   ld.param.u32 %r1, [n];
//!   setp.ge.u32 %p0, %r0, %r1;
//!   @%p0 bra done;
//!   cvt.u64.u32 %rd0, %r0;
//!   shl.u64 %rd0, %rd0, 2;
//!   ld.param.u64 %rd1, [data];
//!   add.u64 %rd1, %rd1, %rd0;
//!   ld.global.u32 %r2, [%rd1];
//!   mul.lo.u32 %r2, %r2, 3;
//!   st.global.u32 [%rd1], %r2;
//! done:
//!   ret;
//! }
//! "#,
//! )?;
//! let input: Vec<u8> = (0u32..64).flat_map(|v| v.to_le_bytes()).collect();
//! let resp = client.launch(LaunchSpec {
//!     tenant: "tenant-a".into(),
//!     kernel: "triple".into(),
//!     grid: [1, 1, 1],
//!     block: [64, 1, 1],
//!     deadline_ms: 0,
//!     buffers: vec![WireBuffer { bytes: input, read_back: true }],
//!     params: vec![WireParam::Buffer(0), WireParam::U32(64)],
//! })?;
//! match resp {
//!     Response::Launched { outputs, .. } => {
//!         let v = u32::from_le_bytes(outputs[0][4..8].try_into().unwrap());
//!         assert_eq!(v, 3);
//!     }
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
mod bufpool;
mod client;
pub mod protocol;
mod service;
mod tenant;

pub use client::Client;
pub use protocol::{LaunchSpec, ProtoError, Request, Response, TenantStats, WireBuffer, WireParam};
pub use service::{Server, ServerHandle};

/// Tunables of the serving layer. The defaults favor robustness for a
/// small pool: a generous per-tenant rate, a global in-flight cap of
/// twice the pool (`None` → `2 × pool_workers`), three retries with
/// 2→50 ms backoff, and degradation to scalar enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Per-attempt launch deadline when the request says `0`.
    pub default_deadline_ms: u32,
    /// Upper clamp on client-requested deadlines.
    pub max_deadline_ms: u32,
    /// Transient-failure retries after the first attempt (the scalar
    /// degradation rung is in addition to these).
    pub max_retries: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Global in-flight launch cap; `None` derives `2 × pool_workers`
    /// at bind time.
    pub admission_capacity: Option<usize>,
    /// Retry-after hint handed out when capacity (not the token bucket)
    /// sheds the request.
    pub shed_retry_ms: u32,
    /// Token-bucket refill rate per tenant.
    pub tenant_rate_per_sec: f64,
    /// Token-bucket burst per tenant.
    pub tenant_burst: f64,
    /// Stream-group size: concurrent launches allowed per tenant.
    pub tenant_parallelism: usize,
    /// Lifetime device-execution budget per tenant, nanoseconds;
    /// exceeded → typed `quota` errors. `None` = unlimited.
    pub tenant_quota_exec_ns: Option<u64>,
    /// Whether the retry ladder's last rung re-runs the launch on the
    /// scalar baseline specialization.
    pub degrade_to_scalar: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            default_deadline_ms: 2_000,
            max_deadline_ms: 10_000,
            max_retries: 3,
            backoff_base_ms: 2,
            backoff_cap_ms: 50,
            admission_capacity: None,
            shed_retry_ms: 25,
            tenant_rate_per_sec: 1_000.0,
            tenant_burst: 64.0,
            tenant_parallelism: 4,
            tenant_quota_exec_ns: None,
            degrade_to_scalar: true,
        }
    }
}
