//! Admission control: per-tenant token buckets and a global in-flight
//! capacity gate. Requests that do not pass are *shed* — answered
//! immediately with `Overloaded{retry_after}` — instead of queued, so a
//! traffic spike degrades into fast refusals rather than unbounded
//! memory growth and collapsing latency.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

/// A classic token bucket: `burst` capacity, refilled at `rate_per_sec`.
/// Each launch request takes one token; an empty bucket rejects with a
/// retry-after hint sized to when the next token lands.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket holding `burst` tokens, refilled at `rate_per_sec`.
    /// Rates and bursts are clamped to at least a trickle so a
    /// zero-configured bucket cannot divide by zero or deadlock clients
    /// forever.
    pub fn new(rate_per_sec: f64, burst: f64) -> TokenBucket {
        let rate_per_sec = rate_per_sec.max(0.001);
        let burst = burst.max(1.0);
        TokenBucket { rate_per_sec, burst, tokens: burst, last_refill: Instant::now() }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last_refill = now;
    }

    /// Take one token, or say how many milliseconds until one is
    /// available.
    pub fn try_take(&mut self, now: Instant) -> Result<(), u32> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let missing = 1.0 - self.tokens;
        let wait_ms = (missing / self.rate_per_sec * 1_000.0).ceil();
        Err((wait_ms as u64).clamp(1, 60_000) as u32)
    }
}

// ---------------------------------------------------------------------------
// Capacity gate
// ---------------------------------------------------------------------------

/// A non-blocking counting semaphore over the device pool: at most
/// `capacity` launches may be in flight at once; the rest are shed. A
/// condvar lets shutdown (and tests) wait for drain without polling.
#[derive(Debug)]
pub struct CapacityGate {
    capacity: usize,
    inflight: Mutex<usize>,
    idle: Condvar,
}

/// Holds one slot of a [`CapacityGate`]; released on drop.
#[derive(Debug)]
pub struct GatePermit {
    gate: Arc<CapacityGate>,
}

impl CapacityGate {
    /// A gate admitting at most `capacity` concurrent holders (floored
    /// at 1).
    pub fn new(capacity: usize) -> Arc<CapacityGate> {
        Arc::new(CapacityGate {
            capacity: capacity.max(1),
            inflight: Mutex::new(0),
            idle: Condvar::new(),
        })
    }

    /// Acquire a slot without blocking; `None` means saturated.
    pub fn try_acquire(self: &Arc<CapacityGate>) -> Option<GatePermit> {
        let mut inflight = lock(&self.inflight);
        if *inflight >= self.capacity {
            return None;
        }
        *inflight += 1;
        Some(GatePermit { gate: Arc::clone(self) })
    }

    /// Currently held slots.
    pub fn in_flight(&self) -> usize {
        *lock(&self.inflight)
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until every permit has been released.
    pub fn wait_idle(&self) {
        let mut inflight = lock(&self.inflight);
        while *inflight > 0 {
            inflight = self.idle.wait(inflight).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        let mut inflight = lock(&self.gate.inflight);
        *inflight -= 1;
        if *inflight == 0 {
            self.gate.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_burst_then_refuses_with_hint() {
        let mut b = TokenBucket::new(10.0, 3.0);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(b.try_take(t0).is_ok(), "burst tokens available immediately");
        }
        let hint = b.try_take(t0).unwrap_err();
        // 10 tokens/sec → the next token is ~100 ms away.
        assert!((1..=150).contains(&hint), "hint {hint} ms");
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut b = TokenBucket::new(1_000.0, 1.0);
        let t0 = Instant::now();
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_err(), "burst of one is spent");
        // 10 ms at 1000 tokens/sec refills well past one token.
        assert!(b.try_take(t0 + Duration::from_millis(10)).is_ok());
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(1_000_000.0, 2.0);
        let later = Instant::now() + Duration::from_secs(60);
        assert!(b.try_take(later).is_ok());
        assert!(b.try_take(later).is_ok());
        assert!(b.try_take(later).is_err(), "long idle must not bank more than burst");
    }

    #[test]
    fn gate_sheds_past_capacity_and_releases_on_drop() {
        let gate = CapacityGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "saturated");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        assert!(gate.try_acquire().is_some(), "slot returns on drop");
    }

    #[test]
    fn gate_wait_idle_observes_drain() {
        let gate = CapacityGate::new(4);
        let permit = gate.try_acquire().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.wait_idle());
        std::thread::sleep(Duration::from_millis(10));
        assert!(!waiter.is_finished(), "waiter blocked while a permit is held");
        drop(permit);
        waiter.join().unwrap();
        assert_eq!(gate.in_flight(), 0);
    }
}
