//! Length-prefixed binary wire protocol of the kernel service.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. Payloads are a tag byte plus
//! fixed-width little-endian fields; strings and byte buffers are
//! `u32`-length-prefixed. There is no external serialization dependency
//! — the encoding is hand-rolled, bounds-checked, and covered by
//! round-trip tests.
//!
//! Responses classify failures with the stable error codes of
//! [`CoreError::code`](dpvk_core::CoreError::code) (plus the
//! server-level codes `proto`, `denied`, `name_conflict` and `quota`),
//! never with `Display` text.

use std::fmt;
use std::io::{self, Read, Write};

/// Largest accepted frame payload (64 MiB): a malformed or hostile
/// length prefix must not make the server allocate unboundedly.
pub const MAX_FRAME: u32 = 64 << 20;

/// A launch parameter as carried on the wire. Buffers are referenced by
/// index into the request's buffer list; the server resolves them to
/// device pointers after upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireParam {
    /// 32-bit unsigned immediate.
    U32(u32),
    /// 64-bit unsigned immediate.
    U64(u64),
    /// 32-bit float immediate.
    F32(f32),
    /// 64-bit float immediate.
    F64(f64),
    /// Index into [`LaunchSpec::buffers`].
    Buffer(u32),
}

/// One device buffer of a launch request: its initial contents and
/// whether the client wants the bytes copied back after the launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireBuffer {
    /// Initial contents, uploaded before every attempt (retries re-run
    /// the kernel on fresh inputs, so non-idempotent kernels stay
    /// correct).
    pub bytes: Vec<u8>,
    /// Copy the buffer back to the client in the `Launched` response.
    pub read_back: bool,
}

/// A launch request as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSpec {
    /// Tenant the request bills to.
    pub tenant: String,
    /// Kernel name (must have been registered by the same tenant).
    pub kernel: String,
    /// Grid dimensions (CTAs).
    pub grid: [u32; 3],
    /// CTA dimensions (threads).
    pub block: [u32; 3],
    /// Per-attempt deadline in milliseconds; `0` uses the server
    /// default. Clamped to the server maximum.
    pub deadline_ms: u32,
    /// Device buffers, uploaded in order.
    pub buffers: Vec<WireBuffer>,
    /// Kernel parameters, in signature order.
    pub params: Vec<WireParam>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register kernel source under a tenant. Kernels are owned by the
    /// registering tenant; other tenants cannot launch (or re-register)
    /// them.
    Register {
        /// Owning tenant.
        tenant: String,
        /// Kernel source text.
        source: String,
    },
    /// Launch a registered kernel.
    Launch(LaunchSpec),
    /// Fetch a tenant's serving statistics.
    Stats {
        /// Tenant to report on.
        tenant: String,
    },
}

/// Per-tenant serving statistics returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Launch requests received (before admission).
    pub requests: u64,
    /// Requests admitted past the bucket and capacity gates.
    pub admitted: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Server-side retries of transient failures.
    pub retries: u64,
    /// Requests that fell back to the scalar baseline.
    pub degraded: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that surfaced a typed error.
    pub failed: u64,
    /// Cumulative device execution wall time, nanoseconds.
    pub exec_ns: u64,
    /// Warp width the adaptive policy committed for the tenant's
    /// most-launched kernel (`0` until a width has been chosen, or when
    /// adaptation is off).
    pub chosen_width: u64,
    /// Background respecializations scheduled across the tenant's
    /// kernels by the adaptive width policy.
    pub respec_events: u64,
    /// Device heap bytes currently live (device-wide, snapshotted when
    /// the stats response was built).
    pub heap_live_bytes: u64,
    /// Device heap high-water mark, bytes (device-wide).
    pub heap_high_water: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Registration succeeded.
    Registered,
    /// The launch completed.
    Launched {
        /// Total launch attempts (1 = first try succeeded).
        attempts: u32,
        /// Whether the result came from the scalar-baseline rung of the
        /// retry ladder.
        degraded: bool,
        /// Contents of each `read_back` buffer, in buffer order.
        outputs: Vec<Vec<u8>>,
    },
    /// The request was shed by admission control; retry after the hint.
    Overloaded {
        /// Client backoff hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The request failed with a typed error.
    Error {
        /// Stable machine-readable code (see module docs).
        code: String,
        /// Whether a client-side retry may plausibly succeed.
        retryable: bool,
        /// Launch attempts consumed (0 if the request never launched).
        attempts: u32,
        /// Human-readable rendering, for logs only.
        message: String,
    },
    /// Tenant statistics.
    Stats(TenantStats),
}

/// A malformed payload (truncated fields, unknown tags, oversized or
/// non-UTF-8 strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before a field was complete.
    Truncated,
    /// Unknown request/response/param tag.
    BadTag(u8),
    /// A length prefix exceeded [`MAX_FRAME`].
    TooLarge(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload had bytes left over after the message.
    TrailingBytes(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            ProtoError::TooLarge(n) => write!(f, "length {n} exceeds the frame cap"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests).
///
/// # Errors
///
/// I/O errors pass through; an oversized length prefix surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::TooLarge(u64::from(len)).to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one frame.
///
/// # Errors
///
/// I/O errors pass through; a payload over [`MAX_FRAME`] surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > u64::from(MAX_FRAME) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::TooLarge(payload.len() as u64).to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.data.len() {
            return Err(ProtoError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()?;
        if len > MAX_FRAME {
            return Err(ProtoError::TooLarge(u64::from(len)));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtoError::BadUtf8)
    }

    fn finish(self) -> Result<(), ProtoError> {
        let left = self.data.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(left))
        }
    }
}

impl WireParam {
    fn encode(self, buf: &mut Vec<u8>) {
        match self {
            WireParam::U32(v) => {
                buf.push(0);
                put_u32(buf, v);
            }
            WireParam::U64(v) => {
                buf.push(1);
                put_u64(buf, v);
            }
            WireParam::F32(v) => {
                buf.push(2);
                put_u32(buf, v.to_bits());
            }
            WireParam::F64(v) => {
                buf.push(3);
                put_u64(buf, v.to_bits());
            }
            WireParam::Buffer(i) => {
                buf.push(4);
                put_u32(buf, i);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<WireParam, ProtoError> {
        Ok(match d.u8()? {
            0 => WireParam::U32(d.u32()?),
            1 => WireParam::U64(d.u64()?),
            2 => WireParam::F32(f32::from_bits(d.u32()?)),
            3 => WireParam::F64(f64::from_bits(d.u64()?)),
            4 => WireParam::Buffer(d.u32()?),
            t => return Err(ProtoError::BadTag(t)),
        })
    }
}

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Register { tenant, source } => {
                buf.push(1);
                put_str(&mut buf, tenant);
                put_str(&mut buf, source);
            }
            Request::Launch(spec) => {
                buf.push(2);
                put_str(&mut buf, &spec.tenant);
                put_str(&mut buf, &spec.kernel);
                for v in spec.grid.iter().chain(&spec.block) {
                    put_u32(&mut buf, *v);
                }
                put_u32(&mut buf, spec.deadline_ms);
                put_u32(&mut buf, spec.buffers.len() as u32);
                for b in &spec.buffers {
                    put_bytes(&mut buf, &b.bytes);
                    buf.push(u8::from(b.read_back));
                }
                put_u32(&mut buf, spec.params.len() as u32);
                for p in &spec.params {
                    p.encode(&mut buf);
                }
            }
            Request::Stats { tenant } => {
                buf.push(3);
                put_str(&mut buf, tenant);
            }
        }
        buf
    }

    /// Deserialize from a frame payload.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] on malformed input.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            1 => Request::Register { tenant: d.string()?, source: d.string()? },
            2 => {
                let tenant = d.string()?;
                let kernel = d.string()?;
                let mut dims = [0u32; 6];
                for v in &mut dims {
                    *v = d.u32()?;
                }
                let deadline_ms = d.u32()?;
                let n_buffers = d.u32()?;
                let mut buffers = Vec::with_capacity(n_buffers.min(1024) as usize);
                for _ in 0..n_buffers {
                    let bytes = d.bytes()?;
                    let read_back = d.u8()? != 0;
                    buffers.push(WireBuffer { bytes, read_back });
                }
                let n_params = d.u32()?;
                let mut params = Vec::with_capacity(n_params.min(1024) as usize);
                for _ in 0..n_params {
                    params.push(WireParam::decode(&mut d)?);
                }
                Request::Launch(LaunchSpec {
                    tenant,
                    kernel,
                    grid: [dims[0], dims[1], dims[2]],
                    block: [dims[3], dims[4], dims[5]],
                    deadline_ms,
                    buffers,
                    params,
                })
            }
            3 => Request::Stats { tenant: d.string()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Registered => buf.push(1),
            Response::Launched { attempts, degraded, outputs } => {
                buf.push(2);
                put_u32(&mut buf, *attempts);
                buf.push(u8::from(*degraded));
                put_u32(&mut buf, outputs.len() as u32);
                for o in outputs {
                    put_bytes(&mut buf, o);
                }
            }
            Response::Overloaded { retry_after_ms } => {
                buf.push(3);
                put_u32(&mut buf, *retry_after_ms);
            }
            Response::Error { code, retryable, attempts, message } => {
                buf.push(4);
                put_str(&mut buf, code);
                buf.push(u8::from(*retryable));
                put_u32(&mut buf, *attempts);
                put_str(&mut buf, message);
            }
            Response::Stats(s) => {
                buf.push(5);
                for v in [
                    s.requests,
                    s.admitted,
                    s.shed,
                    s.retries,
                    s.degraded,
                    s.completed,
                    s.failed,
                    s.exec_ns,
                    s.chosen_width,
                    s.respec_events,
                    s.heap_live_bytes,
                    s.heap_high_water,
                ] {
                    put_u64(&mut buf, v);
                }
            }
        }
        buf
    }

    /// Deserialize from a frame payload.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] on malformed input.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(payload);
        let resp = match d.u8()? {
            1 => Response::Registered,
            2 => {
                let attempts = d.u32()?;
                let degraded = d.u8()? != 0;
                let n = d.u32()?;
                let mut outputs = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    outputs.push(d.bytes()?);
                }
                Response::Launched { attempts, degraded, outputs }
            }
            3 => Response::Overloaded { retry_after_ms: d.u32()? },
            4 => Response::Error {
                code: d.string()?,
                retryable: d.u8()? != 0,
                attempts: d.u32()?,
                message: d.string()?,
            },
            5 => Response::Stats(TenantStats {
                requests: d.u64()?,
                admitted: d.u64()?,
                shed: d.u64()?,
                retries: d.u64()?,
                degraded: d.u64()?,
                completed: d.u64()?,
                failed: d.u64()?,
                exec_ns: d.u64()?,
                chosen_width: d.u64()?,
                respec_events: d.u64()?,
                heap_live_bytes: d.u64()?,
                heap_high_water: d.u64()?,
            }),
            t => return Err(ProtoError::BadTag(t)),
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Register {
            tenant: "alpha".into(),
            source: ".kernel k () { ret; }".into(),
        });
        round_trip_request(Request::Stats { tenant: "β-tenant".into() });
        round_trip_request(Request::Launch(LaunchSpec {
            tenant: "alpha".into(),
            kernel: "triple".into(),
            grid: [4, 2, 1],
            block: [64, 1, 1],
            deadline_ms: 250,
            buffers: vec![
                WireBuffer { bytes: vec![1, 2, 3, 4], read_back: true },
                WireBuffer { bytes: vec![], read_back: false },
            ],
            params: vec![
                WireParam::Buffer(0),
                WireParam::U32(7),
                WireParam::U64(u64::MAX),
                WireParam::F32(1.5),
                WireParam::F64(-0.25),
            ],
        }));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Registered);
        round_trip_response(Response::Launched {
            attempts: 3,
            degraded: true,
            outputs: vec![vec![9, 8, 7], vec![]],
        });
        round_trip_response(Response::Overloaded { retry_after_ms: 40 });
        round_trip_response(Response::Error {
            code: "worker_panic".into(),
            retryable: true,
            attempts: 4,
            message: "worker 1 panicked".into(),
        });
        round_trip_response(Response::Stats(TenantStats {
            requests: 10,
            admitted: 8,
            shed: 2,
            retries: 1,
            degraded: 1,
            completed: 7,
            failed: 1,
            exec_ns: 123_456,
            chosen_width: 4,
            respec_events: 2,
            heap_live_bytes: 4096,
            heap_high_water: 1 << 20,
        }));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Request::decode(&[0x7f]), Err(ProtoError::BadTag(0x7f)));
        // Truncated string length.
        assert_eq!(Request::decode(&[1, 5, 0, 0]), Err(ProtoError::Truncated));
        // String length past the payload.
        assert_eq!(Request::decode(&[1, 255, 0, 0, 0]), Err(ProtoError::Truncated));
        // Invalid UTF-8 tenant.
        assert_eq!(Request::decode(&[1, 1, 0, 0, 0, 0xff]), Err(ProtoError::BadUtf8));
        // Trailing garbage after a well-formed message.
        let mut payload = Response::Registered.encode();
        payload.push(0);
        assert_eq!(Response::decode(&payload), Err(ProtoError::TrailingBytes(1)));
        // A hostile length prefix is refused before allocation.
        let mut big = vec![1u8];
        big.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(Request::decode(&big), Err(ProtoError::TooLarge(u64::from(MAX_FRAME) + 1)));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, &[]).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at frame boundary");

        let mut hostile = io::Cursor::new((MAX_FRAME + 1).to_le_bytes().to_vec());
        let err = read_frame(&mut hostile).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
