//! Device-buffer reuse on top of the bump allocator.
//!
//! `Device::malloc` never frees: the heap only grows until the device
//! drops. A per-request `malloc` would therefore exhaust the heap after
//! a bounded number of requests no matter how small each one is — fatal
//! for a long-running service. The pool rounds requests up to
//! power-of-two size classes and recycles returned buffers, so the heap
//! footprint converges to the working set's high-water mark instead of
//! growing with request count.

use std::collections::HashMap;
use std::sync::Mutex;

use dpvk_core::{CoreError, Device, DevicePtr};

/// Smallest size class handed out (matches the allocator's 64-byte
/// alignment granule).
const MIN_CLASS: u64 = 64;

fn size_class(len: usize) -> u64 {
    (len.max(1) as u64).next_power_of_two().max(MIN_CLASS)
}

/// Free lists of recycled device buffers, keyed by power-of-two size
/// class.
#[derive(Default)]
pub struct BufferPool {
    free: Mutex<HashMap<u64, Vec<DevicePtr>>>,
}

impl BufferPool {
    /// Get a device buffer of at least `len` bytes: recycled if a free
    /// buffer of the right class exists, freshly allocated otherwise.
    ///
    /// # Errors
    ///
    /// [`CoreError::Memory`] when the heap is exhausted and nothing is
    /// free to recycle.
    pub fn acquire(&self, dev: &Device, len: usize) -> Result<DevicePtr, CoreError> {
        let class = size_class(len);
        if let Some(ptr) = self
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(&class)
            .and_then(Vec::pop)
        {
            return Ok(ptr);
        }
        dev.malloc(class as usize)
    }

    /// Return a buffer acquired with the same `len` to its free list.
    pub fn release(&self, ptr: DevicePtr, len: usize) {
        let class = size_class(len);
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(class)
            .or_default()
            .push(ptr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_vm::MachineModel;

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(size_class(0), 64);
        assert_eq!(size_class(1), 64);
        assert_eq!(size_class(64), 64);
        assert_eq!(size_class(65), 128);
        assert_eq!(size_class(4096), 4096);
        assert_eq!(size_class(4097), 8192);
    }

    #[test]
    fn released_buffers_are_recycled_not_reallocated() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        let pool = BufferPool::default();
        let a = pool.acquire(&dev, 100).unwrap();
        let used_after_first = dev.heap_used();
        pool.release(a, 100);
        // Same size class → the exact pointer comes back, no heap growth.
        let b = pool.acquire(&dev, 120).unwrap();
        assert_eq!(a, b);
        assert_eq!(dev.heap_used(), used_after_first);
        // A different class allocates fresh.
        let c = pool.acquire(&dev, 1000).unwrap();
        assert_ne!(b, c);
        assert!(dev.heap_used() > used_after_first);
    }

    #[test]
    fn steady_state_heap_is_bounded() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        let pool = BufferPool::default();
        // Many sequential "requests" of the same shape must not grow the
        // heap past the first round — the whole point of the pool.
        let mut high_water = 0;
        for round in 0..1_000 {
            let a = pool.acquire(&dev, 256).unwrap();
            let b = pool.acquire(&dev, 512).unwrap();
            pool.release(a, 256);
            pool.release(b, 512);
            if round == 0 {
                high_water = dev.heap_used();
            }
        }
        assert_eq!(dev.heap_used(), high_water, "heap frozen after the first round");
    }
}
