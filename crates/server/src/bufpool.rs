//! Device-buffer lifecycle for the request loop.
//!
//! Historically this module carried its own power-of-two free lists
//! because `Device::malloc` was a grow-only bump allocator: without a
//! server-side pool, a long-running service would exhaust the heap
//! after a bounded number of requests. The device heap now does
//! size-classed reuse, LRU eviction and real `free` itself
//! (`dpvk_core::runtime::Device::free`), so the pool is a thin
//! delegate: `acquire` is `malloc`, `release` is `free`, and recycling
//! happens inside the device where it is shared with every other
//! allocation path (workloads, examples, benches) instead of being
//! private to the server.
//!
//! The type is kept so the service has a single choke point for buffer
//! lifecycle — a natural seam for per-tenant accounting or quotas later
//! — and so `service.rs` reads as acquire/release rather than
//! malloc/free.

use dpvk_core::{CoreError, Device, DevicePtr};

/// Acquire/release seam over the device heap's size-classed allocator.
#[derive(Default)]
pub struct BufferPool {}

impl BufferPool {
    /// Get a device buffer of at least `len` bytes. The device heap
    /// recycles a previously freed block of the same size class when
    /// one exists, and evicts idle blocks under pressure before
    /// growing.
    ///
    /// # Errors
    ///
    /// [`CoreError::MemoryExhausted`] when the heap is full even after
    /// eviction; [`CoreError::Memory`] for degenerate requests (zero
    /// size or larger than the whole heap).
    pub fn acquire(&self, dev: &Device, len: usize) -> Result<DevicePtr, CoreError> {
        dev.malloc(len.max(1))
    }

    /// Return a buffer to the device heap's free lists.
    pub fn release(&self, dev: &Device, ptr: DevicePtr) {
        // A stale or double release is a server bug but must not take
        // the request loop down; the heap rejects it and we move on.
        let _ = dev.free(ptr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_vm::MachineModel;

    #[test]
    fn released_buffers_are_recycled_not_reallocated() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        let pool = BufferPool::default();
        let a = pool.acquire(&dev, 100).unwrap();
        let used_after_first = dev.heap_used();
        pool.release(&dev, a);
        // Same size class → the exact block comes back, no heap growth.
        let b = pool.acquire(&dev, 120).unwrap();
        assert_eq!(a, b);
        assert_eq!(dev.heap_used(), used_after_first);
        // A different class allocates fresh.
        let c = pool.acquire(&dev, 1000).unwrap();
        assert_ne!(b, c);
        assert!(dev.heap_used() > used_after_first);
    }

    #[test]
    fn steady_state_heap_is_bounded() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        let pool = BufferPool::default();
        // Many sequential "requests" of the same shape must not grow
        // the live set past one round, and the high-water mark must
        // freeze after the first round — the device free lists absorb
        // the churn.
        let mut high_water = 0;
        for round in 0..1_000 {
            let a = pool.acquire(&dev, 256).unwrap();
            let b = pool.acquire(&dev, 512).unwrap();
            pool.release(&dev, a);
            pool.release(&dev, b);
            if round == 0 {
                high_water = dev.memory_stats().high_water;
            }
        }
        assert_eq!(dev.heap_used(), 0, "everything released");
        assert_eq!(dev.memory_stats().high_water, high_water, "heap frozen after the first round");
    }

    #[test]
    fn release_of_unknown_pointer_is_ignored() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        let pool = BufferPool::default();
        let a = pool.acquire(&dev, 64).unwrap();
        pool.release(&dev, a);
        // Double release must not panic or poison anything.
        pool.release(&dev, a);
        let b = pool.acquire(&dev, 64).unwrap();
        assert_eq!(a, b);
    }
}
