//! A minimal blocking client for the wire protocol, used by the
//! integration tests and the closed-loop benchmark. One request is in
//! flight per connection at a time; open more connections for
//! concurrency.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, LaunchSpec, Request, Response, TenantStats};

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    stream: TcpStream,
}

fn bad_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A response must arrive eventually; a wedged server should not
        // hang the client forever.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response.
    ///
    /// # Errors
    ///
    /// I/O errors, a server hang-up mid-response, or a malformed
    /// response payload (as [`io::ErrorKind::InvalidData`]).
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        Response::decode(&payload).map_err(bad_data)
    }

    /// Register kernel source under `tenant`.
    ///
    /// # Errors
    ///
    /// Transport errors as I/O errors; registration failures arrive as
    /// [`Response::Error`].
    pub fn register(&mut self, tenant: &str, source: &str) -> io::Result<Response> {
        self.call(&Request::Register { tenant: tenant.into(), source: source.into() })
    }

    /// Launch a kernel.
    ///
    /// # Errors
    ///
    /// Transport errors as I/O errors; launch failures arrive as
    /// [`Response::Error`] / [`Response::Overloaded`].
    pub fn launch(&mut self, spec: LaunchSpec) -> io::Result<Response> {
        self.call(&Request::Launch(spec))
    }

    /// Fetch `tenant`'s serving statistics.
    ///
    /// # Errors
    ///
    /// Transport errors, or a non-`Stats` response (as
    /// [`io::ErrorKind::InvalidData`]).
    pub fn stats(&mut self, tenant: &str) -> io::Result<TenantStats> {
        match self.call(&Request::Stats { tenant: tenant.into() })? {
            Response::Stats(s) => Ok(s),
            other => Err(bad_data(format!("expected Stats, got {other:?}"))),
        }
    }
}
