//! Per-tenant serving state: token bucket, stream-group concurrency
//! slots, kernel ownership, quota, and statistics.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::admission::{CapacityGate, TokenBucket};
use crate::protocol::TenantStats;
use crate::ServerConfig;

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One tenant's serving state. Created lazily on first use with the
/// server's per-tenant defaults.
pub struct TenantState {
    /// Tenant name.
    pub name: String,
    /// Rate limiter: one token per launch request.
    pub bucket: Mutex<TokenBucket>,
    /// The tenant's stream group: at most this many of the tenant's
    /// launches run on the device concurrently, bounding how much of the
    /// shared pool one tenant can occupy.
    pub slots: Arc<CapacityGate>,
    /// Kernels this tenant registered (ownership check on launch).
    pub kernels: Mutex<HashSet<String>>,
    /// Cumulative device execution wall time (all attempts), for the
    /// quota check.
    pub exec_ns: AtomicU64,
    stats: Mutex<TenantStats>,
}

impl TenantState {
    fn new(name: &str, config: &ServerConfig) -> Arc<TenantState> {
        Arc::new(TenantState {
            name: name.to_string(),
            bucket: Mutex::new(TokenBucket::new(config.tenant_rate_per_sec, config.tenant_burst)),
            slots: CapacityGate::new(config.tenant_parallelism),
            kernels: Mutex::new(HashSet::new()),
            exec_ns: AtomicU64::new(0),
            stats: Mutex::new(TenantStats::default()),
        })
    }

    /// Take one rate-limit token, or get a retry-after hint in ms.
    pub fn try_take_token(&self) -> Result<(), u32> {
        lock(&self.bucket).try_take(Instant::now())
    }

    /// Whether the tenant owns `kernel`.
    pub fn owns(&self, kernel: &str) -> bool {
        lock(&self.kernels).contains(kernel)
    }

    /// Charge `ns` of device execution time and return the new total.
    pub fn charge_exec_ns(&self, ns: u64) -> u64 {
        self.exec_ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Mutate the tenant's statistics under its lock.
    pub fn update_stats(&self, f: impl FnOnce(&mut TenantStats)) {
        f(&mut lock(&self.stats));
    }

    /// Snapshot the tenant's statistics.
    pub fn stats(&self) -> TenantStats {
        *lock(&self.stats)
    }
}

/// All tenants, plus the global kernel-name ownership map (kernel names
/// share one device-wide namespace; the first tenant to register a name
/// owns it).
#[derive(Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    kernel_owner: Mutex<HashMap<String, String>>,
}

impl TenantRegistry {
    /// Look up `name`, creating it with `config`'s defaults on first
    /// use.
    pub fn get_or_create(&self, name: &str, config: &ServerConfig) -> Arc<TenantState> {
        let mut tenants = lock(&self.tenants);
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let t = TenantState::new(name, config);
        tenants.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Look up `name` without creating it.
    pub fn get(&self, name: &str) -> Option<Arc<TenantState>> {
        lock(&self.tenants).get(name).cloned()
    }

    /// The tenant owning `kernel`, if any tenant registered it.
    pub fn owner_of(&self, kernel: &str) -> Option<String> {
        lock(&self.kernel_owner).get(kernel).cloned()
    }

    /// Claim `kernel` for `tenant`. Idempotent for the owner; another
    /// tenant's claim is refused with the owner's name.
    pub fn claim_kernel(&self, kernel: &str, tenant: &str) -> Result<(), String> {
        let mut owners = lock(&self.kernel_owner);
        match owners.get(kernel) {
            Some(owner) if owner != tenant => Err(owner.clone()),
            Some(_) => Ok(()),
            None => {
                owners.insert(kernel.to_string(), tenant.to_string());
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_creates_once_and_claims_exclusively() {
        let reg = TenantRegistry::default();
        let config = ServerConfig::default();
        let a = reg.get_or_create("alpha", &config);
        let a2 = reg.get_or_create("alpha", &config);
        assert!(Arc::ptr_eq(&a, &a2), "same tenant state on repeat lookups");
        assert!(reg.get("missing").is_none());

        assert_eq!(reg.claim_kernel("k", "alpha"), Ok(()));
        assert_eq!(reg.claim_kernel("k", "alpha"), Ok(()), "re-register by owner is idempotent");
        assert_eq!(reg.claim_kernel("k", "beta"), Err("alpha".to_string()));
    }

    #[test]
    fn tenant_tracks_kernels_quota_and_stats() {
        let t = TenantState::new("alpha", &ServerConfig::default());
        assert!(!t.owns("k"));
        t.kernels.lock().unwrap().insert("k".to_string());
        assert!(t.owns("k"));
        assert_eq!(t.charge_exec_ns(100), 100);
        assert_eq!(t.charge_exec_ns(50), 150);
        t.update_stats(|s| s.completed += 1);
        assert_eq!(t.stats().completed, 1);
    }
}
