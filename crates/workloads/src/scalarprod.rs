//! Batched dot products: one pair of vectors per CTA, per-thread partials
//! combined in a shared-memory tree. Memory-bound with frequent
//! synchronization — one of the paper's ~1.0× cases.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const PAIRS: usize = 8;
const LEN: usize = 256; // elements per vector
const CTA: usize = 64;

/// `out[p] = dot(a[p], b[p])`.
#[derive(Debug)]
pub struct ScalarProd;

impl Workload for ScalarProd {
    fn name(&self) -> &'static str {
        "scalarprod"
    }

    fn stands_for(&self) -> &'static str {
        "ScalarProd (memory-bound + frequent synchronization)"
    }

    fn source(&self) -> String {
        r#"
.kernel scalarprod (.param .u64 a, .param .u64 b, .param .u64 out,
                    .param .u32 len) {
  .shared .f32 partial[64];
  .reg .u32 %r<8>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<6>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, %ctaid.x;          // pair index
  ld.param.u32 %r2, [len];
  mad.lo.u32 %r3, %r1, %r2, %r0;  // element index = pair*len + tid
  mov.f32 %f0, 0.0;
  mov.u32 %r4, %r0;               // i = tid
accum:
  setp.ge.u32 %p0, %r4, %r2;
  @%p0 bra reduce_init;
  mad.lo.u32 %r5, %r1, %r2, %r4;
  shl.u32 %r5, %r5, 2;
  cvt.u64.u32 %rd0, %r5;
  ld.param.u64 %rd1, [a];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f1, [%rd1];
  ld.param.u64 %rd2, [b];
  add.u64 %rd2, %rd2, %rd0;
  ld.global.f32 %f2, [%rd2];
  fma.rn.f32 %f0, %f1, %f2, %f0;
  add.u32 %r4, %r4, %ntid.x;
  bra accum;
reduce_init:
  shl.u32 %r6, %r0, 2;
  cvt.u64.u32 %rd3, %r6;
  mov.u64 %rd4, partial;
  add.u64 %rd4, %rd4, %rd3;
  st.shared.f32 [%rd4], %f0;
  mov.u32 %r7, 32;
level:
  bar.sync 0;
  setp.ge.u32 %p1, %r0, %r7;
  @%p1 bra skip;
  add.u32 %r6, %r0, %r7;
  shl.u32 %r6, %r6, 2;
  cvt.u64.u32 %rd5, %r6;
  mov.u64 %rd6, partial;
  add.u64 %rd6, %rd6, %rd5;
  ld.shared.f32 %f3, [%rd6];
  ld.shared.f32 %f4, [%rd4];
  add.f32 %f4, %f4, %f3;
  st.shared.f32 [%rd4], %f4;
skip:
  shr.u32 %r7, %r7, 1;
  setp.gt.u32 %p2, %r7, 0;
  @%p2 bra level;
  setp.ne.u32 %p0, %r0, 0;
  @%p0 bra done;
  ld.shared.f32 %f5, [partial];
  cvt.u64.u32 %rd7, %r1;
  shl.u64 %rd7, %rd7, 2;
  ld.param.u64 %rd8, [out];
  add.u64 %rd8, %rd8, %rd7;
  st.global.f32 [%rd8], %f5;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let a = random_f32(&mut rng, PAIRS * LEN, -1.0, 1.0);
        let b = random_f32(&mut rng, PAIRS * LEN, -1.0, 1.0);
        let pa = dev.alloc(PAIRS * LEN * 4)?;
        let pb = dev.alloc(PAIRS * LEN * 4)?;
        let po = dev.alloc(PAIRS * 4)?;
        dev.copy_f32_htod(pa.ptr(), &a)?;
        dev.copy_f32_htod(pb.ptr(), &b)?;
        let stats = dev.launch(
            "scalarprod",
            [PAIRS as u32, 1, 1],
            [CTA as u32, 1, 1],
            &[
                ParamValue::Ptr(pa.ptr()),
                ParamValue::Ptr(pb.ptr()),
                ParamValue::Ptr(po.ptr()),
                ParamValue::U32(LEN as u32),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), PAIRS)?;
        let want: Vec<f32> = (0..PAIRS)
            .map(|p| {
                // Match the kernel's strided accumulation + tree order as
                // closely as sequential code can; tolerance covers the
                // associativity difference.
                let mut partials = vec![0f32; CTA];
                for (t, acc) in partials.iter_mut().enumerate() {
                    let mut i = t;
                    while i < LEN {
                        *acc = a[p * LEN + i].mul_add(b[p * LEN + i], *acc);
                        i += CTA;
                    }
                }
                let mut stride = CTA / 2;
                while stride > 0 {
                    for t in 0..stride {
                        partials[t] += partials[t + stride];
                    }
                    stride /= 2;
                }
                partials[0]
            })
            .collect();
        check_f32(self.name(), &got, &want, 1e-4)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        ScalarProd.run_checked(&ExecConfig::baseline())?;
        ScalarProd.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
