//! Element-wise vector addition: the trivially uniform, memory-bound
//! quickstart workload.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 2000; // not a CTA multiple: the tail diverges
const CTA: u32 = 64;

/// `c[i] = a[i] + b[i]`.
#[derive(Debug)]
pub struct VecAdd;

impl Workload for VecAdd {
    fn name(&self) -> &'static str {
        "vecadd"
    }

    fn stands_for(&self) -> &'static str {
        "Template / AlignedTypes (uniform memory-bound)"
    }

    fn source(&self) -> String {
        r#"
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [a];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  ld.param.u64 %rd2, [b];
  add.u64 %rd2, %rd2, %rd0;
  ld.global.f32 %f1, [%rd2];
  add.f32 %f2, %f0, %f1;
  ld.param.u64 %rd3, [c];
  add.u64 %rd3, %rd3, %rd0;
  st.global.f32 [%rd3], %f2;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let a = random_f32(&mut rng, N, -10.0, 10.0);
        let b = random_f32(&mut rng, N, -10.0, 10.0);
        let pa = dev.alloc(N * 4)?;
        let pb = dev.alloc(N * 4)?;
        let pc = dev.alloc(N * 4)?;
        dev.copy_f32_htod(pa.ptr(), &a)?;
        dev.copy_f32_htod(pb.ptr(), &b)?;
        let ctas = (N as u32).div_ceil(CTA);
        let stats = dev.launch(
            "vecadd",
            [ctas, 1, 1],
            [CTA, 1, 1],
            &[
                ParamValue::Ptr(pa.ptr()),
                ParamValue::Ptr(pb.ptr()),
                ParamValue::Ptr(pc.ptr()),
                ParamValue::U32(N as u32),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(pc.ptr(), N)?;
        let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        check_f32(self.name(), &got, &want, 1e-6)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates_under_all_policies() -> Result<(), WorkloadError> {
        VecAdd.run_checked(&ExecConfig::baseline())?;
        VecAdd.run_checked(&ExecConfig::dynamic(4))?;
        VecAdd.run_checked(&ExecConfig::static_tie(4))?;
        Ok(())
    }
}
