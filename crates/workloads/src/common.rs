//! Workload infrastructure: the `Workload` trait, validation helpers and
//! deterministic input generation.

use std::fmt;

use dpvk_core::{CoreError, Device, ExecConfig, LaunchStats};
use dpvk_vm::MachineModel;

/// Error from running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The runtime failed.
    Core(CoreError),
    /// The kernel ran but produced wrong results.
    Mismatch {
        /// Workload name.
        workload: String,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Core(e) => write!(f, "runtime error: {e}"),
            WorkloadError::Mismatch { workload, detail } => {
                write!(f, "validation mismatch in `{workload}`: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Core(e) => Some(e),
            WorkloadError::Mismatch { .. } => None,
        }
    }
}

impl From<CoreError> for WorkloadError {
    fn from(e: CoreError) -> Self {
        WorkloadError::Core(e)
    }
}

/// Result of one validated workload run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Launch statistics (merged over all launches the workload performs).
    pub stats: LaunchStats,
}

/// A benchmark workload: kernel source, driver and validation.
pub trait Workload: Send + Sync {
    /// Short name used in reports (matches DESIGN.md §5).
    fn name(&self) -> &'static str;

    /// The paper application this workload stands in for.
    fn stands_for(&self) -> &'static str;

    /// Kernel source text (generated for parameterized workloads).
    fn source(&self) -> String;

    /// Prepare inputs on `dev`, launch, validate, and return statistics.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Core`] on runtime failures and
    /// [`WorkloadError::Mismatch`] when validation fails.
    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError>;
}

/// Convenience helpers implemented for every workload.
pub trait WorkloadExt: Workload {
    /// Run on a fresh default device (Sandybridge SSE model, 64 MiB heap).
    ///
    /// # Errors
    ///
    /// See [`Workload::run`].
    fn run_checked(&self, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let dev = Device::new(MachineModel::sandybridge_sse(), 64 << 20);
        dev.register_source(&self.source())?;
        self.run(&dev, config)
    }

    /// Run on a device built from a specific machine model.
    ///
    /// # Errors
    ///
    /// See [`Workload::run`].
    fn run_on_model(
        &self,
        model: MachineModel,
        config: &ExecConfig,
    ) -> Result<Outcome, WorkloadError> {
        let dev = Device::new(model, 64 << 20);
        dev.register_source(&self.source())?;
        self.run(&dev, config)
    }
}

impl<W: Workload + ?Sized> WorkloadExt for W {}

/// Deterministic SplitMix64 generator for input data.
///
/// Self-contained so the workspace builds with no external crates; input
/// generation only needs reproducible, well-mixed streams, not
/// cryptographic or statistical-suite quality.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Generator seeded with raw state.
    pub fn new(seed: u64) -> Self {
        Prng(seed)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }

    /// Uniform `u32` in `[0, bound)`.
    pub fn gen_range_u32(&mut self, bound: u32) -> u32 {
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }
}

/// Deterministic RNG for input generation (one stream per workload name).
pub fn rng_for(name: &str) -> Prng {
    // FNV-1a over the name, perturbed so short names don't collide with
    // their prefixes.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Prng(h ^ 0x5A5A_5A5A_5A5A_5A5A)
}

/// Uniform `f32` inputs in `[lo, hi)`.
pub fn random_f32(rng: &mut Prng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range_f32(lo, hi)).collect()
}

/// Uniform `u32` inputs in `[0, bound)`.
pub fn random_u32(rng: &mut Prng, n: usize, bound: u32) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range_u32(bound)).collect()
}

/// Compare `got` against `want` with combined absolute/relative tolerance;
/// returns a [`WorkloadError::Mismatch`] naming the first bad element.
pub fn check_f32(workload: &str, got: &[f32], want: &[f32], tol: f32) -> Result<(), WorkloadError> {
    if got.len() != want.len() {
        return Err(WorkloadError::Mismatch {
            workload: workload.to_string(),
            detail: format!("length {} != {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let scale = w.abs().max(1.0);
        // NaN must fail the check, so compare with the negation inverted.
        if err.is_nan() || err > tol * scale {
            return Err(WorkloadError::Mismatch {
                workload: workload.to_string(),
                detail: format!("element {i}: got {g}, want {w} (|err| {err})"),
            });
        }
    }
    Ok(())
}

/// Exact comparison for integer outputs.
pub fn check_u32(workload: &str, got: &[u32], want: &[u32]) -> Result<(), WorkloadError> {
    if got.len() != want.len() {
        return Err(WorkloadError::Mismatch {
            workload: workload.to_string(),
            detail: format!("length {} != {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(WorkloadError::Mismatch {
                workload: workload.to_string(),
                detail: format!("element {i}: got {g}, want {w}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<f32> = random_f32(&mut rng_for("x"), 4, 0.0, 1.0);
        let b: Vec<f32> = random_f32(&mut rng_for("x"), 4, 0.0, 1.0);
        let c: Vec<f32> = random_f32(&mut rng_for("y"), 4, 0.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn check_f32_tolerance() {
        assert!(check_f32("t", &[1.0], &[1.0005], 1e-3).is_ok());
        assert!(check_f32("t", &[1.0], &[1.1], 1e-3).is_err());
        assert!(check_f32("t", &[1.0], &[1.0, 2.0], 1e-3).is_err());
        // NaN never passes.
        assert!(check_f32("t", &[f32::NAN], &[1.0], 1e-3).is_err());
    }

    #[test]
    fn check_u32_exact() {
        assert!(check_u32("t", &[1, 2], &[1, 2]).is_ok());
        assert!(check_u32("t", &[1, 3], &[1, 2]).is_err());
    }
}
