//! Workload infrastructure: the `Workload` trait, validation helpers and
//! deterministic input generation.

use std::fmt;

use dpvk_core::{CoreError, Device, ExecConfig, LaunchStats};
use dpvk_vm::MachineModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error from running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The runtime failed.
    Core(CoreError),
    /// The kernel ran but produced wrong results.
    Mismatch {
        /// Workload name.
        workload: String,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Core(e) => write!(f, "runtime error: {e}"),
            WorkloadError::Mismatch { workload, detail } => {
                write!(f, "validation mismatch in `{workload}`: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Core(e) => Some(e),
            WorkloadError::Mismatch { .. } => None,
        }
    }
}

impl From<CoreError> for WorkloadError {
    fn from(e: CoreError) -> Self {
        WorkloadError::Core(e)
    }
}

/// Result of one validated workload run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Launch statistics (merged over all launches the workload performs).
    pub stats: LaunchStats,
}

/// A benchmark workload: kernel source, driver and validation.
pub trait Workload: Send + Sync {
    /// Short name used in reports (matches DESIGN.md §5).
    fn name(&self) -> &'static str;

    /// The paper application this workload stands in for.
    fn stands_for(&self) -> &'static str;

    /// Kernel source text (generated for parameterized workloads).
    fn source(&self) -> String;

    /// Prepare inputs on `dev`, launch, validate, and return statistics.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Core`] on runtime failures and
    /// [`WorkloadError::Mismatch`] when validation fails.
    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError>;
}

/// Convenience helpers implemented for every workload.
pub trait WorkloadExt: Workload {
    /// Run on a fresh default device (Sandybridge SSE model, 64 MiB heap).
    ///
    /// # Errors
    ///
    /// See [`Workload::run`].
    fn run_checked(&self, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let dev = Device::new(MachineModel::sandybridge_sse(), 64 << 20);
        dev.register_source(&self.source())?;
        self.run(&dev, config)
    }

    /// Run on a device built from a specific machine model.
    ///
    /// # Errors
    ///
    /// See [`Workload::run`].
    fn run_on_model(
        &self,
        model: MachineModel,
        config: &ExecConfig,
    ) -> Result<Outcome, WorkloadError> {
        let dev = Device::new(model, 64 << 20);
        dev.register_source(&self.source())?;
        self.run(&dev, config)
    }
}

impl<W: Workload + ?Sized> WorkloadExt for W {}

/// Deterministic RNG for input generation (one stream per workload name).
pub fn rng_for(name: &str) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in name.bytes().enumerate() {
        seed[i % 32] ^= b;
    }
    seed[31] ^= 0x5A;
    StdRng::from_seed(seed)
}

/// Uniform `f32` inputs in `[lo, hi)`.
pub fn random_f32(rng: &mut StdRng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Uniform `u32` inputs in `[0, bound)`.
pub fn random_u32(rng: &mut StdRng, n: usize, bound: u32) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

/// Compare `got` against `want` with combined absolute/relative tolerance;
/// returns a [`WorkloadError::Mismatch`] naming the first bad element.
pub fn check_f32(
    workload: &str,
    got: &[f32],
    want: &[f32],
    tol: f32,
) -> Result<(), WorkloadError> {
    if got.len() != want.len() {
        return Err(WorkloadError::Mismatch {
            workload: workload.to_string(),
            detail: format!("length {} != {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let scale = w.abs().max(1.0);
        if !(err <= tol * scale) {
            return Err(WorkloadError::Mismatch {
                workload: workload.to_string(),
                detail: format!("element {i}: got {g}, want {w} (|err| {err})"),
            });
        }
    }
    Ok(())
}

/// Exact comparison for integer outputs.
pub fn check_u32(workload: &str, got: &[u32], want: &[u32]) -> Result<(), WorkloadError> {
    if got.len() != want.len() {
        return Err(WorkloadError::Mismatch {
            workload: workload.to_string(),
            detail: format!("length {} != {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(WorkloadError::Mismatch {
                workload: workload.to_string(),
                detail: format!("element {i}: got {g}, want {w}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<f32> = random_f32(&mut rng_for("x"), 4, 0.0, 1.0);
        let b: Vec<f32> = random_f32(&mut rng_for("x"), 4, 0.0, 1.0);
        let c: Vec<f32> = random_f32(&mut rng_for("y"), 4, 0.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn check_f32_tolerance() {
        assert!(check_f32("t", &[1.0], &[1.0005], 1e-3).is_ok());
        assert!(check_f32("t", &[1.0], &[1.1], 1e-3).is_err());
        assert!(check_f32("t", &[1.0], &[1.0, 2.0], 1e-3).is_err());
        // NaN never passes.
        assert!(check_f32("t", &[f32::NAN], &[1.0], 1e-3).is_err());
    }

    #[test]
    fn check_u32_exact() {
        assert!(check_u32("t", &[1, 2], &[1, 2]).is_ok());
        assert!(check_u32("t", &[1, 3], &[1, 2]).is_err());
    }
}
