//! Parallel sum reduction: shared-memory tree per CTA with a barrier per
//! level, then a global atomic to combine CTAs.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 512;
const CTA: usize = 64;

/// `out[0] = sum(data)`.
#[derive(Debug)]
pub struct Reduction;

impl Workload for Reduction {
    fn name(&self) -> &'static str {
        "reduction"
    }

    fn stands_for(&self) -> &'static str {
        "Reduction / ThreadFenceReduction (barrier ladder)"
    }

    fn source(&self) -> String {
        r#"
.kernel reduce (.param .u64 data, .param .u64 out) {
  .shared .f32 tile[64];
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r0;
  cvt.u64.u32 %rd0, %r1;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd2, %r2;
  mov.u64 %rd3, tile;
  add.u64 %rd3, %rd3, %rd2;
  st.shared.f32 [%rd3], %f0;
  mov.u32 %r3, 32;              // stride
level:
  bar.sync 0;
  setp.ge.u32 %p0, %r0, %r3;
  @%p0 bra skip;
  add.u32 %r4, %r0, %r3;
  shl.u32 %r4, %r4, 2;
  cvt.u64.u32 %rd4, %r4;
  mov.u64 %rd5, tile;
  add.u64 %rd5, %rd5, %rd4;
  ld.shared.f32 %f1, [%rd5];
  ld.shared.f32 %f2, [%rd3];
  add.f32 %f2, %f2, %f1;
  st.shared.f32 [%rd3], %f2;
skip:
  shr.u32 %r3, %r3, 1;
  setp.gt.u32 %p1, %r3, 0;
  @%p1 bra level;
  setp.ne.u32 %p2, %r0, 0;
  @%p2 bra done;
  ld.shared.f32 %f3, [tile];
  ld.param.u64 %rd6, [out];
  atom.global.add.f32 %f4, [%rd6], %f3;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let data = random_f32(&mut rng, N, 0.0, 1.0);
        let pd = dev.alloc(N * 4)?;
        let po = dev.alloc(4)?;
        dev.copy_f32_htod(pd.ptr(), &data)?;
        dev.copy_f32_htod(po.ptr(), &[0.0])?;
        let stats = dev.launch(
            "reduce",
            [(N / CTA) as u32, 1, 1],
            [CTA as u32, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(po.ptr())],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), 1)?;
        let want: f32 = data.iter().sum();
        // Atomic combination order varies; use a loose tolerance.
        check_f32(self.name(), &got, &[want], 1e-2)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        Reduction.run_checked(&ExecConfig::baseline())?;
        Reduction.run_checked(&ExecConfig::dynamic(4))?;
        Reduction.run_checked(&ExecConfig::static_tie(4))?;
        Ok(())
    }
}
