//! Fast Walsh–Hadamard transform: butterfly exchanges through shared
//! memory with a barrier per stage.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 256;
const CTA: usize = 64; // transform size per CTA = 2*CTA? No: size = CTA, one element per thread

/// 64-point Walsh–Hadamard transform per CTA.
#[derive(Debug)]
pub struct FastWalshTransform;

impl Workload for FastWalshTransform {
    fn name(&self) -> &'static str {
        "fastwalsh"
    }

    fn stands_for(&self) -> &'static str {
        "FastWalshTransform (butterflies + barriers)"
    }

    fn source(&self) -> String {
        // Each stage pairs index i with partner i ^ stride:
        // lower element gets a+b, upper gets (partner - self) so that
        // new[i] = a + b when bit clear, a - b when bit set, with
        // a = value at the clear-bit index.
        r#"
.kernel fastwalsh (.param .u64 data, .param .u64 out) {
  .shared .f32 buf[64];
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r0;
  cvt.u64.u32 %rd0, %r1;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd2, %r2;
  mov.u64 %rd3, buf;
  add.u64 %rd4, %rd3, %rd2;
  st.shared.f32 [%rd4], %f0;
  mov.u32 %r3, 1;                 // stride
stage:
  bar.sync 0;
  xor.b32 %r4, %r0, %r3;          // partner
  shl.u32 %r5, %r4, 2;
  cvt.u64.u32 %rd5, %r5;
  add.u64 %rd6, %rd3, %rd5;
  ld.shared.f32 %f1, [%rd6];      // partner value
  ld.shared.f32 %f2, [%rd4];      // own value
  // if (tid & stride) == 0: new = own + partner else new = partner - own
  and.b32 %r6, %r0, %r3;
  setp.eq.u32 %p0, %r6, 0;
  add.f32 %f3, %f2, %f1;
  sub.f32 %f4, %f1, %f2;
  selp.f32 %f5, %f3, %f4, %p0;
  bar.sync 0;
  st.shared.f32 [%rd4], %f5;
  shl.u32 %r3, %r3, 1;
  setp.lt.u32 %p1, %r3, %ntid.x;
  @%p1 bra stage;
  bar.sync 0;
  ld.shared.f32 %f0, [%rd4];
  ld.param.u64 %rd7, [out];
  add.u64 %rd7, %rd7, %rd0;
  st.global.f32 [%rd7], %f0;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let data = random_f32(&mut rng, N, -1.0, 1.0);
        let pd = dev.alloc(N * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_f32_htod(pd.ptr(), &data)?;
        let stats = dev.launch(
            "fastwalsh",
            [(N / CTA) as u32, 1, 1],
            [CTA as u32, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(po.ptr())],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), N)?;
        let mut want = vec![0f32; N];
        for seg in 0..(N / CTA) {
            let mut cur: Vec<f32> = data[seg * CTA..(seg + 1) * CTA].to_vec();
            let mut stride = 1;
            while stride < CTA {
                let prev = cur.clone();
                for (i, v) in cur.iter_mut().enumerate() {
                    let partner = prev[i ^ stride];
                    *v = if i & stride == 0 { prev[i] + partner } else { partner - prev[i] };
                }
                stride <<= 1;
            }
            want[seg * CTA..(seg + 1) * CTA].copy_from_slice(&cur);
        }
        check_f32(self.name(), &got, &want, 1e-4)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        FastWalshTransform.run_checked(&ExecConfig::baseline())?;
        FastWalshTransform.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }

    #[test]
    fn walsh_of_impulse_is_constant() {
        // Host-side sanity of the reference transform: WHT of e0 = all-ones.
        let mut cur = vec![0f32; 8];
        cur[0] = 1.0;
        let mut stride = 1;
        while stride < 8 {
            let prev = cur.clone();
            for (i, v) in cur.iter_mut().enumerate() {
                let partner = prev[i ^ stride];
                *v = if i & stride == 0 { prev[i] + partner } else { partner - prev[i] };
            }
            stride <<= 1;
        }
        assert!(cur.iter().all(|&v| v == 1.0), "{cur:?}");
    }
}
