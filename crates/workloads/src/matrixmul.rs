//! Tiled matrix multiplication with shared-memory tiles and barriers.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const DIM: usize = 32; // square matrices
const TILE: usize = 8; // tile edge; CTA = TILE*TILE threads

/// `C = A × B` with TILE×TILE shared tiles.
#[derive(Debug)]
pub struct MatrixMul;

impl Workload for MatrixMul {
    fn name(&self) -> &'static str {
        "matrixmul"
    }

    fn stands_for(&self) -> &'static str {
        "MatrixMul (shared-memory tiles + barriers)"
    }

    fn source(&self) -> String {
        r#"
.kernel matrixmul (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 dim) {
  .shared .f32 tile_a[64];
  .shared .f32 tile_b[64];
  .reg .u32 %r<16>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<6>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;            // tx
  mov.u32 %r1, %tid.y;            // ty
  mov.u32 %r2, %ctaid.x;          // bx
  mov.u32 %r3, %ctaid.y;          // by
  ld.param.u32 %r4, [dim];
  mad.lo.u32 %r5, %r3, 8, %r1;    // row = by*TILE + ty
  mad.lo.u32 %r6, %r2, 8, %r0;    // col = bx*TILE + tx
  mov.f32 %f0, 0.0;               // acc
  mov.u32 %r7, 0;                 // k0 = tile base
  // shared offsets: (ty*TILE + tx) * 4
  mad.lo.u32 %r8, %r1, 8, %r0;
  shl.u32 %r8, %r8, 2;
  cvt.u64.u32 %rd0, %r8;
  mov.u64 %rd1, tile_a;
  add.u64 %rd1, %rd1, %rd0;
  mov.u64 %rd2, tile_b;
  add.u64 %rd2, %rd2, %rd0;
tile_loop:
  // load A[row][k0+tx] and B[k0+ty][col] into the tiles
  add.u32 %r9, %r7, %r0;          // k0+tx
  mad.lo.u32 %r10, %r5, %r4, %r9; // row*dim + k0+tx
  shl.u32 %r10, %r10, 2;
  cvt.u64.u32 %rd3, %r10;
  ld.param.u64 %rd4, [a];
  add.u64 %rd4, %rd4, %rd3;
  ld.global.f32 %f1, [%rd4];
  st.shared.f32 [%rd1], %f1;
  add.u32 %r11, %r7, %r1;         // k0+ty
  mad.lo.u32 %r12, %r11, %r4, %r6;
  shl.u32 %r12, %r12, 2;
  cvt.u64.u32 %rd5, %r12;
  ld.param.u64 %rd6, [b];
  add.u64 %rd6, %rd6, %rd5;
  ld.global.f32 %f2, [%rd6];
  st.shared.f32 [%rd2], %f2;
  bar.sync 0;
  // multiply the tiles
  mov.u32 %r13, 0;
inner:
  mad.lo.u32 %r14, %r1, 8, %r13;  // ty*TILE + k
  shl.u32 %r14, %r14, 2;
  cvt.u64.u32 %rd7, %r14;
  mov.u64 %rd8, tile_a;
  add.u64 %rd8, %rd8, %rd7;
  ld.shared.f32 %f3, [%rd8];
  mad.lo.u32 %r15, %r13, 8, %r0;  // k*TILE + tx
  shl.u32 %r15, %r15, 2;
  cvt.u64.u32 %rd7, %r15;
  mov.u64 %rd9, tile_b;
  add.u64 %rd9, %rd9, %rd7;
  ld.shared.f32 %f4, [%rd9];
  fma.rn.f32 %f0, %f3, %f4, %f0;
  add.u32 %r13, %r13, 1;
  setp.lt.u32 %p0, %r13, 8;
  @%p0 bra inner;
  bar.sync 0;
  add.u32 %r7, %r7, 8;
  setp.lt.u32 %p0, %r7, %r4;
  @%p0 bra tile_loop;
  // C[row][col] = acc
  mad.lo.u32 %r9, %r5, %r4, %r6;
  shl.u32 %r9, %r9, 2;
  cvt.u64.u32 %rd3, %r9;
  ld.param.u64 %rd4, [c];
  add.u64 %rd4, %rd4, %rd3;
  st.global.f32 [%rd4], %f0;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        // Inputs and the expected product are seeded-deterministic; warm
        // relaunches reuse them instead of recomputing per launch.
        type Cached = (Vec<f32>, Vec<f32>, Vec<f32>);
        static DATA: std::sync::OnceLock<Cached> = std::sync::OnceLock::new();
        let (a, b, want) = DATA.get_or_init(|| {
            let mut rng = rng_for("matrixmul");
            let a = random_f32(&mut rng, DIM * DIM, -1.0, 1.0);
            let b = random_f32(&mut rng, DIM * DIM, -1.0, 1.0);
            let mut want = vec![0f32; DIM * DIM];
            for row in 0..DIM {
                for col in 0..DIM {
                    let mut acc = 0f32;
                    for k in 0..DIM {
                        acc = a[row * DIM + k].mul_add(b[k * DIM + col], acc);
                    }
                    want[row * DIM + col] = acc;
                }
            }
            (a, b, want)
        });
        let pa = dev.alloc(DIM * DIM * 4)?;
        let pb = dev.alloc(DIM * DIM * 4)?;
        let pc = dev.alloc(DIM * DIM * 4)?;
        dev.copy_f32_htod(pa.ptr(), a)?;
        dev.copy_f32_htod(pb.ptr(), b)?;
        let blocks = (DIM / TILE) as u32;
        let stats = dev.launch(
            "matrixmul",
            [blocks, blocks, 1],
            [TILE as u32, TILE as u32, 1],
            &[
                ParamValue::Ptr(pa.ptr()),
                ParamValue::Ptr(pb.ptr()),
                ParamValue::Ptr(pc.ptr()),
                ParamValue::U32(DIM as u32),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(pc.ptr(), DIM * DIM)?;
        check_f32(self.name(), &got, want, 1e-3)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        MatrixMul.run_checked(&ExecConfig::baseline())?;
        MatrixMul.run_checked(&ExecConfig::dynamic(4))?;
        MatrixMul.run_checked(&ExecConfig::static_tie(4))?;
        Ok(())
    }
}
