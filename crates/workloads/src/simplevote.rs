//! Warp-vote intrinsics demo: CTAs of two threads exercise `vote.all`,
//! `vote.any` and `vote.uni` (the paper's SimpleVoteIntrinsics only ever
//! forms warps of two).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_u32, Outcome, Workload, WorkloadError};

const CTAS: u32 = 32;
const CTA: u32 = 2;

/// Stores, per thread, a bitfield of the three vote results over the
/// predicate `tid == 0`.
#[derive(Debug)]
pub struct SimpleVote;

impl Workload for SimpleVote {
    fn name(&self) -> &'static str {
        "simplevote"
    }

    fn stands_for(&self) -> &'static str {
        "SimpleVoteIntrinsics (warp-wide votes, 2-thread CTAs)"
    }

    fn source(&self) -> String {
        r#"
.kernel simplevote (.param .u64 out) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<6>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r0;
  setp.eq.u32 %p0, %r0, 0;
  vote.all.pred %p1, %p0;
  vote.any.pred %p2, %p0;
  vote.uni.pred %p3, %p0;
  selp.u32 %r2, 1, 0, %p1;
  selp.u32 %r3, 2, 0, %p2;
  selp.u32 %r4, 4, 0, %p3;
  or.b32 %r2, %r2, %r3;
  or.b32 %r2, %r2, %r4;
  shl.u32 %r5, %r1, 2;
  cvt.u64.u32 %rd0, %r5;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r2;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let n = (CTAS * CTA) as usize;
        let po = dev.alloc(n * 4)?;
        let stats = dev.launch(
            "simplevote",
            [CTAS, 1, 1],
            [CTA, 1, 1],
            &[ParamValue::Ptr(po.ptr())],
            config,
        )?;
        let got = dev.copy_u32_dtoh(po.ptr(), n)?;
        // The vote results depend on the dynamically formed warp. With a
        // 2-thread CTA a warp is either both threads (all=false, any=true,
        // uni=false) or a single thread (all=any=pred, uni=true). Check
        // every element is one of the legal encodings for its thread.
        for (i, &v) in got.iter().enumerate() {
            let tid = (i as u32) % CTA;
            let legal: &[u32] = if tid == 0 {
                // pred = true: pair -> any|... = all?false any true uni false = 2
                // alone -> all true any true uni true = 7
                &[2, 7]
            } else {
                // pred = false: pair -> 2; alone -> all false any false uni true = 4
                &[2, 4]
            };
            if !legal.contains(&v) {
                return Err(WorkloadError::Mismatch {
                    workload: self.name().to_string(),
                    detail: format!("thread {i}: vote encoding {v} not in {legal:?}"),
                });
            }
        }
        // Under any policy, thread counts must be complete.
        check_u32(self.name(), &[got.len() as u32], &[n as u32])?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        SimpleVote.run_checked(&ExecConfig::baseline())?;
        SimpleVote.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }

    #[test]
    fn warps_are_capped_at_cta_size() -> Result<(), WorkloadError> {
        // Two-thread CTAs can never form warps wider than 2 (Figure 7's
        // SimpleVoteIntrinsics observation).
        let stats = SimpleVote.run_checked(&ExecConfig::dynamic(4).with_workers(1))?.stats;
        assert_eq!(stats.warp_hist[4], 0, "{:?}", stats.warp_hist);
        assert_eq!(stats.warp_hist[3], 0);
        assert!(stats.warp_hist[2] > 0);
        Ok(())
    }
}
