//! Sobel edge detection on a 2-D image: stencil loads plus an early-exit
//! branch for border threads (minor divergence at tile edges).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const W: usize = 32;
const H: usize = 32;

/// Gradient magnitude |Gx| + |Gy| on interior pixels; borders output 0.
#[derive(Debug)]
pub struct SobelFilter;

impl Workload for SobelFilter {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn stands_for(&self) -> &'static str {
        "SobelFilter (stencil + border divergence)"
    }

    fn source(&self) -> String {
        r#"
.kernel sobel (.param .u64 img, .param .u64 out, .param .u32 width,
               .param .u32 height) {
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<16>;
  .reg .pred %p<5>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;   // pixel index
  ld.param.u32 %r1, [width];
  ld.param.u32 %r2, [height];
  mul.lo.u32 %r3, %r1, %r2;
  setp.ge.u32 %p0, %r0, %r3;
  @%p0 bra done;
  rem.u32 %r4, %r0, %r1;          // x
  div.u32 %r5, %r0, %r1;          // y
  shl.u32 %r6, %r0, 2;
  cvt.u64.u32 %rd0, %r6;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  // border -> write zero and exit (divergent at tile edges)
  setp.eq.u32 %p1, %r4, 0;
  sub.u32 %r7, %r1, 1;
  setp.eq.u32 %p2, %r4, %r7;
  or.pred %p1, %p1, %p2;
  setp.eq.u32 %p3, %r5, 0;
  or.pred %p1, %p1, %p3;
  sub.u32 %r8, %r2, 1;
  setp.eq.u32 %p4, %r5, %r8;
  or.pred %p1, %p1, %p4;
  @!%p1 bra interior;
  mov.f32 %f0, 0.0;
  st.global.f32 [%rd1], %f0;
  ret;
interior:
  ld.param.u64 %rd2, [img];
  // address of pixel (x-1, y-1)
  sub.u32 %r9, %r0, %r1;
  sub.u32 %r9, %r9, 1;
  shl.u32 %r10, %r9, 2;
  cvt.u64.u32 %rd3, %r10;
  add.u64 %rd4, %rd2, %rd3;
  ld.global.f32 %f1, [%rd4];      // NW
  ld.global.f32 %f2, [%rd4+4];    // N
  ld.global.f32 %f3, [%rd4+8];    // NE
  shl.u32 %r11, %r1, 2;
  cvt.u64.u32 %rd5, %r11;
  add.u64 %rd6, %rd4, %rd5;       // (x-1, y)
  ld.global.f32 %f4, [%rd6];      // Wp
  ld.global.f32 %f5, [%rd6+8];    // E
  add.u64 %rd7, %rd6, %rd5;       // (x-1, y+1)
  ld.global.f32 %f6, [%rd7];      // SW
  ld.global.f32 %f7, [%rd7+4];    // S
  ld.global.f32 %f8, [%rd7+8];    // SE
  // Gx = (NE + 2E + SE) - (NW + 2W + SW)
  add.f32 %f9, %f3, %f8;
  fma.rn.f32 %f9, %f5, 2.0, %f9;
  add.f32 %f10, %f1, %f6;
  fma.rn.f32 %f10, %f4, 2.0, %f10;
  sub.f32 %f9, %f9, %f10;
  abs.f32 %f9, %f9;
  // Gy = (SW + 2S + SE) - (NW + 2N + NE)
  add.f32 %f11, %f6, %f8;
  fma.rn.f32 %f11, %f7, 2.0, %f11;
  add.f32 %f12, %f1, %f3;
  fma.rn.f32 %f12, %f2, 2.0, %f12;
  sub.f32 %f11, %f11, %f12;
  abs.f32 %f11, %f11;
  add.f32 %f13, %f9, %f11;
  st.global.f32 [%rd1], %f13;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let img = random_f32(&mut rng, W * H, 0.0, 1.0);
        let pi = dev.alloc(W * H * 4)?;
        let po = dev.alloc(W * H * 4)?;
        dev.copy_f32_htod(pi.ptr(), &img)?;
        let stats = dev.launch(
            "sobel",
            [((W * H) as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[
                ParamValue::Ptr(pi.ptr()),
                ParamValue::Ptr(po.ptr()),
                ParamValue::U32(W as u32),
                ParamValue::U32(H as u32),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), W * H)?;
        let mut want = vec![0f32; W * H];
        for y in 1..H - 1 {
            for x in 1..W - 1 {
                let at = |dx: i64, dy: i64| -> f32 {
                    img[((y as i64 + dy) as usize) * W + (x as i64 + dx) as usize]
                };
                let gx = (at(1, -1) + 2.0f32.mul_add(at(1, 0), at(1, 1)))
                    - (at(-1, -1) + 2.0f32.mul_add(at(-1, 0), at(-1, 1)));
                let gy = (at(-1, 1) + 2.0f32.mul_add(at(0, 1), at(1, 1)))
                    - (at(-1, -1) + 2.0f32.mul_add(at(0, -1), at(1, -1)));
                want[y * W + x] = gx.abs() + gy.abs();
            }
        }
        check_f32(self.name(), &got, &want, 1e-3)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        SobelFilter.run_checked(&ExecConfig::baseline())?;
        SobelFilter.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
