//! Sobol quasirandom generator: per-output XOR of direction vectors
//! selected by index bits (branch-free via select), memory-bound.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_u32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 1024;
const DIRECTIONS: usize = 32;

/// `out[i] = xor over bits b of i of dir[b]`.
#[derive(Debug)]
pub struct SobolQrng;

impl Workload for SobolQrng {
    fn name(&self) -> &'static str {
        "sobolqrng"
    }

    fn stands_for(&self) -> &'static str {
        "SobolQRNG (bit manipulation, memory-bound)"
    }

    fn source(&self) -> String {
        r#"
.kernel sobol (.param .u64 dirs, .param .u64 out, .param .u32 n) {
  .reg .u32 %r<10>;
  .reg .u64 %rd<6>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  mov.u32 %r2, 0;               // acc
  mov.u32 %r3, 0;               // bit
  ld.param.u64 %rd0, [dirs];
bits:
  shr.u32 %r4, %r0, %r3;
  and.b32 %r4, %r4, 1;
  shl.u32 %r5, %r3, 2;
  cvt.u64.u32 %rd1, %r5;
  add.u64 %rd2, %rd0, %rd1;
  ld.global.u32 %r6, [%rd2];    // dir[bit]
  setp.eq.u32 %p1, %r4, 1;
  xor.b32 %r7, %r2, %r6;
  selp.u32 %r2, %r7, %r2, %p1;  // acc ^= dir[bit] when the bit is set
  add.u32 %r3, %r3, 1;
  setp.lt.u32 %p2, %r3, 32;
  @%p2 bra bits;
  shl.u32 %r8, %r0, 2;
  cvt.u64.u32 %rd3, %r8;
  ld.param.u64 %rd4, [out];
  add.u64 %rd4, %rd4, %rd3;
  st.global.u32 [%rd4], %r2;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let dirs: Vec<u32> = (0..DIRECTIONS).map(|_| rng.next_u32()).collect();
        let pd = dev.alloc(DIRECTIONS * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_u32_htod(pd.ptr(), &dirs)?;
        let stats = dev.launch(
            "sobol",
            [(N as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(po.ptr()), ParamValue::U32(N as u32)],
            config,
        )?;
        let got = dev.copy_u32_dtoh(po.ptr(), N)?;
        let want: Vec<u32> = (0..N as u32)
            .map(|i| {
                let mut acc = 0u32;
                for (b, d) in dirs.iter().enumerate() {
                    if (i >> b) & 1 == 1 {
                        acc ^= d;
                    }
                }
                acc
            })
            .collect();
        check_u32(self.name(), &got, &want)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        SobolQrng.run_checked(&ExecConfig::baseline())?;
        SobolQrng.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
