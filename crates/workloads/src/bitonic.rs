//! Bitonic sort of one shared-memory segment per CTA: nested strides with
//! a barrier per step and direction-dependent compare-exchange — heavy
//! structured divergence.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_u32, random_u32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 128;
const CTA: usize = 64;

/// Sorts each 64-element segment ascending.
#[derive(Debug)]
pub struct BitonicSort;

impl Workload for BitonicSort {
    fn name(&self) -> &'static str {
        "bitonic"
    }

    fn stands_for(&self) -> &'static str {
        "Bitonic sort (heavy structured divergence + barriers)"
    }

    fn source(&self) -> String {
        r#"
.kernel bitonic (.param .u64 data, .param .u64 out) {
  .shared .u32 buf[64];
  .reg .u32 %r<14>;
  .reg .u64 %rd<8>;
  .reg .pred %p<6>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r0;
  shl.u32 %r2, %r1, 2;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r3, [%rd1];
  shl.u32 %r4, %r0, 2;
  cvt.u64.u32 %rd2, %r4;
  mov.u64 %rd3, buf;
  add.u64 %rd4, %rd3, %rd2;
  st.shared.u32 [%rd4], %r3;
  mov.u32 %r5, 2;               // k: size of sorted runs
outer:
  shr.u32 %r6, %r5, 1;          // j
inner:
  bar.sync 0;
  xor.b32 %r7, %r0, %r6;        // partner
  setp.le.u32 %p0, %r7, %r0;    // only the low thread of a pair works
  @%p0 bra skip;
  shl.u32 %r8, %r7, 2;
  cvt.u64.u32 %rd5, %r8;
  add.u64 %rd6, %rd3, %rd5;
  ld.shared.u32 %r9, [%rd6];    // partner value
  ld.shared.u32 %r10, [%rd4];   // own value
  // ascending iff (tid & k) == 0
  and.b32 %r11, %r0, %r5;
  setp.eq.u32 %p1, %r11, 0;
  setp.gt.u32 %p2, %r10, %r9;   // own > partner
  and.pred %p3, %p1, %p2;
  not.pred %p4, %p1;
  setp.lt.u32 %p2, %r10, %r9;
  and.pred %p5, %p4, %p2;
  or.pred %p3, %p3, %p5;        // swap?
  @!%p3 bra skip;
  st.shared.u32 [%rd4], %r9;
  st.shared.u32 [%rd6], %r10;
skip:
  shr.u32 %r6, %r6, 1;
  setp.gt.u32 %p0, %r6, 0;
  @%p0 bra inner;
  shl.u32 %r5, %r5, 1;
  setp.le.u32 %p0, %r5, %ntid.x;
  @%p0 bra outer;
  bar.sync 0;
  ld.shared.u32 %r12, [%rd4];
  ld.param.u64 %rd7, [out];
  add.u64 %rd7, %rd7, %rd0;
  st.global.u32 [%rd7], %r12;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        // Seeded-deterministic input and expected (per-segment sorted)
        // output; computed once, reused across warm relaunches.
        type Cached = (Vec<u32>, Vec<u32>);
        static DATA: std::sync::OnceLock<Cached> = std::sync::OnceLock::new();
        let (data, want) = DATA.get_or_init(|| {
            let mut rng = rng_for("bitonic");
            let data = random_u32(&mut rng, N, 10_000);
            let mut want = vec![0u32; N];
            for seg in 0..(N / CTA) {
                let mut v: Vec<u32> = data[seg * CTA..(seg + 1) * CTA].to_vec();
                v.sort_unstable();
                want[seg * CTA..(seg + 1) * CTA].copy_from_slice(&v);
            }
            (data, want)
        });
        let pd = dev.alloc(N * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_u32_htod(pd.ptr(), data)?;
        let stats = dev.launch(
            "bitonic",
            [(N / CTA) as u32, 1, 1],
            [CTA as u32, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(po.ptr())],
            config,
        )?;
        let got = dev.copy_u32_dtoh(po.ptr(), N)?;
        check_u32(self.name(), &got, want)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        BitonicSort.run_checked(&ExecConfig::baseline())?;
        BitonicSort.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
