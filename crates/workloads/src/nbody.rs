//! All-pairs n-body force computation: compute-bound, uniform inner loop.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 128;
const SOFTENING: f32 = 0.1;

/// One acceleration step of an O(n²) n-body simulation.
#[derive(Debug)]
pub struct Nbody;

impl Workload for Nbody {
    fn name(&self) -> &'static str {
        "nbody"
    }

    fn stands_for(&self) -> &'static str {
        "Nbody (compute-bound, uniform O(n²) loop)"
    }

    fn source(&self) -> String {
        // bodies: [x, y, z, m] * n; out: [ax, ay, az] * n.
        r#"
.kernel nbody (.param .u64 bodies, .param .u64 accel, .param .u32 n) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<20>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd1, %rd0, 4;
  ld.param.u64 %rd2, [bodies];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f0, [%rd3];       // xi
  ld.global.f32 %f1, [%rd3+4];     // yi
  ld.global.f32 %f2, [%rd3+8];     // zi
  mov.f32 %f3, 0.0;                // ax
  mov.f32 %f4, 0.0;                // ay
  mov.f32 %f5, 0.0;                // az
  ld.param.u32 %r1, [n];
  mov.u32 %r2, 0;
  mov.u64 %rd4, %rd2;              // cursor over bodies
loop:
  ld.global.f32 %f6, [%rd4];       // xj
  ld.global.f32 %f7, [%rd4+4];     // yj
  ld.global.f32 %f8, [%rd4+8];     // zj
  ld.global.f32 %f9, [%rd4+12];    // mj
  sub.f32 %f10, %f6, %f0;
  sub.f32 %f11, %f7, %f1;
  sub.f32 %f12, %f8, %f2;
  mul.f32 %f13, %f10, %f10;
  fma.rn.f32 %f13, %f11, %f11, %f13;
  fma.rn.f32 %f13, %f12, %f12, %f13;
  add.f32 %f13, %f13, 0.01;        // softening^2
  rsqrt.approx.f32 %f14, %f13;     // 1/r
  mul.f32 %f15, %f14, %f14;
  mul.f32 %f15, %f15, %f14;        // 1/r^3
  mul.f32 %f15, %f15, %f9;         // mj/r^3
  fma.rn.f32 %f3, %f10, %f15, %f3;
  fma.rn.f32 %f4, %f11, %f15, %f4;
  fma.rn.f32 %f5, %f12, %f15, %f5;
  add.u64 %rd4, %rd4, 16;
  add.u32 %r2, %r2, 1;
  setp.lt.u32 %p0, %r2, %r1;
  @%p0 bra loop;
  mul.lo.u32 %r3, %r0, 12;
  cvt.u64.u32 %rd5, %r3;
  ld.param.u64 %rd6, [accel];
  add.u64 %rd6, %rd6, %rd5;
  st.global.f32 [%rd6], %f3;
  st.global.f32 [%rd6+4], %f4;
  st.global.f32 [%rd6+8], %f5;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let bodies = random_f32(&mut rng, N * 4, -2.0, 2.0);
        let pb = dev.alloc(N * 16)?;
        let pa = dev.alloc(N * 12)?;
        dev.copy_f32_htod(pb.ptr(), &bodies)?;
        let stats = dev.launch(
            "nbody",
            [(N as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(pb.ptr()), ParamValue::Ptr(pa.ptr()), ParamValue::U32(N as u32)],
            config,
        )?;
        let got = dev.copy_f32_dtoh(pa.ptr(), N * 3)?;
        let mut want = vec![0f32; N * 3];
        for i in 0..N {
            let (xi, yi, zi) = (bodies[4 * i], bodies[4 * i + 1], bodies[4 * i + 2]);
            let (mut ax, mut ay, mut az) = (0f32, 0f32, 0f32);
            for j in 0..N {
                let (xj, yj, zj, mj) =
                    (bodies[4 * j], bodies[4 * j + 1], bodies[4 * j + 2], bodies[4 * j + 3]);
                let (dx, dy, dz) = (xj - xi, yj - yi, zj - zi);
                let r2 = dz.mul_add(dz, dy.mul_add(dy, dx * dx)) + SOFTENING * SOFTENING;
                let inv_r = 1.0 / r2.sqrt();
                let s = mj * inv_r * inv_r * inv_r;
                ax = dx.mul_add(s, ax);
                ay = dy.mul_add(s, ay);
                az = dz.mul_add(s, az);
            }
            want[3 * i] = ax;
            want[3 * i + 1] = ay;
            want[3 * i + 2] = az;
        }
        check_f32(self.name(), &got, &want, 5e-3)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        Nbody.run_checked(&ExecConfig::baseline())?;
        Nbody.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
