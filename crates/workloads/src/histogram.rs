//! 64-bin histogram: per-thread sub-histograms in private (local) memory,
//! merged with global atomics (the SDK's Histogram64 strategy).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_u32, random_u32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 4096;
const BINS: usize = 64;
const CTA: usize = 64;
const CTAS: usize = 2;

/// `hist[b] = |{ i : data[i] == b }|`.
#[derive(Debug)]
pub struct Histogram64;

impl Workload for Histogram64 {
    fn name(&self) -> &'static str {
        "histogram64"
    }

    fn stands_for(&self) -> &'static str {
        "Histogram64 (per-thread private bins + atomic merge)"
    }

    fn source(&self) -> String {
        r#"
.kernel histogram64 (.param .u64 data, .param .u64 hist, .param .u32 n) {
  .local .u32 bins[64];
  .reg .u32 %r<10>;
  .reg .u64 %rd<10>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r0;  // global thread id
  mul.lo.u32 %r2, %ntid.x, %nctaid.x;      // total threads
  // zero the private bins
  mov.u32 %r3, 0;
zero:
  shl.u32 %r4, %r3, 2;
  cvt.u64.u32 %rd0, %r4;
  mov.u64 %rd1, bins;
  add.u64 %rd1, %rd1, %rd0;
  mov.u32 %r5, 0;
  st.local.u32 [%rd1], %r5;
  add.u32 %r3, %r3, 1;
  setp.lt.u32 %p0, %r3, 64;
  @%p0 bra zero;
  // grid-stride accumulation
  ld.param.u32 %r6, [n];
  mov.u32 %r3, %r1;
accum:
  setp.ge.u32 %p1, %r3, %r6;
  @%p1 bra merge_init;
  shl.u32 %r4, %r3, 2;
  cvt.u64.u32 %rd2, %r4;
  ld.param.u64 %rd3, [data];
  add.u64 %rd3, %rd3, %rd2;
  ld.global.u32 %r5, [%rd3];
  and.b32 %r5, %r5, 63;
  shl.u32 %r5, %r5, 2;
  cvt.u64.u32 %rd4, %r5;
  mov.u64 %rd5, bins;
  add.u64 %rd5, %rd5, %rd4;
  ld.local.u32 %r7, [%rd5];
  add.u32 %r7, %r7, 1;
  st.local.u32 [%rd5], %r7;
  add.u32 %r3, %r3, %r2;
  bra accum;
merge_init:
  mov.u32 %r3, 0;
merge:
  shl.u32 %r4, %r3, 2;
  cvt.u64.u32 %rd6, %r4;
  mov.u64 %rd7, bins;
  add.u64 %rd7, %rd7, %rd6;
  ld.local.u32 %r7, [%rd7];
  ld.param.u64 %rd8, [hist];
  add.u64 %rd8, %rd8, %rd6;
  atom.global.add.u32 %r8, [%rd8], %r7;
  add.u32 %r3, %r3, 1;
  setp.lt.u32 %p0, %r3, 64;
  @%p0 bra merge;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let data = random_u32(&mut rng, N, BINS as u32);
        let pd = dev.alloc(N * 4)?;
        let ph = dev.alloc(BINS * 4)?;
        dev.copy_u32_htod(pd.ptr(), &data)?;
        dev.copy_u32_htod(ph.ptr(), &vec![0u32; BINS])?;
        let stats = dev.launch(
            "histogram64",
            [CTAS as u32, 1, 1],
            [CTA as u32, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(ph.ptr()), ParamValue::U32(N as u32)],
            config,
        )?;
        let got = dev.copy_u32_dtoh(ph.ptr(), BINS)?;
        let mut want = vec![0u32; BINS];
        for &v in &data {
            want[v as usize] += 1;
        }
        check_u32(self.name(), &got, &want)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        Histogram64.run_checked(&ExecConfig::baseline())?;
        Histogram64.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
