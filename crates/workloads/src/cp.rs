//! Coulombic potential (Parboil `cp`): each thread accumulates the
//! potential of all atoms at one grid point. Compute-bound with a uniform
//! inner loop — the paper's best case (3.9× speedup).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const GRID: usize = 24; // 24x24 potential grid = 576 threads
const ATOMS: usize = 64;
const SPACING: f32 = 0.5;

/// Direct-summation coulombic potential over a 2-D grid.
#[derive(Debug)]
pub struct CoulombicPotential;

impl Workload for CoulombicPotential {
    fn name(&self) -> &'static str {
        "cp"
    }

    fn stands_for(&self) -> &'static str {
        "Parboil cp (compute-bound, unrolled uniform loop)"
    }

    fn source(&self) -> String {
        // atoms: [x, y, z, q] * ATOMS in global memory.
        r#"
.kernel cp (.param .u64 atoms, .param .u64 out, .param .u32 natoms,
            .param .u32 gridw, .param .f32 spacing) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<16>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [gridw];
  rem.u32 %r2, %r0, %r1;          // gx
  div.u32 %r3, %r0, %r1;          // gy
  cvt.rn.f32.u32 %f0, %r2;
  cvt.rn.f32.u32 %f1, %r3;
  ld.param.f32 %f2, [spacing];
  mul.f32 %f0, %f0, %f2;          // px
  mul.f32 %f1, %f1, %f2;          // py
  mov.f32 %f3, 0.0;               // energy
  ld.param.u32 %r4, [natoms];
  ld.param.u64 %rd0, [atoms];
  mov.u32 %r5, 0;
loop:
  ld.global.f32 %f4, [%rd0];      // ax
  ld.global.f32 %f5, [%rd0+4];    // ay
  ld.global.f32 %f6, [%rd0+8];    // az
  ld.global.f32 %f7, [%rd0+12];   // q
  sub.f32 %f8, %f0, %f4;
  sub.f32 %f9, %f1, %f5;
  mul.f32 %f10, %f8, %f8;
  fma.rn.f32 %f10, %f9, %f9, %f10;
  fma.rn.f32 %f10, %f6, %f6, %f10; // dx^2+dy^2+az^2
  rsqrt.approx.f32 %f11, %f10;
  fma.rn.f32 %f3, %f7, %f11, %f3; // energy += q / r
  add.u64 %rd0, %rd0, 16;
  add.u32 %r5, %r5, 1;
  setp.lt.u32 %p0, %r5, %r4;
  @%p0 bra loop;
  cvt.u64.u32 %rd1, %r0;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd1;
  st.global.f32 [%rd2], %f3;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let atoms = random_f32(&mut rng, ATOMS * 4, 0.1, GRID as f32 * SPACING);
        let n = GRID * GRID;
        let pa = dev.alloc(ATOMS * 16)?;
        let po = dev.alloc(n * 4)?;
        dev.copy_f32_htod(pa.ptr(), &atoms)?;
        let stats = dev.launch(
            "cp",
            [(n as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[
                ParamValue::Ptr(pa.ptr()),
                ParamValue::Ptr(po.ptr()),
                ParamValue::U32(ATOMS as u32),
                ParamValue::U32(GRID as u32),
                ParamValue::F32(SPACING),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), n)?;
        let want: Vec<f32> = (0..n)
            .map(|i| {
                let px = (i % GRID) as f32 * SPACING;
                let py = (i / GRID) as f32 * SPACING;
                let mut e = 0f32;
                for a in 0..ATOMS {
                    let (ax, ay, az, q) =
                        (atoms[4 * a], atoms[4 * a + 1], atoms[4 * a + 2], atoms[4 * a + 3]);
                    let (dx, dy) = (px - ax, py - ay);
                    let r2 = az.mul_add(az, dy.mul_add(dy, dx * dx));
                    e = q.mul_add(1.0 / r2.sqrt(), e);
                }
                e
            })
            .collect();
        check_f32(self.name(), &got, &want, 2e-3)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        CoulombicPotential.run_checked(&ExecConfig::baseline())?;
        CoulombicPotential.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }

    #[test]
    fn cp_has_large_vector_speedup() -> Result<(), WorkloadError> {
        let s1 = CoulombicPotential.run_checked(&ExecConfig::baseline().with_workers(1))?.stats;
        let s4 = CoulombicPotential.run_checked(&ExecConfig::dynamic(4).with_workers(1))?.stats;
        let speedup = s1.exec.total_cycles() as f64 / s4.exec.total_cycles() as f64;
        // The paper reports 3.9x for cp; our model should be well above 2x.
        assert!(speedup > 2.0, "speedup {speedup}");
        Ok(())
    }
}
