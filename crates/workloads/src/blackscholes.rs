//! Black–Scholes European option pricing: compute-bound, fully uniform,
//! transcendental-heavy (the classic CUDA SDK workload).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 1024;
const CTA: u32 = 64;
const RISK_FREE: f32 = 0.02;
const VOLATILITY: f32 = 0.30;

/// Call-option pricing via the cumulative-normal polynomial approximation.
#[derive(Debug)]
pub struct BlackScholes;

impl Workload for BlackScholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn stands_for(&self) -> &'static str {
        "BlackScholes (compute-bound uniform, transcendentals)"
    }

    fn source(&self) -> String {
        // CND(d) = 1 - n(d)(a1 k + a2 k^2 + ... + a5 k^5), k = 1/(1+0.2316419 d)
        // with the d<0 mirror handled by selp (no control flow).
        r#"
.kernel blackscholes (.param .u64 spot, .param .u64 strike, .param .u64 years,
                      .param .u64 call, .param .u32 n,
                      .param .f32 riskfree, .param .f32 vol) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<30>;
  .reg .pred %p<4>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [spot];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];      // S
  ld.param.u64 %rd2, [strike];
  add.u64 %rd2, %rd2, %rd0;
  ld.global.f32 %f1, [%rd2];      // X
  ld.param.u64 %rd3, [years];
  add.u64 %rd3, %rd3, %rd0;
  ld.global.f32 %f2, [%rd3];      // T
  ld.param.f32 %f3, [riskfree];   // R
  ld.param.f32 %f4, [vol];        // V

  // d1 = (log(S/X) + (R + V*V/2) T) / (V sqrt(T)); log(x) = lg2(x) * ln(2)
  div.rn.f32 %f5, %f0, %f1;
  lg2.approx.f32 %f5, %f5;
  mov.f32 %f6, 0.6931471805599453;
  mul.f32 %f5, %f5, %f6;          // ln(S/X)
  mul.f32 %f7, %f4, %f4;
  mov.f32 %f8, 0.5;
  mul.f32 %f7, %f7, %f8;
  add.f32 %f7, %f7, %f3;          // R + V^2/2
  fma.rn.f32 %f5, %f7, %f2, %f5;  // + (R+V^2/2) T
  sqrt.rn.f32 %f9, %f2;           // sqrt(T)
  mul.f32 %f10, %f4, %f9;         // V sqrt(T)
  div.rn.f32 %f11, %f5, %f10;     // d1
  sub.f32 %f12, %f11, %f10;       // d2

  // CND(d1) -> %f13, CND(d2) -> %f14 (inlined twice).
  // --- CND(%f11) ---
  abs.f32 %f15, %f11;
  mov.f32 %f16, 0.2316419;
  fma.rn.f32 %f16, %f16, %f15, 1.0;
  rcp.approx.f32 %f16, %f16;      // k
  mul.f32 %f17, %f15, %f15;
  mov.f32 %f18, -0.5;
  mul.f32 %f17, %f17, %f18;
  mov.f32 %f19, 1.4426950408889634;
  mul.f32 %f17, %f17, %f19;
  ex2.approx.f32 %f17, %f17;      // exp(-d^2/2)
  mov.f32 %f18, 0.39894228040143267;
  mul.f32 %f17, %f17, %f18;       // n(d)
  mov.f32 %f20, 1.330274429;
  mov.f32 %f21, -1.821255978;
  fma.rn.f32 %f21, %f20, %f16, %f21;
  mov.f32 %f20, 1.781477937;
  fma.rn.f32 %f20, %f21, %f16, %f20;
  mov.f32 %f21, -0.356563782;
  fma.rn.f32 %f21, %f20, %f16, %f21;
  mov.f32 %f20, 0.319381530;
  fma.rn.f32 %f20, %f21, %f16, %f20;
  mul.f32 %f20, %f20, %f16;       // poly(k)
  mul.f32 %f20, %f20, %f17;       // n(d) poly(k)
  mov.f32 %f21, 1.0;
  sub.f32 %f13, %f21, %f20;       // CND(|d|)
  sub.f32 %f22, %f21, %f13;       // 1 - CND
  setp.lt.f32 %p1, %f11, 0.0;
  selp.f32 %f13, %f22, %f13, %p1;
  // --- CND(%f12) ---
  abs.f32 %f15, %f12;
  mov.f32 %f16, 0.2316419;
  fma.rn.f32 %f16, %f16, %f15, 1.0;
  rcp.approx.f32 %f16, %f16;
  mul.f32 %f17, %f15, %f15;
  mov.f32 %f18, -0.5;
  mul.f32 %f17, %f17, %f18;
  mov.f32 %f19, 1.4426950408889634;
  mul.f32 %f17, %f17, %f19;
  ex2.approx.f32 %f17, %f17;
  mov.f32 %f18, 0.39894228040143267;
  mul.f32 %f17, %f17, %f18;
  mov.f32 %f20, 1.330274429;
  mov.f32 %f21, -1.821255978;
  fma.rn.f32 %f21, %f20, %f16, %f21;
  mov.f32 %f20, 1.781477937;
  fma.rn.f32 %f20, %f21, %f16, %f20;
  mov.f32 %f21, -0.356563782;
  fma.rn.f32 %f21, %f20, %f16, %f21;
  mov.f32 %f20, 0.319381530;
  fma.rn.f32 %f20, %f21, %f16, %f20;
  mul.f32 %f20, %f20, %f16;
  mul.f32 %f20, %f20, %f17;
  mov.f32 %f21, 1.0;
  sub.f32 %f14, %f21, %f20;
  sub.f32 %f22, %f21, %f14;
  setp.lt.f32 %p2, %f12, 0.0;
  selp.f32 %f14, %f22, %f14, %p2;

  // call = S*CND(d1) - X*exp(-R T)*CND(d2); exp(x) = ex2(x*log2 e)
  neg.f32 %f23, %f3;
  mul.f32 %f23, %f23, %f2;
  mov.f32 %f19, 1.4426950408889634;
  mul.f32 %f23, %f23, %f19;
  ex2.approx.f32 %f23, %f23;      // exp(-RT)
  mul.f32 %f24, %f1, %f23;        // X exp(-RT)
  mul.f32 %f24, %f24, %f14;       // * CND(d2)
  mul.f32 %f25, %f0, %f13;        // S CND(d1)
  sub.f32 %f25, %f25, %f24;
  ld.param.u64 %rd4, [call];
  add.u64 %rd4, %rd4, %rd0;
  st.global.f32 [%rd4], %f25;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        // Seeded-deterministic inputs and expected prices; computed once,
        // reused across warm relaunches.
        type Cached = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);
        static DATA: std::sync::OnceLock<Cached> = std::sync::OnceLock::new();
        let (spot, strike, years, want) = DATA.get_or_init(|| {
            let mut rng = rng_for("blackscholes");
            let spot = random_f32(&mut rng, N, 5.0, 30.0);
            let strike = random_f32(&mut rng, N, 1.0, 100.0);
            let years = random_f32(&mut rng, N, 0.25, 10.0);
            let want = (0..N)
                .map(|i| reference_call(spot[i], strike[i], years[i], RISK_FREE, VOLATILITY))
                .collect();
            (spot, strike, years, want)
        });
        let ps = dev.alloc(N * 4)?;
        let px = dev.alloc(N * 4)?;
        let pt = dev.alloc(N * 4)?;
        let pc = dev.alloc(N * 4)?;
        dev.copy_f32_htod(ps.ptr(), spot)?;
        dev.copy_f32_htod(px.ptr(), strike)?;
        dev.copy_f32_htod(pt.ptr(), years)?;
        let stats = dev.launch(
            "blackscholes",
            [(N as u32).div_ceil(CTA), 1, 1],
            [CTA, 1, 1],
            &[
                ParamValue::Ptr(ps.ptr()),
                ParamValue::Ptr(px.ptr()),
                ParamValue::Ptr(pt.ptr()),
                ParamValue::Ptr(pc.ptr()),
                ParamValue::U32(N as u32),
                ParamValue::F32(RISK_FREE),
                ParamValue::F32(VOLATILITY),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(pc.ptr(), N)?;
        check_f32(self.name(), &got, want, 2e-3)?;
        Ok(Outcome { stats })
    }
}

// The Abramowitz–Stegun coefficients are quoted at reference precision.
#[allow(clippy::excessive_precision)]
fn cnd(d: f32) -> f32 {
    let a = d.abs();
    let k = 1.0 / 0.2316419f32.mul_add(a, 1.0);
    let pdf = 0.39894228040143267 * (-0.5 * a * a).exp();
    let poly = 0.319381530f32
        + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429)));
    let c = 1.0 - pdf * poly * k;
    if d < 0.0 {
        1.0 - c
    } else {
        c
    }
}

fn reference_call(s: f32, x: f32, t: f32, r: f32, v: f32) -> f32 {
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    s * cnd(d1) - x * (-r * t).exp() * cnd(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates_scalar_and_vector() -> Result<(), WorkloadError> {
        BlackScholes.run_checked(&ExecConfig::baseline())?;
        BlackScholes.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }

    #[test]
    fn compute_bound_kernel_speeds_up() -> Result<(), WorkloadError> {
        let s1 = BlackScholes.run_checked(&ExecConfig::baseline().with_workers(1))?.stats;
        let s4 = BlackScholes.run_checked(&ExecConfig::dynamic(4).with_workers(1))?.stats;
        let speedup = s1.exec.total_cycles() as f64 / s4.exec.total_cycles() as f64;
        assert!(speedup > 1.3, "speedup {speedup}");
        Ok(())
    }
}
