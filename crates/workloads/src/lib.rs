//! # dpvk-workloads
//!
//! The benchmark suite of the reproduction: data-parallel kernels written
//! in the PTX-like virtual ISA, each with a host-side driver that prepares
//! inputs, launches the kernel through [`dpvk_core::Device`], and checks
//! the output against a Rust reference implementation.
//!
//! The suite covers the behaviour classes of the paper's evaluation
//! (CUDA SDK 2.2 + Parboil): compute-bound uniform kernels (`cp`, `nbody`,
//! `blackscholes`, ...), barrier-heavy kernels (`matrixmul`, `reduction`,
//! `scan`, ...), memory-bound kernels (`boxfilter`, `sobolqrng`, ...) and
//! divergence-heavy kernels (`mersenne`, `bitonic`, `montecarlo`, ...).
//! See DESIGN.md §5 for the mapping to the paper's applications.
//!
//! ```
//! use dpvk_workloads::{all_workloads, WorkloadExt};
//! use dpvk_core::ExecConfig;
//!
//! let vecadd = all_workloads()
//!     .into_iter()
//!     .find(|w| w.name() == "vecadd")
//!     .expect("vecadd is part of the suite");
//! let outcome = vecadd.run_checked(&ExecConfig::dynamic(4))?;
//! assert!(outcome.stats.exec.total_cycles() > 0);
//! # Ok::<(), dpvk_workloads::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod common;

mod binomial;
mod bitonic;
mod blackscholes;
mod boxfilter;
mod cp;
mod fastwalsh;
mod histogram;
mod matrixmul;
mod mersenne;
mod montecarlo;
mod mrifhd;
mod mriq;
mod nbody;
mod reduction;
mod scalarprod;
mod scan;
mod simplevote;
mod sobel;
mod sobolqrng;
mod throughput;
mod transpose;
mod vecadd;

pub use common::{rng_for, Outcome, Prng, Workload, WorkloadError, WorkloadExt};

/// All workloads of the suite, in report order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(throughput::Throughput),
        Box::new(vecadd::VecAdd),
        Box::new(blackscholes::BlackScholes),
        Box::new(binomial::BinomialOptions),
        Box::new(cp::CoulombicPotential),
        Box::new(nbody::Nbody),
        Box::new(mriq::MriQ),
        Box::new(mrifhd::MriFhd),
        Box::new(matrixmul::MatrixMul),
        Box::new(transpose::Transpose),
        Box::new(reduction::Reduction),
        Box::new(scan::Scan),
        Box::new(scalarprod::ScalarProd),
        Box::new(fastwalsh::FastWalshTransform),
        Box::new(histogram::Histogram64),
        Box::new(sobolqrng::SobolQrng),
        Box::new(mersenne::MersenneTwister),
        Box::new(montecarlo::MonteCarlo),
        Box::new(bitonic::BitonicSort),
        Box::new(boxfilter::BoxFilter),
        Box::new(sobel::SobelFilter),
        Box::new(simplevote::SimpleVote),
    ]
}

/// Look up one workload by name.
pub fn workload(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_unique_names() {
        let ws = all_workloads();
        let mut names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 22, "expected at least 22 workloads, found {before}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("cp").is_some());
        assert!(workload("absent").is_none());
    }
}
