//! MRI FHd computation (Parboil `mri-fhd`): transcendental-heavy with a
//! data-dependent branch in the inner loop (moderate, uncorrelated
//! divergence — one of the paper's slowdown cases under dynamic warp
//! formation).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const POINTS: usize = 256;
const SAMPLES: usize = 32;
const TWO_PI: f32 = std::f32::consts::TAU;
const CUTOFF: f32 = 0.25;

/// FHd with a per-sample magnitude cutoff branch.
#[derive(Debug)]
pub struct MriFhd;

impl Workload for MriFhd {
    fn name(&self) -> &'static str {
        "mrifhd"
    }

    fn stands_for(&self) -> &'static str {
        "Parboil mri-fhd (transcendentals + data-dependent branch)"
    }

    fn source(&self) -> String {
        // traj: [kx, ky, kz, rho] * SAMPLES; pos: [x, y, z] * POINTS.
        // Samples whose |rho * x| is below a cutoff are skipped — the
        // branch outcome depends on the thread's own position, so warps
        // diverge irregularly.
        r#"
.kernel mrifhd (.param .u64 traj, .param .u64 pos, .param .u64 out,
                .param .u32 nsamples, .param .f32 cutoff) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<20>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  mul.lo.u32 %r1, %r0, 12;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [pos];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  ld.global.f32 %f1, [%rd1+4];
  ld.global.f32 %f2, [%rd1+8];
  mov.f32 %f3, 0.0;
  mov.f32 %f4, 0.0;
  ld.param.u64 %rd2, [traj];
  ld.param.u32 %r2, [nsamples];
  ld.param.f32 %f13, [cutoff];
  mov.u32 %r3, 0;
loop:
  ld.global.f32 %f8, [%rd2+12];   // rho
  mul.f32 %f14, %f8, %f0;         // rho * x: thread-dependent
  abs.f32 %f14, %f14;
  setp.lt.f32 %p1, %f14, %f13;
  @%p1 bra skip;
  ld.global.f32 %f5, [%rd2];
  ld.global.f32 %f6, [%rd2+4];
  ld.global.f32 %f7, [%rd2+8];
  mul.f32 %f9, %f5, %f0;
  fma.rn.f32 %f9, %f6, %f1, %f9;
  fma.rn.f32 %f9, %f7, %f2, %f9;
  mov.f32 %f10, 6.283185307179586;
  mul.f32 %f9, %f9, %f10;
  cos.approx.f32 %f11, %f9;
  sin.approx.f32 %f12, %f9;
  fma.rn.f32 %f3, %f8, %f11, %f3;
  fma.rn.f32 %f4, %f8, %f12, %f4;
skip:
  add.u64 %rd2, %rd2, 16;
  add.u32 %r3, %r3, 1;
  setp.lt.u32 %p0, %r3, %r2;
  @%p0 bra loop;
  cvt.u64.u32 %rd3, %r0;
  shl.u64 %rd3, %rd3, 3;
  ld.param.u64 %rd4, [out];
  add.u64 %rd4, %rd4, %rd3;
  st.global.f32 [%rd4], %f3;
  st.global.f32 [%rd4+4], %f4;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let traj = random_f32(&mut rng, SAMPLES * 4, -1.0, 1.0);
        let pos = random_f32(&mut rng, POINTS * 3, -1.0, 1.0);
        let pt = dev.alloc(SAMPLES * 16)?;
        let pp = dev.alloc(POINTS * 12)?;
        let po = dev.alloc(POINTS * 8)?;
        dev.copy_f32_htod(pt.ptr(), &traj)?;
        dev.copy_f32_htod(pp.ptr(), &pos)?;
        let stats = dev.launch(
            "mrifhd",
            [(POINTS as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[
                ParamValue::Ptr(pt.ptr()),
                ParamValue::Ptr(pp.ptr()),
                ParamValue::Ptr(po.ptr()),
                ParamValue::U32(SAMPLES as u32),
                ParamValue::F32(CUTOFF),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), POINTS * 2)?;
        let mut want = vec![0f32; POINTS * 2];
        for i in 0..POINTS {
            let (x, y, z) = (pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]);
            let (mut qr, mut qi) = (0f32, 0f32);
            for s in 0..SAMPLES {
                let (kx, ky, kz, rho) =
                    (traj[4 * s], traj[4 * s + 1], traj[4 * s + 2], traj[4 * s + 3]);
                if (rho * x).abs() < CUTOFF {
                    continue;
                }
                let phi = TWO_PI * kz.mul_add(z, ky.mul_add(y, kx * x));
                qr = rho.mul_add(phi.cos(), qr);
                qi = rho.mul_add(phi.sin(), qi);
            }
            want[2 * i] = qr;
            want[2 * i + 1] = qi;
        }
        check_f32(self.name(), &got, &want, 5e-3)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        MriFhd.run_checked(&ExecConfig::baseline())?;
        MriFhd.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
