//! Matrix transpose through shared-memory tiles: memory-bound with
//! barriers.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const DIM: usize = 32;
const TILE: usize = 8;

/// `B = Aᵀ` with a staging tile per CTA.
#[derive(Debug)]
pub struct Transpose;

impl Workload for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn stands_for(&self) -> &'static str {
        "Transpose (memory-bound shared-memory tiles)"
    }

    fn source(&self) -> String {
        r#"
.kernel transpose (.param .u64 a, .param .u64 b, .param .u32 dim) {
  .shared .f32 tile[64];
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<3>;
entry:
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, %tid.y;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ctaid.y;
  ld.param.u32 %r4, [dim];
  // read A[by*T+ty][bx*T+tx] into tile[ty][tx]
  mad.lo.u32 %r5, %r3, 8, %r1;    // row
  mad.lo.u32 %r6, %r2, 8, %r0;    // col
  mad.lo.u32 %r7, %r5, %r4, %r6;
  shl.u32 %r7, %r7, 2;
  cvt.u64.u32 %rd0, %r7;
  ld.param.u64 %rd1, [a];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  mad.lo.u32 %r8, %r1, 8, %r0;
  shl.u32 %r8, %r8, 2;
  cvt.u64.u32 %rd2, %r8;
  mov.u64 %rd3, tile;
  add.u64 %rd3, %rd3, %rd2;
  st.shared.f32 [%rd3], %f0;
  bar.sync 0;
  // write tile[tx][ty] to B[bx*T+ty][by*T+tx]
  mad.lo.u32 %r9, %r0, 8, %r1;    // tx*T + ty
  shl.u32 %r9, %r9, 2;
  cvt.u64.u32 %rd4, %r9;
  mov.u64 %rd5, tile;
  add.u64 %rd5, %rd5, %rd4;
  ld.shared.f32 %f1, [%rd5];
  mad.lo.u32 %r10, %r2, 8, %r1;   // out row = bx*T + ty
  mad.lo.u32 %r11, %r3, 8, %r0;   // out col = by*T + tx
  mad.lo.u32 %r10, %r10, %r4, %r11;
  shl.u32 %r10, %r10, 2;
  cvt.u64.u32 %rd6, %r10;
  ld.param.u64 %rd7, [b];
  add.u64 %rd7, %rd7, %rd6;
  st.global.f32 [%rd7], %f1;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let a = random_f32(&mut rng, DIM * DIM, -5.0, 5.0);
        let pa = dev.alloc(DIM * DIM * 4)?;
        let pb = dev.alloc(DIM * DIM * 4)?;
        dev.copy_f32_htod(pa.ptr(), &a)?;
        let blocks = (DIM / TILE) as u32;
        let stats = dev.launch(
            "transpose",
            [blocks, blocks, 1],
            [TILE as u32, TILE as u32, 1],
            &[ParamValue::Ptr(pa.ptr()), ParamValue::Ptr(pb.ptr()), ParamValue::U32(DIM as u32)],
            config,
        )?;
        let got = dev.copy_f32_dtoh(pb.ptr(), DIM * DIM)?;
        let mut want = vec![0f32; DIM * DIM];
        for r in 0..DIM {
            for c in 0..DIM {
                want[c * DIM + r] = a[r * DIM + c];
            }
        }
        check_f32(self.name(), &got, &want, 0.0)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        Transpose.run_checked(&ExecConfig::baseline())?;
        Transpose.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
