//! Monte Carlo path accumulation: per-step branch on the thread's own
//! random stream with reconvergence each iteration (moderate divergence).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_u32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 256;
const STEPS: u32 = 16;

/// A random walk where up-moves take an extra (costlier) path.
#[derive(Debug)]
pub struct MonteCarlo;

impl Workload for MonteCarlo {
    fn name(&self) -> &'static str {
        "montecarlo"
    }

    fn stands_for(&self) -> &'static str {
        "MonteCarlo (divergent paths, per-step reconvergence)"
    }

    fn source(&self) -> String {
        r#"
.kernel montecarlo (.param .u64 seeds, .param .u64 out, .param .u32 steps) {
  .reg .u32 %r<10>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<8>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [seeds];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];    // rng state
  mov.f32 %f0, 100.0;           // price
  ld.param.u32 %r3, [steps];
  mov.u32 %r4, 0;
step:
  // LCG advance
  mov.u32 %r5, 1664525;
  mul.lo.u32 %r2, %r2, %r5;
  mov.u32 %r5, 1013904223;
  add.u32 %r2, %r2, %r5;
  shr.u32 %r6, %r2, 31;         // top bit decides the move
  setp.eq.u32 %p0, %r6, 0;
  @%p0 bra down_move;
  // up: multiplicative bump with a sqrt (costlier path)
  mov.f32 %f1, 1.02;
  mul.f32 %f0, %f0, %f1;
  sqrt.rn.f32 %f2, %f0;
  mov.f32 %f3, 0.001;
  fma.rn.f32 %f0, %f2, %f3, %f0;
  bra next;
down_move:
  mov.f32 %f1, 0.985;
  mul.f32 %f0, %f0, %f1;
next:
  add.u32 %r4, %r4, 1;
  setp.lt.u32 %p1, %r4, %r3;
  @%p1 bra step;
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd0;
  st.global.f32 [%rd2], %f0;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let seeds = random_u32(&mut rng, N, u32::MAX);
        let ps = dev.alloc(N * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_u32_htod(ps.ptr(), &seeds)?;
        let stats = dev.launch(
            "montecarlo",
            [(N as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(ps.ptr()), ParamValue::Ptr(po.ptr()), ParamValue::U32(STEPS)],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), N)?;
        let want: Vec<f32> = seeds.iter().map(|&s| reference(s, STEPS)).collect();
        check_f32(self.name(), &got, &want, 1e-3)?;
        Ok(Outcome { stats })
    }
}

fn reference(mut state: u32, steps: u32) -> f32 {
    let mut price = 100.0f32;
    for _ in 0..steps {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        if state >> 31 != 0 {
            price *= 1.02;
            price = price.sqrt().mul_add(0.001, price);
        } else {
            price *= 0.985;
        }
    }
    price
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        MonteCarlo.run_checked(&ExecConfig::baseline())?;
        MonteCarlo.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
