//! The peak-throughput microbenchmark of the paper's Table 1: a heavily
//! unrolled chain of independent FMAs over 576 threads.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, Outcome, Workload, WorkloadError};

/// Number of accumulators (independent FMA chains per thread).
const ACCS: usize = 8;
/// Unrolled FMA rounds per loop iteration (each round updates every
/// accumulator once).
const ROUNDS: usize = 8;
/// Loop iterations.
const ITERS: u32 = 32;
/// Threads per CTA.
const CTA: u32 = 64;
/// CTAs (576 threads total, as in the paper's experiment).
const CTAS: u32 = 9;

/// The Table 1 microbenchmark.
#[derive(Debug, Default)]
pub struct Throughput;

impl Workload for Throughput {
    fn name(&self) -> &'static str {
        "throughput"
    }

    fn stands_for(&self) -> &'static str {
        "Table 1 peak-throughput microbenchmark"
    }

    fn source(&self) -> String {
        let mut body = String::new();
        for _ in 0..ROUNDS {
            for a in 0..ACCS {
                body.push_str(&format!("  fma.rn.f32 %a{a}, %a{a}, %m1, %m0;\n"));
            }
        }
        let mut init = String::new();
        for a in 0..ACCS {
            init.push_str(&format!("  mov.f32 %a{a}, 0.0;\n"));
        }
        let mut sum = String::new();
        for a in 1..ACCS {
            sum.push_str(&format!("  add.f32 %a0, %a0, %a{a};\n"));
        }
        format!(
            r#"
.kernel throughput (.param .u64 out, .param .u32 iters) {{
  .reg .u32 %r<4>;
  .reg .u64 %rd<3>;
  .reg .f32 %a<{ACCS}>;
  .reg .f32 %m<2>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  cvt.rn.f32.u32 %m0, %r0;
  mov.f32 %m1, 1.0001;
{init}  ld.param.u32 %r1, [iters];
  mov.u32 %r2, 0;
loop:
{body}  add.u32 %r2, %r2, 1;
  setp.lt.u32 %p0, %r2, %r1;
  @%p0 bra loop;
{sum}  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.f32 [%rd1], %a0;
  ret;
}}
"#
        )
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        // The expected outputs are a pure function of the fixed problem
        // size, so warm relaunches (the host_perf benchmark, CI smoke
        // loops) pay for the host-side reference computation once.
        static WANT: std::sync::OnceLock<Vec<f32>> = std::sync::OnceLock::new();
        let n = (CTA * CTAS) as usize;
        let out = dev.alloc(n * 4)?;
        let stats = dev.launch(
            "throughput",
            [CTAS, 1, 1],
            [CTA, 1, 1],
            &[ParamValue::Ptr(out.ptr()), ParamValue::U32(ITERS)],
            config,
        )?;
        let got = dev.copy_f32_dtoh(out.ptr(), n)?;
        let want = WANT.get_or_init(|| (0..n).map(|tid| reference(tid as u32)).collect());
        check_f32(self.name(), &got, want, 1e-3)?;
        Ok(Outcome { stats })
    }
}

/// Reference computation for one thread.
fn reference(tid: u32) -> f32 {
    let m0 = tid as f32;
    let m1 = 1.0001f32;
    let mut accs = [0f32; ACCS];
    for _ in 0..ITERS {
        for _ in 0..ROUNDS {
            for a in accs.iter_mut() {
                *a = a.mul_add(m1, m0);
            }
        }
    }
    accs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates_scalar_and_vector() -> Result<(), WorkloadError> {
        Throughput.run_checked(&ExecConfig::baseline().with_workers(1))?;
        Throughput.run_checked(&ExecConfig::dynamic(4).with_workers(1))?;
        Ok(())
    }

    #[test]
    fn vector_speedup_has_table1_shape() -> Result<(), WorkloadError> {
        let s1 = Throughput.run_checked(&ExecConfig::dynamic(1).with_workers(1))?.stats;
        let s4 = Throughput.run_checked(&ExecConfig::dynamic(4).with_workers(1))?.stats;
        let s8 = Throughput.run_checked(&ExecConfig::dynamic(8).with_workers(1))?.stats;
        let c1 = s1.exec.total_cycles() as f64;
        let c4 = s4.exec.total_cycles() as f64;
        let c8 = s8.exec.total_cycles() as f64;
        // Width 4 is much faster than scalar; width 8 regresses from
        // register pressure (Table 1).
        assert!(c1 / c4 > 2.5, "w4 speedup {}", c1 / c4);
        assert!(c8 > c4, "w8 ({c8}) should be slower than w4 ({c4})");
        Ok(())
    }
}
