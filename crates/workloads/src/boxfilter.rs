//! 1-D box filter with clamped borders: memory-bound stencil, branch-free
//! (min/max clamping), uniform control flow.

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 1024;
const RADIUS: i64 = 4;

/// `out[i] = mean(data[clamp(i-4)..=clamp(i+4)])`.
#[derive(Debug)]
pub struct BoxFilter;

impl Workload for BoxFilter {
    fn name(&self) -> &'static str {
        "boxfilter"
    }

    fn stands_for(&self) -> &'static str {
        "BoxFilter (memory-bound stencil)"
    }

    fn source(&self) -> String {
        r#"
.kernel boxfilter (.param .u64 data, .param .u64 out, .param .u32 n) {
  .reg .u32 %r<10>;
  .reg .s32 %s<6>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<6>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  mov.f32 %f0, 0.0;
  mov.s32 %s0, -4;              // offset
  sub.u32 %r2, %r1, 1;          // n-1
  ld.param.u64 %rd0, [data];
window:
  cvt.s32.u32 %s1, %r0;
  add.s32 %s2, %s1, %s0;        // i + offset
  mov.s32 %s3, 0;
  max.s32 %s2, %s2, %s3;        // clamp low
  cvt.s32.u32 %s4, %r2;
  min.s32 %s2, %s2, %s4;        // clamp high
  cvt.u32.s32 %r3, %s2;
  shl.u32 %r3, %r3, 2;
  cvt.u64.u32 %rd1, %r3;
  add.u64 %rd2, %rd0, %rd1;
  ld.global.f32 %f1, [%rd2];
  add.f32 %f0, %f0, %f1;
  add.s32 %s0, %s0, 1;
  mov.s32 %s5, 4;
  setp.le.s32 %p1, %s0, %s5;
  @%p1 bra window;
  mov.f32 %f2, 0.1111111111111111;
  mul.f32 %f0, %f0, %f2;        // / 9
  shl.u32 %r4, %r0, 2;
  cvt.u64.u32 %rd3, %r4;
  ld.param.u64 %rd4, [out];
  add.u64 %rd4, %rd4, %rd3;
  st.global.f32 [%rd4], %f0;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let data = random_f32(&mut rng, N, 0.0, 255.0);
        let pd = dev.alloc(N * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_f32_htod(pd.ptr(), &data)?;
        let stats = dev.launch(
            "boxfilter",
            [(N as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(po.ptr()), ParamValue::U32(N as u32)],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), N)?;
        let want: Vec<f32> = (0..N as i64)
            .map(|i| {
                let mut acc = 0f32;
                for off in -RADIUS..=RADIUS {
                    let j = (i + off).clamp(0, N as i64 - 1) as usize;
                    acc += data[j];
                }
                acc * (1.0 / 9.0)
            })
            .collect();
        check_f32(self.name(), &got, &want, 1e-3)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        BoxFilter.run_checked(&ExecConfig::baseline())?;
        BoxFilter.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
