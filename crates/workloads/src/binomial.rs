//! Binomial option pricing: one option per CTA, a barrier-stepped
//! backward-induction loop over a shared-memory value array. Uniform
//! control flow with heavy synchronization (the paper reports 2.25×
//! speedup but substantial execution-manager time).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const OPTIONS: usize = 8;
const STEPS: usize = 32; // also the CTA size
const RISK_FREE: f32 = 0.02;
const VOLATILITY: f32 = 0.3;
const YEARS: f32 = 1.0;

/// European call priced on a recombining binomial tree.
#[derive(Debug)]
pub struct BinomialOptions;

impl Workload for BinomialOptions {
    fn name(&self) -> &'static str {
        "binomial_options"
    }

    fn stands_for(&self) -> &'static str {
        "BinomialOptions (uniform, barrier-stepped reduction)"
    }

    fn source(&self) -> String {
        // Leaf i value: max(S*u^i*d^(STEPS-i) - X, 0); then STEPS rounds of
        // v[i] = (pu*v[i+1] + pd*v[i]) * discount with a barrier each round.
        // Parameters per option: [S, X] pairs; pu, pd, discount, u, d are
        // uniform scalars.
        r#"
.kernel binomial (.param .u64 sx, .param .u64 out, .param .u32 steps,
                  .param .f32 pu, .param .f32 pd, .param .f32 disc,
                  .param .f32 up, .param .f32 down) {
  .shared .f32 vals[33];
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<18>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;          // leaf index
  mov.u32 %r1, %ctaid.x;        // option index
  shl.u32 %r2, %r1, 3;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [sx];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];    // S
  ld.global.f32 %f1, [%rd1+4];  // X
  // leaf value for index tid: S * up^tid * down^(steps-tid)
  ld.param.f32 %f2, [up];
  ld.param.f32 %f3, [down];
  ld.param.u32 %r3, [steps];
  // leaf = S * up^tid * down^(steps - tid), computed branch-free via
  // exp2/log2 so the setup stays uniform across the warp.
  cvt.rn.f32.u32 %f14, %r0;
  lg2.approx.f32 %f15, %f2;
  mul.f32 %f15, %f15, %f14;
  ex2.approx.f32 %f15, %f15;      // up^tid
  sub.u32 %r5, %r3, %r0;
  cvt.rn.f32.u32 %f14, %r5;
  lg2.approx.f32 %f16, %f3;
  mul.f32 %f16, %f16, %f14;
  ex2.approx.f32 %f16, %f16;      // down^(steps-tid)
  mul.f32 %f4, %f0, %f15;
  mul.f32 %f4, %f4, %f16;
  sub.f32 %f4, %f4, %f1;
  mov.f32 %f5, 0.0;
  max.f32 %f4, %f4, %f5;
  // vals[tid] = leaf (also thread 0 computes vals[steps] via an extra
  // iteration handled by the thread with tid == 0 writing index steps).
  shl.u32 %r6, %r0, 2;
  cvt.u64.u32 %rd2, %r6;
  mov.u64 %rd3, vals;
  add.u64 %rd4, %rd3, %rd2;
  st.shared.f32 [%rd4], %f4;
  // Thread 0 computes the top leaf (index steps).
  setp.ne.u32 %p0, %r0, 0;
  @%p0 bra reduce_init;
  cvt.rn.f32.u32 %f14, %r3;
  lg2.approx.f32 %f15, %f2;
  mul.f32 %f15, %f15, %f14;
  ex2.approx.f32 %f15, %f15;      // up^steps
  mul.f32 %f6, %f0, %f15;
  sub.f32 %f6, %f6, %f1;
  mov.f32 %f5, 0.0;
  max.f32 %f6, %f6, %f5;
  shl.u32 %r6, %r3, 2;
  cvt.u64.u32 %rd5, %r6;
  add.u64 %rd5, %rd3, %rd5;
  st.shared.f32 [%rd5], %f6;
reduce_init:
  ld.param.f32 %f7, [pu];
  ld.param.f32 %f8, [pd];
  ld.param.f32 %f9, [disc];
  mov.u32 %r7, %r3;             // active = steps
reduce:
  bar.sync 0;
  setp.ge.u32 %p1, %r0, %r7;
  @%p1 bra next;
  ld.shared.f32 %f10, [%rd4+4]; // v[tid+1]
  ld.shared.f32 %f11, [%rd4];   // v[tid]
  mul.f32 %f12, %f7, %f10;
  fma.rn.f32 %f12, %f8, %f11, %f12;
  mul.f32 %f12, %f12, %f9;
  bar.sync 0;
  st.shared.f32 [%rd4], %f12;
  bra merged;
next:
  bar.sync 0;
merged:
  sub.u32 %r7, %r7, 1;
  setp.gt.u32 %p2, %r7, 0;
  @%p2 bra reduce;
  setp.ne.u32 %p0, %r0, 0;
  @%p0 bra done;
  ld.shared.f32 %f13, [vals];
  cvt.u64.u32 %rd6, %r1;
  shl.u64 %rd6, %rd6, 2;
  ld.param.u64 %rd7, [out];
  add.u64 %rd7, %rd7, %rd6;
  st.global.f32 [%rd7], %f13;
done:
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let spots = random_f32(&mut rng, OPTIONS, 10.0, 50.0);
        let strikes = random_f32(&mut rng, OPTIONS, 10.0, 50.0);
        let mut sx = Vec::with_capacity(OPTIONS * 2);
        for i in 0..OPTIONS {
            sx.push(spots[i]);
            sx.push(strikes[i]);
        }
        let dt = YEARS / STEPS as f32;
        let up = (VOLATILITY * dt.sqrt()).exp();
        let down = 1.0 / up;
        let growth = (RISK_FREE * dt).exp();
        let pu = (growth - down) / (up - down);
        let pd = 1.0 - pu;
        let disc = 1.0 / growth;

        let psx = dev.alloc(OPTIONS * 8)?;
        let pout = dev.alloc(OPTIONS * 4)?;
        dev.copy_f32_htod(psx.ptr(), &sx)?;
        let stats = dev.launch(
            "binomial",
            [OPTIONS as u32, 1, 1],
            [STEPS as u32, 1, 1],
            &[
                ParamValue::Ptr(psx.ptr()),
                ParamValue::Ptr(pout.ptr()),
                ParamValue::U32(STEPS as u32),
                ParamValue::F32(pu),
                ParamValue::F32(pd),
                ParamValue::F32(disc),
                ParamValue::F32(up),
                ParamValue::F32(down),
            ],
            config,
        )?;
        let got = dev.copy_f32_dtoh(pout.ptr(), OPTIONS)?;
        let want: Vec<f32> =
            (0..OPTIONS).map(|i| reference(spots[i], strikes[i], pu, pd, disc, up, down)).collect();
        check_f32(self.name(), &got, &want, 5e-3)?;
        Ok(Outcome { stats })
    }
}

fn reference(s: f32, x: f32, pu: f32, pd: f32, disc: f32, up: f32, down: f32) -> f32 {
    let mut vals: Vec<f32> = (0..=STEPS)
        .map(|i| {
            // Match the kernel's exp2/log2 leaf computation.
            let up_i = (i as f32 * up.log2()).exp2();
            let down_i = ((STEPS - i) as f32 * down.log2()).exp2();
            (s * up_i * down_i - x).max(0.0)
        })
        .collect();
    for active in (1..=STEPS).rev() {
        for i in 0..active {
            vals[i] = pd.mul_add(vals[i], pu * vals[i + 1]) * disc;
        }
    }
    vals[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        BinomialOptions.run_checked(&ExecConfig::baseline())?;
        BinomialOptions.run_checked(&ExecConfig::dynamic(4))?;
        BinomialOptions.run_checked(&ExecConfig::static_tie(4))?;
        Ok(())
    }
}
