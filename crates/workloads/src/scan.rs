//! Hillis–Steele inclusive prefix sum per CTA: log₂(n) barrier rounds with
//! structured divergence (threads below the offset idle each round).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_f32, random_f32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 256;
const CTA: usize = 64;

/// Per-CTA inclusive scan (each 64-element segment scanned independently).
#[derive(Debug)]
pub struct Scan;

impl Workload for Scan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn stands_for(&self) -> &'static str {
        "Scan / ScanLargeArray (barriers + structured divergence)"
    }

    fn source(&self) -> String {
        // Double-buffered Hillis-Steele in one 128-element shared array.
        r#"
.kernel scan (.param .u64 data, .param .u64 out) {
  .shared .f32 buf[128];
  .reg .u32 %r<10>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<4>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r0;
  cvt.u64.u32 %rd0, %r1;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  // ping-pong halves: pin = 0, pout = 64 floats
  mov.u32 %r2, 0;                // pin offset (elements)
  mov.u32 %r3, 64;               // pout offset
  add.u32 %r4, %r2, %r0;
  shl.u32 %r4, %r4, 2;
  cvt.u64.u32 %rd2, %r4;
  mov.u64 %rd3, buf;
  add.u64 %rd4, %rd3, %rd2;
  st.shared.f32 [%rd4], %f0;
  mov.u32 %r5, 1;                // offset
round:
  bar.sync 0;
  // out[tid] = in[tid] + (tid >= offset ? in[tid-offset] : 0)
  add.u32 %r4, %r2, %r0;
  shl.u32 %r4, %r4, 2;
  cvt.u64.u32 %rd2, %r4;
  add.u64 %rd4, %rd3, %rd2;
  ld.shared.f32 %f1, [%rd4];
  setp.lt.u32 %p0, %r0, %r5;
  @%p0 bra write;
  sub.u32 %r6, %r0, %r5;
  add.u32 %r6, %r2, %r6;
  shl.u32 %r6, %r6, 2;
  cvt.u64.u32 %rd5, %r6;
  add.u64 %rd6, %rd3, %rd5;
  ld.shared.f32 %f2, [%rd6];
  add.f32 %f1, %f1, %f2;
write:
  add.u32 %r7, %r3, %r0;
  shl.u32 %r7, %r7, 2;
  cvt.u64.u32 %rd7, %r7;
  add.u64 %rd8, %rd3, %rd7;
  st.shared.f32 [%rd8], %f1;
  // swap pin/pout
  mov.u32 %r8, %r2;
  mov.u32 %r2, %r3;
  mov.u32 %r3, %r8;
  shl.u32 %r5, %r5, 1;
  setp.lt.u32 %p1, %r5, %ntid.x;
  @%p1 bra round;
  bar.sync 0;
  // result lives in the `pin` half after the final swap
  add.u32 %r4, %r2, %r0;
  shl.u32 %r4, %r4, 2;
  cvt.u64.u32 %rd2, %r4;
  add.u64 %rd4, %rd3, %rd2;
  ld.shared.f32 %f3, [%rd4];
  ld.param.u64 %rd9, [out];
  add.u64 %rd9, %rd9, %rd0;
  st.global.f32 [%rd9], %f3;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let data = random_f32(&mut rng, N, -1.0, 1.0);
        let pd = dev.alloc(N * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_f32_htod(pd.ptr(), &data)?;
        let stats = dev.launch(
            "scan",
            [(N / CTA) as u32, 1, 1],
            [CTA as u32, 1, 1],
            &[ParamValue::Ptr(pd.ptr()), ParamValue::Ptr(po.ptr())],
            config,
        )?;
        let got = dev.copy_f32_dtoh(po.ptr(), N)?;
        let mut want = vec![0f32; N];
        for seg in 0..(N / CTA) {
            // Hillis-Steele addition order differs from a serial prefix
            // sum only by float association; recompute the same rounds.
            let mut cur: Vec<f32> = data[seg * CTA..(seg + 1) * CTA].to_vec();
            let mut offset = 1;
            while offset < CTA {
                let mut next = cur.clone();
                for (i, n) in next.iter_mut().enumerate() {
                    if i >= offset {
                        *n = cur[i] + cur[i - offset];
                    }
                }
                cur = next;
                offset <<= 1;
            }
            want[seg * CTA..(seg + 1) * CTA].copy_from_slice(&cur);
        }
        check_f32(self.name(), &got, &want, 1e-4)?;
        Ok(Outcome { stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        Scan.run_checked(&ExecConfig::baseline())?;
        Scan.run_checked(&ExecConfig::dynamic(4))?;
        Ok(())
    }
}
