//! Per-thread pseudo-random generation with uncorrelated data-dependent
//! branching — the paper's pathological case for dynamic warp formation
//! (MersenneTwister: 4.9× slowdown dynamic, recovered by static
//! formation).

use dpvk_core::{Device, ExecConfig, ParamValue};

use crate::common::{check_u32, random_u32, rng_for, Outcome, Workload, WorkloadError};

const N: usize = 256;
const ROUNDS: u32 = 24;

/// A tempered LCG whose update path depends on the current state bit —
/// every round is a potential divergence point and outcomes are
/// uncorrelated across threads.
#[derive(Debug)]
pub struct MersenneTwister;

impl Workload for MersenneTwister {
    fn name(&self) -> &'static str {
        "mersenne"
    }

    fn stands_for(&self) -> &'static str {
        "MersenneTwister (uncorrelated per-thread divergence)"
    }

    fn source(&self) -> String {
        r#"
.kernel mersenne (.param .u64 seeds, .param .u64 out, .param .u32 rounds) {
  .reg .u32 %r<12>;
  .reg .u64 %rd<6>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [seeds];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];    // state
  ld.param.u32 %r3, [rounds];
  mov.u32 %r4, 0;
round:
  and.b32 %r5, %r2, 1;
  setp.eq.u32 %p0, %r5, 0;
  @%p0 bra even_path;
  // odd: state = state*1664525 + 1013904223, then extra temper
  mov.u32 %r6, 1664525;
  mul.lo.u32 %r2, %r2, %r6;
  mov.u32 %r6, 1013904223;
  add.u32 %r2, %r2, %r6;
  shr.u32 %r7, %r2, 11;
  xor.b32 %r2, %r2, %r7;
  bra merged;
even_path:
  // even: xorshift path
  shl.u32 %r8, %r2, 7;
  xor.b32 %r2, %r2, %r8;
  shr.u32 %r9, %r2, 17;
  xor.b32 %r2, %r2, %r9;
  mov.u32 %r6, 2654435761;
  mul.lo.u32 %r2, %r2, %r6;
merged:
  add.u32 %r4, %r4, 1;
  setp.lt.u32 %p1, %r4, %r3;
  @%p1 bra round;
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd0;
  st.global.u32 [%rd2], %r2;
  ret;
}
"#
        .to_string()
    }

    fn run(&self, dev: &Device, config: &ExecConfig) -> Result<Outcome, WorkloadError> {
        let mut rng = rng_for(self.name());
        let seeds = random_u32(&mut rng, N, u32::MAX);
        let ps = dev.alloc(N * 4)?;
        let po = dev.alloc(N * 4)?;
        dev.copy_u32_htod(ps.ptr(), &seeds)?;
        let stats = dev.launch(
            "mersenne",
            [(N as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(ps.ptr()), ParamValue::Ptr(po.ptr()), ParamValue::U32(ROUNDS)],
            config,
        )?;
        let got = dev.copy_u32_dtoh(po.ptr(), N)?;
        let want: Vec<u32> = seeds.iter().map(|&s| reference(s, ROUNDS)).collect();
        check_u32(self.name(), &got, &want)?;
        Ok(Outcome { stats })
    }
}

fn reference(mut state: u32, rounds: u32) -> u32 {
    for _ in 0..rounds {
        if state & 1 == 1 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            state ^= state >> 11;
        } else {
            state ^= state << 7;
            state ^= state >> 17;
            state = state.wrapping_mul(2654435761);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WorkloadExt;

    #[test]
    fn validates() -> Result<(), WorkloadError> {
        MersenneTwister.run_checked(&ExecConfig::baseline())?;
        MersenneTwister.run_checked(&ExecConfig::dynamic(4))?;
        MersenneTwister.run_checked(&ExecConfig::static_tie(4))?;
        Ok(())
    }

    #[test]
    fn dynamic_formation_is_slower_than_baseline() -> Result<(), WorkloadError> {
        // The paper's MersenneTwister observation: uncorrelated divergence
        // makes dynamic warp formation lose to plain scalar execution.
        let base = MersenneTwister.run_checked(&ExecConfig::baseline().with_workers(1))?.stats;
        let dynamic = MersenneTwister.run_checked(&ExecConfig::dynamic(4).with_workers(1))?.stats;
        assert!(
            dynamic.exec.total_cycles() > base.exec.total_cycles(),
            "dynamic {} <= baseline {}",
            dynamic.exec.total_cycles(),
            base.exec.total_cycles()
        );
        Ok(())
    }
}
