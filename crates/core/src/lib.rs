//! # dpvk-core
//!
//! The primary contribution of the CGO 2012 paper "Dynamic Compilation of
//! Data-Parallel Kernels for Vector Processors" (Kerr, Diamos,
//! Yalamanchili), reproduced in Rust:
//!
//! * [`translate`](crate::translate::translate) — PTX-like kernels to
//!   canonical scalar IR, with barrier splitting, predication-to-select
//!   rewriting and entry-point/spill-slot assignment;
//! * [`specialize`](crate::vectorize::specialize) — *vectorization*
//!   (Algorithm 1) plus *yield-on-diverge* (Algorithms 2–4): replicated
//!   and promoted instructions, predicate-sum switches at conditional
//!   branches, exit handlers that spill live state and record per-thread
//!   resume points, and a scheduler trampoline that restores state on
//!   re-entry;
//! * [`TranslationCache`](crate::cache::TranslationCache) — lazy,
//!   lock-guarded specialization per `(kernel, warp size, variant)`;
//! * [`run_grid`](crate::exec::run_grid) and the execution manager —
//!   dynamic/static warp formation, barrier pools, per-thread resume
//!   bookkeeping across a pool of worker threads;
//! * [`Device`](crate::runtime::Device) — a CUDA-runtime-like host API.
//!
//! ## Quickstart
//!
//! ```
//! use dpvk_core::{Device, ExecConfig, ParamValue};
//! use dpvk_vm::MachineModel;
//!
//! let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
//! dev.register_source(
//!     r#"
//! .kernel fill (.param .u64 out, .param .f32 value) {
//!   .reg .u32 %r<3>;
//!   .reg .u64 %rd<3>;
//!   .reg .f32 %f<2>;
//! entry:
//!   mov.u32 %r1, %tid.x;
//!   mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r1;
//!   cvt.u64.u32 %rd1, %r1;
//!   shl.u64 %rd1, %rd1, 2;
//!   ld.param.u64 %rd2, [out];
//!   add.u64 %rd2, %rd2, %rd1;
//!   ld.param.f32 %f1, [value];
//!   st.global.f32 [%rd2], %f1;
//!   ret;
//! }
//! "#,
//! )?;
//! let buf = dev.malloc(64 * 4)?;
//! dev.launch(
//!     "fill",
//!     [2, 1, 1],
//!     [32, 1, 1],
//!     &[ParamValue::Ptr(buf), ParamValue::F32(7.0)],
//!     &ExecConfig::dynamic(4),
//! )?;
//! let out = dev.copy_f32_dtoh(buf, 64)?;
//! assert!(out.iter().all(|&v| v == 7.0));
//! # Ok::<(), dpvk_core::CoreError>(())
//! ```

#![warn(missing_docs)]

mod devmem;
mod error;
mod flight;

pub mod cache;
pub mod exec;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod lint;
pub mod persist;
pub mod runtime;
pub mod specialize;
pub mod sync;
pub mod translate;
pub mod vectorize;

pub use cache::{CacheStats, CompiledKernel, TranslationCache, Variant, WidthStats};
pub use devmem::MemoryStats;
pub use dpvk_vm::CancelToken;
pub use error::{CoreError, FaultContext, InvalidEnvValue};
pub use exec::{
    run_grid, run_grid_cancellable, AdaptConfig, AdaptMode, EmCostModel, Engine, ExecConfig,
    FormationPolicy, LaunchHandle, LaunchStats, UnknownAdaptModeError, UnknownEngineError,
};
pub use lint::{warp_sync_lint, LintFinding};
pub use persist::PersistConfig;
pub use runtime::{Device, DeviceBuffer, DevicePtr, ParamValue, Stream};
pub use specialize::{PolicySnapshot, PolicyTable};
pub use translate::{translate, TranslatedKernel};
pub use vectorize::{specialize, SpecializeOptions, Specialized};
