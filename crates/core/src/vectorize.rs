//! Kernel specialization: vectorization (Algorithm 1), divergence handling
//! (Algorithm 2), scheduler construction (Algorithm 3) and exit handlers
//! (Algorithm 4) from the paper.
//!
//! A [`TranslatedKernel`] is specialized for one warp width:
//!
//! * every scalar instruction is replicated once per warp lane and, where
//!   the machine supports it, the replicated bundle is *promoted* to a
//!   single vector-typed instruction — loads, stores, atomics, context
//!   reads and votes stay scalar and are packed/unpacked with
//!   `insertelement`/`extractelement`;
//! * conditional branches become `switch(sum of per-lane predicates)` —
//!   0 and warp-size jump to the uniform successors, anything else enters
//!   an *exit handler* that spills live values per thread, records
//!   per-thread resume points with a `select`, sets the warp resume status
//!   and returns to the execution manager (*yield on diverge*);
//! * barrier edges always yield with `Barrier` status;
//! * a *scheduler block* at function entry switches on the warp's entry id
//!   and dispatches to *entry handlers* that reload live values from
//!   thread-local spill slots.
//!
//! The width-1 specialization comes in two flavours: the *baseline*
//! (branches jump directly; yields only at barriers — the serialized
//! scalar execution of the paper's comparison baseline) and the
//! *cooperative* scalar used by dynamic warp formation, which yields at
//! every entry-point edge so threads can re-merge into warps
//! (`yield_at_branches`, the scalar flow of the paper's Figure 4b).

use std::collections::HashMap;

use dpvk_ir as ir;
use dpvk_ir::{
    BinOp, Block, BlockId, BlockKind, CtxField, Function, Inst, ReduceOp, ResumeStatus, STy, Term,
    Type, VReg, Value,
};

use crate::error::CoreError;
use crate::translate::TranslatedKernel;

/// Options controlling one specialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecializeOptions {
    /// Warp width of this specialization (1, 2, 4, ...).
    pub warp_size: u32,
    /// In width-1 specializations, yield at every entry-point edge so the
    /// execution manager can re-form warps (ignored for widths > 1).
    pub yield_at_branches: bool,
    /// Assume warps are formed of consecutively indexed threads of one CTA
    /// and rewrite lane-k context reads of CTA-uniform fields to lane 0
    /// (thread IDs become `lane0 + k`), enabling thread-invariant
    /// expression elimination by CSE (paper, Section 6.2).
    pub static_warp: bool,
    /// Run the standard optimization pipeline after specialization.
    pub optimize: bool,
    /// Detect warp-uniform values with a control-dependence-aware
    /// divergence analysis and compute them once per warp instead of per
    /// lane (single scalar op / single load). This is the optimization the
    /// paper plans via divergence analysis [11] and affine analysis [12]
    /// ("arbitrary loads may be replaced with vector loads ... remains for
    /// future work") — implemented here for scalar uniform loads.
    pub uniform_analysis: bool,
}

impl SpecializeOptions {
    /// Options for the dynamic-warp-formation specialization of width `w`.
    pub fn dynamic(w: u32) -> Self {
        SpecializeOptions {
            warp_size: w,
            yield_at_branches: true,
            static_warp: false,
            optimize: true,
            uniform_analysis: true,
        }
    }

    /// Options for the scalar baseline (serialized threads, yields only at
    /// barriers).
    pub fn baseline() -> Self {
        SpecializeOptions {
            warp_size: 1,
            yield_at_branches: false,
            static_warp: false,
            optimize: true,
            uniform_analysis: false,
        }
    }

    /// Options for static warp formation with thread-invariant elimination.
    pub fn static_tie(w: u32) -> Self {
        SpecializeOptions {
            warp_size: w,
            yield_at_branches: false,
            static_warp: true,
            optimize: true,
            uniform_analysis: true,
        }
    }

    /// Disable the uniform-value analysis (ablation).
    pub fn without_uniform_analysis(mut self) -> Self {
        self.uniform_analysis = false;
        self
    }
}

/// Result of one specialization.
#[derive(Debug, Clone)]
pub struct Specialized {
    /// The specialized function (entry block is the scheduler).
    pub function: Function,
    /// Static instruction count before optimization.
    pub pre_opt_instructions: usize,
    /// Static instruction count after optimization.
    pub post_opt_instructions: usize,
    /// Pipeline statistics.
    pub opt_stats: ir::opt::OptStats,
    /// Fusion-legality summary for the bytecode decoder.
    pub fusion: FusionInfo,
}

/// Static upper bounds on the superinstructions the bytecode decoder may
/// legally form from a specialized body, computed here where the final
/// (post-optimization) def-use structure is known. The decoder re-derives
/// legality per pair from the same rules; these totals let the cache
/// cross-check that it never fuses beyond what the specializer deems
/// legal, and feed the fusion-effectiveness trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionInfo {
    /// Blocks ending in a scalar `Cmp` whose result directly conditions
    /// the block's `CondBr` — candidates for compare-branch fusion.
    pub cmp_br_candidates: u64,
    /// Adjacent scalar pairs where the first (a `Bin` or `Load`) feeds
    /// the immediately following scalar `Bin` — candidates for pair
    /// fusion.
    pub pair_candidates: u64,
}

/// Scan a specialized function for statically fusible pairs.
fn fusion_info(f: &Function) -> FusionInfo {
    let mut info = FusionInfo::default();
    for block in &f.blocks {
        for pair in block.insts.windows(2) {
            let feeds =
                |second: &Inst, dst: VReg| second.uses().iter().any(|u| u.as_reg() == Some(dst));
            match (&pair[0], &pair[1]) {
                (Inst::Bin { ty, dst, .. }, Inst::Bin { ty: ty2, .. })
                    if !ty.is_vector() && !ty2.is_vector() && feeds(&pair[1], *dst) =>
                {
                    info.pair_candidates += 1;
                }
                // Loads are always scalar-typed.
                (Inst::Load { dst, .. }, Inst::Bin { ty: ty2, .. })
                    if !ty2.is_vector() && feeds(&pair[1], *dst) =>
                {
                    info.pair_candidates += 1;
                }
                _ => {}
            }
        }
        if let (Some(Inst::Cmp { ty, dst, .. }), Term::CondBr { cond, .. }) =
            (block.insts.last(), &block.term)
        {
            if !ty.is_vector() && cond.as_reg() == Some(*dst) {
                info.cmp_br_candidates += 1;
            }
        }
    }
    info
}

/// Where a scalar register's value lives in the specialized function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// Promoted to one vector register.
    Vector,
    /// Replicated into one scalar register per lane.
    PerLane,
    /// Warp-uniform: computed once into a single scalar register.
    Uniform,
}

struct Specializer<'a> {
    tk: &'a TranslatedKernel,
    opts: &'a SpecializeOptions,
    w: u32,
    out: Function,
    home: Vec<Home>,
    /// Scalar reg -> vector home register.
    vec_reg: HashMap<VReg, VReg>,
    /// (scalar reg, lane) -> per-lane register.
    lane_reg: HashMap<(VReg, u32), VReg>,
    /// Scalar reg -> single uniform register.
    uni_reg: HashMap<VReg, VReg>,
    /// Scalar block -> specialized body block.
    body_block: Vec<BlockId>,
}

impl<'a> Specializer<'a> {
    fn sty(&self, r: VReg) -> STy {
        self.tk.scalar.reg_type(r).scalar
    }

    fn vec_home(&mut self, r: VReg) -> VReg {
        if let Some(&v) = self.vec_reg.get(&r) {
            return v;
        }
        let ty = Type::vector(self.sty(r), self.w);
        let v = self.out.new_reg(ty);
        self.vec_reg.insert(r, v);
        v
    }

    fn uni_home(&mut self, r: VReg) -> VReg {
        if let Some(&v) = self.uni_reg.get(&r) {
            return v;
        }
        let v = self.out.new_reg(Type::scalar(self.sty(r)));
        self.uni_reg.insert(r, v);
        v
    }

    /// Value of an operand of a uniform (once-per-warp) instruction. The
    /// divergence analysis guarantees every register operand is uniform.
    fn uniform_value(&mut self, v: Value) -> Value {
        match v {
            Value::ImmI(_) | Value::ImmF(_) => v,
            Value::Reg(r) => {
                debug_assert_eq!(self.home[r.index()], Home::Uniform);
                Value::Reg(self.uni_home(r))
            }
        }
    }

    fn lane_home(&mut self, r: VReg, lane: u32) -> VReg {
        if let Some(&v) = self.lane_reg.get(&(r, lane)) {
            return v;
        }
        let v = self.out.new_reg(Type::scalar(self.sty(r)));
        self.lane_reg.insert((r, lane), v);
        v
    }

    fn zero_of(sty: STy) -> Value {
        if sty.is_float() {
            Value::ImmF(0.0)
        } else {
            Value::ImmI(0)
        }
    }

    /// Vector-typed value of a scalar-function operand (packing per-lane
    /// homes with an insertelement chain).
    fn vector_value(&mut self, block: BlockId, v: Value) -> Value {
        match v {
            Value::ImmI(_) | Value::ImmF(_) => v, // immediates broadcast
            Value::Reg(r) => {
                if self.home[r.index()] == Home::Vector {
                    Value::Reg(self.vec_home(r))
                } else if self.home[r.index()] == Home::Uniform {
                    let sty = self.sty(r);
                    let ty = Type::vector(sty, self.w);
                    let u = self.uni_home(r);
                    let splat = self.out.new_reg(ty);
                    self.out.block_mut(block).insts.push(Inst::Splat {
                        ty,
                        dst: splat,
                        a: Value::Reg(u),
                    });
                    Value::Reg(splat)
                } else {
                    let sty = self.sty(r);
                    let ty = Type::vector(sty, self.w);
                    let packed = self.out.new_reg(ty);
                    let mut vecv = Self::zero_of(sty);
                    for lane in 0..self.w {
                        let lr = self.lane_home(r, lane);
                        self.out.block_mut(block).insts.push(Inst::Insert {
                            ty,
                            dst: packed,
                            vec: vecv,
                            elem: Value::Reg(lr),
                            lane,
                        });
                        vecv = Value::Reg(packed);
                    }
                    Value::Reg(packed)
                }
            }
        }
    }

    /// Scalar value of operand `v` for warp member `lane` (unpacking
    /// vector homes with extractelement).
    fn lane_value(&mut self, block: BlockId, v: Value, lane: u32) -> Value {
        match v {
            Value::ImmI(_) | Value::ImmF(_) => v,
            Value::Reg(r) => {
                if self.home[r.index()] == Home::Uniform {
                    Value::Reg(self.uni_home(r))
                } else if self.home[r.index()] == Home::PerLane {
                    Value::Reg(self.lane_home(r, lane))
                } else {
                    let sty = self.sty(r);
                    let src = self.vec_home(r);
                    let t = self.out.new_reg(Type::scalar(sty));
                    self.out.block_mut(block).insts.push(Inst::Extract {
                        ty: Type::vector(sty, self.w),
                        dst: t,
                        vec: Value::Reg(src),
                        lane,
                    });
                    Value::Reg(t)
                }
            }
        }
    }

    /// Store a vector-instruction result into the scalar register's home.
    /// Returns the register the vector instruction should define.
    fn vector_dst(
        &mut self,
        block: BlockId,
        dst: VReg,
        after: impl FnOnce(&mut Self, BlockId, VReg),
    ) {
        if self.home[dst.index()] == Home::Vector {
            let v = self.vec_home(dst);
            after(self, block, v);
        } else {
            // Compute into a temp vector, then unpack into the lanes.
            let sty = self.sty(dst);
            let ty = Type::vector(sty, self.w);
            let t = self.out.new_reg(ty);
            after(self, block, t);
            for lane in 0..self.w {
                let lr = self.lane_home(dst, lane);
                self.out.block_mut(block).insts.push(Inst::Extract {
                    ty,
                    dst: lr,
                    vec: Value::Reg(t),
                    lane,
                });
            }
        }
    }

    /// Whether this instruction's destination is warp-uniform (computed
    /// once per warp).
    fn dst_is_uniform(&self, inst: &Inst) -> bool {
        inst.dst().map(|d| self.home[d.index()] == Home::Uniform).unwrap_or(false)
    }

    /// Emit a uniform (once-per-warp) clone of a scalar instruction.
    fn emit_uniform_inst(&mut self, block: BlockId, inst: &Inst) {
        match inst {
            Inst::CtxRead { field: CtxField::WarpSize, dst, .. } => {
                let d = self.uni_home(*dst);
                self.out.block_mut(block).insts.push(Inst::Mov {
                    ty: Type::scalar(STy::I32),
                    dst: d,
                    a: Value::ImmI(self.w as i64),
                });
            }
            Inst::CtxRead { field, dst, .. } => {
                let d = self.uni_home(*dst);
                self.out.block_mut(block).insts.push(Inst::CtxRead {
                    field: *field,
                    lane: 0,
                    dst: d,
                });
            }
            _ => {
                // Pre-create uniform homes for all operands (the analysis
                // guarantees they are uniform), then clone with renaming.
                for v in inst.uses() {
                    if let Some(r) = v.as_reg() {
                        self.uni_home(r);
                    }
                }
                let mut cloned = inst.clone();
                let uni = &self.uni_reg;
                cloned.map_uses(|v| {
                    if let Value::Reg(r) = v {
                        *v = Value::Reg(uni[r]);
                    }
                });
                if let Some(d) = cloned.dst() {
                    let mapped = self.uni_home(d);
                    *cloned.dst_mut().expect("dst checked above") = mapped;
                }
                self.out.block_mut(block).insts.push(cloned);
            }
        }
    }

    /// Vectorize one scalar instruction into `block` (Algorithm 1).
    fn vectorize_inst(&mut self, block: BlockId, inst: &Inst) {
        // Warp-uniform results are computed once (divergence analysis).
        if self.dst_is_uniform(inst) {
            self.emit_uniform_inst(block, inst);
            return;
        }
        // Fully-uniform stores collapse to a single store.
        if let Inst::Store { addr, value, .. } = inst {
            let is_uni = |v: &Value| match v {
                Value::Reg(r) => self.home[r.index()] == Home::Uniform,
                _ => true,
            };
            if is_uni(addr) && is_uni(value) {
                for v in inst.uses() {
                    if let Some(r) = v.as_reg() {
                        self.uni_home(r);
                    }
                }
                let mut cloned = inst.clone();
                let uni = &self.uni_reg;
                cloned.map_uses(|v| {
                    if let Value::Reg(r) = v {
                        *v = Value::Reg(uni[r]);
                    }
                });
                self.out.block_mut(block).insts.push(cloned);
                return;
            }
        }
        let w = self.w;
        match inst {
            // ---- Promotable instructions: one vector op. ----
            Inst::Bin { op, ty, signed, dst, a, b } => {
                let vty = Type::vector(ty.scalar, w);
                let av = self.vector_value(block, *a);
                let bv = self.vector_value(block, *b);
                let (op, signed) = (*op, *signed);
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Bin {
                        op,
                        ty: vty,
                        signed,
                        dst: d,
                        a: av,
                        b: bv,
                    });
                });
            }
            Inst::Un { op, ty, dst, a } => {
                let vty = Type::vector(ty.scalar, w);
                let av = self.vector_value(block, *a);
                let op = *op;
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Un { op, ty: vty, dst: d, a: av });
                });
            }
            Inst::Fma { ty, dst, a, b, c } => {
                let vty = Type::vector(ty.scalar, w);
                let av = self.vector_value(block, *a);
                let bv = self.vector_value(block, *b);
                let cv = self.vector_value(block, *c);
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Fma {
                        ty: vty,
                        dst: d,
                        a: av,
                        b: bv,
                        c: cv,
                    });
                });
            }
            Inst::Cmp { pred, ty, signed, dst, a, b } => {
                let vty = Type::vector(ty.scalar, w);
                let av = self.vector_value(block, *a);
                let bv = self.vector_value(block, *b);
                let (pred, signed) = (*pred, *signed);
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Cmp {
                        pred,
                        ty: vty,
                        signed,
                        dst: d,
                        a: av,
                        b: bv,
                    });
                });
            }
            Inst::Select { ty, dst, cond, a, b } => {
                let vty = Type::vector(ty.scalar, w);
                let cv = self.vector_value(block, *cond);
                let av = self.vector_value(block, *a);
                let bv = self.vector_value(block, *b);
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Select {
                        ty: vty,
                        dst: d,
                        cond: cv,
                        a: av,
                        b: bv,
                    });
                });
            }
            Inst::Cvt { to, from, signed, dst, a, .. } => {
                let av = self.vector_value(block, *a);
                let (to, from, signed) = (*to, *from, *signed);
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Cvt {
                        to,
                        from,
                        signed,
                        width: w,
                        dst: d,
                        a: av,
                    });
                });
            }
            Inst::Mov { ty, dst, a } => {
                let vty = Type::vector(ty.scalar, w);
                let av = self.vector_value(block, *a);
                self.vector_dst(block, *dst, |s, blk, d| {
                    s.out.block_mut(blk).insts.push(Inst::Mov { ty: vty, dst: d, a: av });
                });
            }
            // ---- Replicated instructions: one scalar op per lane. ----
            Inst::Load { ty, space, dst, addr } => {
                for lane in 0..w {
                    let a = self.lane_value(block, *addr, lane);
                    let d = self.lane_home(*dst, lane);
                    self.out.block_mut(block).insts.push(Inst::Load {
                        ty: *ty,
                        space: *space,
                        dst: d,
                        addr: a,
                    });
                }
            }
            Inst::Store { ty, space, addr, value } => {
                for lane in 0..w {
                    let a = self.lane_value(block, *addr, lane);
                    let v = self.lane_value(block, *value, lane);
                    self.out.block_mut(block).insts.push(Inst::Store {
                        ty: *ty,
                        space: *space,
                        addr: a,
                        value: v,
                    });
                }
            }
            Inst::Atom { ty, space, op, signed, dst, addr, a, b } => {
                for lane in 0..w {
                    let addr_v = self.lane_value(block, *addr, lane);
                    let av = self.lane_value(block, *a, lane);
                    let bv = b.map(|b| self.lane_value(block, b, lane));
                    let d = self.lane_home(*dst, lane);
                    self.out.block_mut(block).insts.push(Inst::Atom {
                        ty: *ty,
                        space: *space,
                        op: *op,
                        signed: *signed,
                        dst: d,
                        addr: addr_v,
                        a: av,
                        b: bv,
                    });
                }
            }
            Inst::CtxRead { field, dst, .. } => {
                self.vectorize_ctx_read(block, *field, *dst);
            }
            Inst::Vote { op, dst, a } => {
                // Pack the per-lane predicates, reduce warp-wide, broadcast.
                let packed = self.vector_value(block, *a);
                let i1v = Type::vector(STy::I1, w);
                let s = self.out.new_reg(Type::scalar(STy::I1));
                self.out.block_mut(block).insts.push(Inst::Reduce {
                    op: *op,
                    ty: i1v,
                    dst: s,
                    vec: packed,
                });
                for lane in 0..w {
                    let d = self.lane_home(*dst, lane);
                    self.out.block_mut(block).insts.push(Inst::Mov {
                        ty: Type::scalar(STy::I1),
                        dst: d,
                        a: Value::Reg(s),
                    });
                }
            }
            other => {
                unreachable!("instruction not produced by the translator: {other:?}")
            }
        }
    }

    fn vectorize_ctx_read(&mut self, block: BlockId, field: CtxField, dst: VReg) {
        let w = self.w;
        for lane in 0..w {
            let d = self.lane_home(dst, lane);
            match field {
                CtxField::LaneId => {
                    self.out.block_mut(block).insts.push(Inst::Mov {
                        ty: Type::scalar(STy::I32),
                        dst: d,
                        a: Value::ImmI(lane as i64),
                    });
                }
                CtxField::WarpSize => {
                    self.out.block_mut(block).insts.push(Inst::Mov {
                        ty: Type::scalar(STy::I32),
                        dst: d,
                        a: Value::ImmI(w as i64),
                    });
                }
                CtxField::Tid(0) if self.opts.static_warp && lane > 0 => {
                    // Consecutive threads: tid.x of lane k is lane0 + k.
                    let base = self.out.new_reg(Type::scalar(STy::I32));
                    self.out.block_mut(block).insts.push(Inst::CtxRead {
                        field: CtxField::Tid(0),
                        lane: 0,
                        dst: base,
                    });
                    self.out.block_mut(block).insts.push(Inst::Bin {
                        op: BinOp::Add,
                        ty: Type::scalar(STy::I32),
                        signed: false,
                        dst: d,
                        a: Value::Reg(base),
                        b: Value::ImmI(lane as i64),
                    });
                }
                CtxField::Tid(_) | CtxField::Ntid(_) | CtxField::Ctaid(_) | CtxField::Nctaid(_)
                    if self.opts.static_warp && lane > 0 && !matches!(field, CtxField::Tid(0)) =>
                {
                    // CTA-uniform fields: read lane 0's context so CSE can
                    // merge the replicas (thread-invariant elimination).
                    self.out.block_mut(block).insts.push(Inst::CtxRead { field, lane: 0, dst: d });
                }
                _ => {
                    self.out.block_mut(block).insts.push(Inst::CtxRead { field, lane, dst: d });
                }
            }
        }
    }

    /// Emit spill code for `regs` (all lanes) into `block` (Algorithm 4's
    /// "store live state").
    fn emit_spills(&mut self, block: BlockId, regs: &[VReg]) {
        for lane in 0..self.w {
            let base = self.out.new_reg(Type::scalar(STy::I64));
            self.out.block_mut(block).insts.push(Inst::CtxRead {
                field: CtxField::LocalBase,
                lane,
                dst: base,
            });
            for &r in regs {
                let slot = self.tk.spill_slots[&r];
                let addr = self.out.new_reg(Type::scalar(STy::I64));
                self.out.block_mut(block).insts.push(Inst::Bin {
                    op: BinOp::Add,
                    ty: Type::scalar(STy::I64),
                    signed: false,
                    dst: addr,
                    a: Value::Reg(base),
                    b: Value::ImmI(slot as i64),
                });
                let sty = self.sty(r);
                let v = self.lane_value(block, Value::Reg(r), lane);
                self.out.block_mut(block).insts.push(Inst::Store {
                    ty: sty,
                    space: ir::Space::Local,
                    addr: Value::Reg(addr),
                    value: v,
                });
            }
        }
    }

    /// Emit restore code for `regs` (all lanes) into `block` (Algorithm 3's
    /// "load live-in values").
    fn emit_restores(&mut self, block: BlockId, regs: &[VReg]) {
        for lane in 0..self.w {
            let base = self.out.new_reg(Type::scalar(STy::I64));
            self.out.block_mut(block).insts.push(Inst::CtxRead {
                field: CtxField::LocalBase,
                lane,
                dst: base,
            });
            for &r in regs {
                let slot = self.tk.spill_slots[&r];
                let addr = self.out.new_reg(Type::scalar(STy::I64));
                self.out.block_mut(block).insts.push(Inst::Bin {
                    op: BinOp::Add,
                    ty: Type::scalar(STy::I64),
                    signed: false,
                    dst: addr,
                    a: Value::Reg(base),
                    b: Value::ImmI(slot as i64),
                });
                let sty = self.sty(r);
                if self.w > 1 && self.home[r.index()] == Home::Uniform {
                    // All lanes spilled the same value; restore once.
                    if lane == 0 {
                        let d = self.uni_home(r);
                        self.out.block_mut(block).insts.push(Inst::Load {
                            ty: sty,
                            space: ir::Space::Local,
                            dst: d,
                            addr: Value::Reg(addr),
                        });
                    }
                } else if self.w > 1 && self.home[r.index()] == Home::Vector {
                    let tmp = self.out.new_reg(Type::scalar(sty));
                    self.out.block_mut(block).insts.push(Inst::Load {
                        ty: sty,
                        space: ir::Space::Local,
                        dst: tmp,
                        addr: Value::Reg(addr),
                    });
                    let vr = self.vec_home(r);
                    let ty = Type::vector(sty, self.w);
                    let base_val = if lane == 0 { Self::zero_of(sty) } else { Value::Reg(vr) };
                    self.out.block_mut(block).insts.push(Inst::Insert {
                        ty,
                        dst: vr,
                        vec: base_val,
                        elem: Value::Reg(tmp),
                        lane,
                    });
                } else {
                    let d = self.lane_home(r, lane);
                    self.out.block_mut(block).insts.push(Inst::Load {
                        ty: sty,
                        space: ir::Space::Local,
                        dst: d,
                        addr: Value::Reg(addr),
                    });
                }
            }
        }
    }

    /// Build a yield block: spill `spill`, set per-lane resume points from
    /// `resume` (a closure producing the per-lane entry-id value), set the
    /// status and return. Returns the new block's id.
    fn build_exit_handler(
        &mut self,
        label: String,
        spill: &[VReg],
        status: ResumeStatus,
        resume: impl FnOnce(&mut Self, BlockId) -> Vec<Value>,
    ) -> BlockId {
        let mut b = Block::new(label);
        b.kind = BlockKind::ExitHandler;
        b.term = Term::Ret;
        let id = self.out.add_block(b);
        self.emit_spills(id, spill);
        let ids = resume(self, id);
        debug_assert_eq!(ids.len(), self.w as usize);
        for (lane, v) in ids.into_iter().enumerate() {
            self.out.block_mut(id).insts.push(Inst::SetResumePoint { lane: lane as u32, value: v });
        }
        self.out.block_mut(id).insts.push(Inst::SetResumeStatus { status });
        id
    }

    /// Sorted union of the live-in sets of two blocks.
    fn union_live_in(&self, a: BlockId, b: BlockId) -> Vec<VReg> {
        let mut v: Vec<VReg> = self.tk.live_in[a.index()]
            .iter()
            .chain(self.tk.live_in[b.index()].iter())
            .copied()
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Control-dependence-aware divergence analysis on the scalar function.
///
/// Returns, per register, whether its value is provably identical across
/// all threads of a CTA at every program point. A register is uniform when
/// *every* definition (a) is a promotable op, a load, or a context read of
/// a CTA-uniform field, (b) has only uniform operands, and (c) sits in a
/// *uniformly reached* block — one that no divergent branch decision can
/// steer threads around. The block condition is what makes the analysis
/// sound under warp re-formation: threads that executed different paths
/// may hold different values even when each definition reads uniform
/// inputs.
fn compute_uniform(scalar: &Function) -> Vec<bool> {
    let n = scalar.regs.len();
    let mut uni = vec![true; n];
    let nb = scalar.blocks.len();
    let mut block_uniform = vec![true; nb];
    loop {
        let mut changed = false;
        // Demote blocks reached through divergent branches.
        for (i, b) in scalar.blocks.iter().enumerate() {
            let term_uniform = match &b.term {
                Term::CondBr { cond: Value::Reg(r), .. } => uni[r.index()],
                _ => true,
            };
            for succ in b.term.successors() {
                if block_uniform[succ.index()] && (!block_uniform[i] || !term_uniform) {
                    block_uniform[succ.index()] = false;
                    changed = true;
                }
            }
        }
        // Demote registers with non-uniform definitions.
        for (bi, b) in scalar.blocks.iter().enumerate() {
            for inst in &b.insts {
                let Some(d) = inst.dst() else { continue };
                if !uni[d.index()] {
                    continue;
                }
                let operands_uniform = inst.uses().iter().all(|v| match v {
                    Value::Reg(r) => uni[r.index()],
                    _ => true,
                });
                let def_uniform = block_uniform[bi]
                    && operands_uniform
                    && match inst {
                        Inst::Bin { .. }
                        | Inst::Un { .. }
                        | Inst::Fma { .. }
                        | Inst::Cmp { .. }
                        | Inst::Select { .. }
                        | Inst::Cvt { .. }
                        | Inst::Mov { .. }
                        | Inst::Load { .. } => true,
                        Inst::CtxRead { field, .. } => matches!(
                            field,
                            CtxField::Ntid(_)
                                | CtxField::Ctaid(_)
                                | CtxField::Nctaid(_)
                                | CtxField::WarpSize
                        ),
                        _ => false,
                    };
                if !def_uniform {
                    uni[d.index()] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    uni
}

/// Specialize `tk` for the given options (the paper's Algorithms 1–4).
///
/// # Errors
///
/// Returns [`CoreError::Verify`] if the produced function fails IR
/// verification (an internal invariant violation).
pub fn specialize(
    tk: &TranslatedKernel,
    opts: &SpecializeOptions,
) -> Result<Specialized, CoreError> {
    let w = opts.warp_size;
    assert!(w >= 1, "warp size must be at least 1");
    let scalar = &tk.scalar;

    // Compute each scalar register's home. A register is promoted to a
    // vector only when every definition is promotable AND at least one use
    // sits in a promotable instruction (or a branch condition) — values
    // that exist solely to feed scalar memory operations (address chains)
    // replicate per lane, avoiding a pack/unpack detour, as the paper's
    // memoization also does.
    let promotable = |inst: &Inst| {
        matches!(
            inst,
            Inst::Bin { .. }
                | Inst::Un { .. }
                | Inst::Fma { .. }
                | Inst::Cmp { .. }
                | Inst::Select { .. }
                | Inst::Cvt { .. }
                | Inst::Mov { .. }
        )
    };
    let mut home = vec![Home::PerLane; scalar.regs.len()];
    let mut def_ok = vec![true; scalar.regs.len()];
    let mut use_in_vec = vec![false; scalar.regs.len()];
    for b in &scalar.blocks {
        for inst in &b.insts {
            let p = promotable(inst);
            if let Some(d) = inst.dst() {
                if !p {
                    def_ok[d.index()] = false;
                }
            }
            if p {
                for v in inst.uses() {
                    if let Some(r) = v.as_reg() {
                        use_in_vec[r.index()] = true;
                    }
                }
            }
        }
        // Divergence handling reduces branch conditions as vectors.
        for v in b.term.uses() {
            if let Some(r) = v.as_reg() {
                use_in_vec[r.index()] = true;
            }
        }
    }
    for i in 0..home.len() {
        if def_ok[i] && use_in_vec[i] {
            home[i] = Home::Vector;
        }
    }
    if opts.uniform_analysis && w > 1 {
        for (i, &u) in compute_uniform(scalar).iter().enumerate() {
            if u {
                home[i] = Home::Uniform;
            }
        }
    }
    // Width-1 functions keep everything per-lane.
    if w == 1 {
        home.iter_mut().for_each(|h| *h = Home::PerLane);
    }

    let variant = match (w, opts.yield_at_branches, opts.static_warp) {
        (1, false, _) => "baseline".to_string(),
        (1, true, _) => "scalar".to_string(),
        (_, _, true) => format!("static{w}"),
        (_, _, false) => format!("vec{w}"),
    };
    let mut out = Function::new(format!("{}::{}", tk.name, variant), w);

    let mut sp = Specializer {
        tk,
        opts,
        w,
        out: Function::new("placeholder", w),
        home,
        vec_reg: HashMap::new(),
        lane_reg: HashMap::new(),
        uni_reg: HashMap::new(),
        body_block: Vec::new(),
    };
    std::mem::swap(&mut sp.out, &mut out);

    // Block layout: scheduler, entry handlers, body blocks, exit handlers.
    let mut sched = Block::new("$scheduler");
    sched.kind = BlockKind::Scheduler;
    sched.term = Term::Ret; // replaced below
    let sched_id = sp.out.add_block(sched);

    let mut entry_handlers = Vec::with_capacity(tk.entry_points.len());
    for (i, _) in tk.entry_points.iter().enumerate() {
        let mut b = Block::new(format!("$entry{i}"));
        b.kind = BlockKind::EntryHandler;
        b.term = Term::Ret; // replaced below
        entry_handlers.push(sp.out.add_block(b));
    }

    for (i, b) in scalar.blocks.iter().enumerate() {
        let _ = i;
        let nb = Block::new(format!("{}$v", b.label));
        sp.body_block.push(sp.out.add_block(nb));
    }

    // Scheduler: switch on the warp's entry id (Algorithm 3).
    {
        let id_reg = sp.out.new_reg(Type::scalar(STy::I32));
        sp.out.block_mut(sched_id).insts.push(Inst::CtxRead {
            field: CtxField::EntryId,
            lane: 0,
            dst: id_reg,
        });
        let cases: Vec<(i64, BlockId)> =
            entry_handlers.iter().enumerate().skip(1).map(|(i, &h)| (i as i64, h)).collect();
        sp.out.block_mut(sched_id).term =
            Term::Switch { value: Value::Reg(id_reg), cases, default: entry_handlers[0] };
    }

    // Entry handlers: restore live-ins, jump into the body.
    for (i, &scalar_block) in tk.entry_points.iter().enumerate() {
        let handler = entry_handlers[i];
        let regs: Vec<VReg> = tk.live_in[scalar_block.index()].clone();
        sp.emit_restores(handler, &regs);
        let target = sp.body_block[scalar_block.index()];
        sp.out.block_mut(handler).term = Term::Br(target);
    }

    // Body blocks.
    for (i, sb) in scalar.blocks.iter().enumerate() {
        let body = sp.body_block[i];
        if w == 1 {
            // Clone with register renaming (lane 0 homes).
            let insts: Vec<Inst> = sb.insts.clone();
            for inst in insts {
                clone_scalar_inst(&mut sp, body, &inst);
            }
        } else {
            let insts: Vec<Inst> = sb.insts.clone();
            for inst in &insts {
                sp.vectorize_inst(body, inst);
            }
        }
        // Terminator.
        let this = BlockId(i as u32);
        match &sb.term {
            Term::Br(t) => {
                if tk.barrier_edges.get(&this) == Some(t) {
                    // Barrier yield.
                    let spill: Vec<VReg> = tk.live_in[t.index()].clone();
                    let id = tk.entry_id(*t);
                    let exit = sp.build_exit_handler(
                        format!("{}$bar_exit", sb.label),
                        &spill,
                        ResumeStatus::Barrier,
                        |s, _| vec![Value::ImmI(id); s.w as usize],
                    );
                    sp.out.block_mut(body).term = Term::Br(exit);
                } else if w == 1
                    && opts.yield_at_branches
                    && tk.entry_id_of.contains_key(t)
                    && *t != this
                {
                    // Cooperative scalar: yield at entry-point edges so the
                    // execution manager can re-merge threads (Figure 4b).
                    let spill: Vec<VReg> = tk.live_in[t.index()].clone();
                    let id = tk.entry_id(*t);
                    let exit = sp.build_exit_handler(
                        format!("{}$merge_exit", sb.label),
                        &spill,
                        ResumeStatus::Branch,
                        |_, _| vec![Value::ImmI(id)],
                    );
                    sp.out.block_mut(body).term = Term::Br(exit);
                } else {
                    sp.out.block_mut(body).term = Term::Br(sp.body_block[t.index()]);
                }
            }
            Term::CondBr { cond, taken, fall } => {
                let taken_id = tk.entry_id(*taken);
                let fall_id = tk.entry_id(*fall);
                if w == 1 {
                    if opts.yield_at_branches {
                        // Yield unconditionally; the resume point selects
                        // the successor.
                        let spill = sp.union_live_in(*taken, *fall);
                        let cond = *cond;
                        let exit = sp.build_exit_handler(
                            format!("{}$br_exit", sb.label),
                            &spill,
                            ResumeStatus::Branch,
                            |s, blk| {
                                let c = s.lane_value(blk, cond, 0);
                                let idr = s.out.new_reg(Type::scalar(STy::I32));
                                s.out.block_mut(blk).insts.push(Inst::Select {
                                    ty: Type::scalar(STy::I32),
                                    dst: idr,
                                    cond: c,
                                    a: Value::ImmI(taken_id),
                                    b: Value::ImmI(fall_id),
                                });
                                vec![Value::Reg(idr)]
                            },
                        );
                        sp.out.block_mut(body).term = Term::Br(exit);
                    } else {
                        // Baseline: direct conditional branch.
                        let c = sp.lane_value(body, *cond, 0);
                        sp.out.block_mut(body).term = Term::CondBr {
                            cond: c,
                            taken: sp.body_block[taken.index()],
                            fall: sp.body_block[fall.index()],
                        };
                    }
                } else if matches!(cond, Value::Reg(r) if sp.home[r.index()] == Home::Uniform) {
                    // Provably convergent branch ("some kernels may be
                    // statically proven to be entirely convergent"): no
                    // divergence machinery needed.
                    let c = sp.uniform_value(*cond);
                    sp.out.block_mut(body).term = Term::CondBr {
                        cond: c,
                        taken: sp.body_block[taken.index()],
                        fall: sp.body_block[fall.index()],
                    };
                } else {
                    // Algorithm 2: switch on the sum of the predicates.
                    let cv = sp.vector_value(body, *cond);
                    let sum = sp.out.new_reg(Type::scalar(STy::I32));
                    sp.out.block_mut(body).insts.push(Inst::Reduce {
                        op: ReduceOp::Add,
                        ty: Type::vector(STy::I1, w),
                        dst: sum,
                        vec: cv,
                    });
                    let spill = sp.union_live_in(*taken, *fall);
                    let cond = *cond;
                    let exit = sp.build_exit_handler(
                        format!("{}$div_exit", sb.label),
                        &spill,
                        ResumeStatus::Branch,
                        |s, blk| {
                            (0..s.w)
                                .map(|lane| {
                                    let c = s.lane_value(blk, cond, lane);
                                    let idr = s.out.new_reg(Type::scalar(STy::I32));
                                    s.out.block_mut(blk).insts.push(Inst::Select {
                                        ty: Type::scalar(STy::I32),
                                        dst: idr,
                                        cond: c,
                                        a: Value::ImmI(taken_id),
                                        b: Value::ImmI(fall_id),
                                    });
                                    Value::Reg(idr)
                                })
                                .collect()
                        },
                    );
                    sp.out.block_mut(body).term = Term::Switch {
                        value: Value::Reg(sum),
                        cases: vec![
                            (0, sp.body_block[fall.index()]),
                            (w as i64, sp.body_block[taken.index()]),
                        ],
                        default: exit,
                    };
                }
            }
            Term::Ret => {
                sp.out.block_mut(body).term = Term::Ret;
            }
            Term::Switch { .. } => {
                unreachable!("the translator does not produce switches")
            }
        }
    }

    let mut out = sp.out;
    let pre_opt_instructions = out.instruction_count();
    ir::verify(&out)?;
    let opt_stats = if opts.optimize {
        let stats = ir::opt::standard_pipeline(&mut out);
        ir::verify(&out)?;
        stats
    } else {
        ir::opt::OptStats::default()
    };
    let post_opt_instructions = out.instruction_count();

    if dpvk_trace::enabled() {
        // Vectorizer-effectiveness accounting: classify each surviving
        // instruction as vector-promoted, per-lane replicated, or
        // pack/unpack glue between the two worlds.
        let mut replicated = 0u64;
        let mut promoted = 0u64;
        let mut pack_glue = 0u64;
        let mut unpack_glue = 0u64;
        for b in &out.blocks {
            for inst in &b.insts {
                match inst {
                    Inst::Insert { .. } | Inst::Splat { .. } => pack_glue += 1,
                    Inst::Extract { .. } | Inst::Reduce { .. } => unpack_glue += 1,
                    _ => match inst.dst() {
                        Some(d) if out.regs[d.index()].is_vector() => promoted += 1,
                        _ => replicated += 1,
                    },
                }
            }
        }
        let label = if opts.static_warp {
            "static_tie"
        } else if w == 1 && !opts.yield_at_branches {
            "baseline"
        } else {
            "dynamic"
        };
        dpvk_trace::record_specialization(dpvk_trace::SpecRecord {
            kernel: tk.name.clone(),
            warp_size: w,
            variant: label,
            pre_opt_instructions: pre_opt_instructions as u64,
            post_opt_instructions: post_opt_instructions as u64,
            replicated,
            promoted,
            pack_glue,
            unpack_glue,
            dce_removed: opt_stats.dce_removed as u64,
        });
    }

    let fusion = fusion_info(&out);
    Ok(Specialized {
        function: out,
        pre_opt_instructions,
        post_opt_instructions,
        opt_stats,
        fusion,
    })
}

/// Width-1 clone of a scalar instruction with register renaming.
fn clone_scalar_inst(sp: &mut Specializer<'_>, block: BlockId, inst: &Inst) {
    // Rewrite LaneId/WarpSize reads to constants; everything else is a
    // rename to the lane-0 home registers.
    match inst {
        Inst::CtxRead { field: CtxField::LaneId, dst, .. } => {
            let d = sp.lane_home(*dst, 0);
            sp.out.block_mut(block).insts.push(Inst::Mov {
                ty: Type::scalar(STy::I32),
                dst: d,
                a: Value::ImmI(0),
            });
            return;
        }
        Inst::CtxRead { field: CtxField::WarpSize, dst, .. } => {
            let d = sp.lane_home(*dst, 0);
            sp.out.block_mut(block).insts.push(Inst::Mov {
                ty: Type::scalar(STy::I32),
                dst: d,
                a: Value::ImmI(1),
            });
            return;
        }
        _ => {}
    }
    let mut cloned = inst.clone();
    cloned.map_uses(|v| {
        if let Value::Reg(r) = v {
            *v = Value::Reg(sp.lane_home(*r, 0));
        }
    });
    if let Some(d) = cloned.dst_mut() {
        *d = sp.lane_home(*d, 0);
    }
    sp.out.block_mut(block).insts.push(cloned);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use dpvk_ptx::parse_kernel;

    const DIVERGE: &str = r#"
.kernel diverge (.param .u64 out) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  and.u32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra even;
  mul.lo.u32 %r3, %r1, 3;
  bra join;
even:
  mul.lo.u32 %r3, %r1, 2;
join:
  cvt.u64.u32 %rd1, %r1;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd1;
  st.global.u32 [%rd2], %r3;
  ret;
}
"#;

    fn translated() -> TranslatedKernel {
        translate(&parse_kernel(DIVERGE).unwrap()).unwrap()
    }

    #[test]
    fn all_specializations_verify() {
        let tk = translated();
        for opts in [
            SpecializeOptions::baseline(),
            SpecializeOptions::dynamic(1),
            SpecializeOptions::dynamic(2),
            SpecializeOptions::dynamic(4),
            SpecializeOptions::static_tie(2),
            SpecializeOptions::static_tie(4),
        ] {
            let s = specialize(&tk, &opts).unwrap();
            ir::verify(&s.function).unwrap();
            assert_eq!(s.function.warp_size, opts.warp_size);
        }
    }

    #[test]
    fn scheduler_is_block_zero_with_switch() {
        let tk = translated();
        let s = specialize(&tk, &SpecializeOptions::dynamic(4)).unwrap();
        let b0 = &s.function.blocks[0];
        assert_eq!(b0.kind, BlockKind::Scheduler);
        assert!(matches!(b0.term, Term::Switch { .. }));
    }

    #[test]
    fn divergent_branch_becomes_predicate_sum_switch() {
        let tk = translated();
        let s = specialize(
            &tk,
            &SpecializeOptions { optimize: false, ..SpecializeOptions::dynamic(4) },
        )
        .unwrap();
        // Find a switch with cases 0 and 4 whose default is an exit handler.
        let found = s.function.blocks.iter().any(|b| match &b.term {
            Term::Switch { cases, default, .. } => {
                cases.iter().any(|(v, _)| *v == 0)
                    && cases.iter().any(|(v, _)| *v == 4)
                    && s.function.blocks[default.index()].kind == BlockKind::ExitHandler
            }
            _ => false,
        });
        assert!(found, "{}", ir::print_function(&s.function));
    }

    #[test]
    fn vector_instructions_are_promoted() {
        let tk = translated();
        let s = specialize(
            &tk,
            &SpecializeOptions { optimize: false, ..SpecializeOptions::dynamic(4) },
        )
        .unwrap();
        let has_vec_mul = s
            .function
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Mul, ty, .. } if ty.width == 4));
        assert!(has_vec_mul, "{}", ir::print_function(&s.function));
        // Loads stay scalar.
        let vector_loads = s
            .function
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert!(vector_loads > 0);
    }

    #[test]
    fn exit_handlers_spill_and_select_resume_points() {
        let tk = translated();
        let s = specialize(
            &tk,
            &SpecializeOptions { optimize: false, ..SpecializeOptions::dynamic(2) },
        )
        .unwrap();
        let handler = s
            .function
            .blocks
            .iter()
            .find(|b| b.kind == BlockKind::ExitHandler && b.label.contains("div_exit"))
            .expect("divergent exit handler exists");
        let stores = handler
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Store { space: ir::Space::Local, .. }))
            .count();
        let selects = handler.insts.iter().filter(|i| matches!(i, Inst::Select { .. })).count();
        let resume_points =
            handler.insts.iter().filter(|i| matches!(i, Inst::SetResumePoint { .. })).count();
        assert!(stores > 0);
        assert_eq!(selects, 2);
        assert_eq!(resume_points, 2);
        assert!(handler
            .insts
            .iter()
            .any(|i| matches!(i, Inst::SetResumeStatus { status: ResumeStatus::Branch })));
    }

    #[test]
    fn baseline_has_direct_branches_and_no_branch_yields() {
        let tk = translated();
        let s = specialize(&tk, &SpecializeOptions::baseline()).unwrap();
        let has_condbr = s.function.blocks.iter().any(|b| matches!(b.term, Term::CondBr { .. }));
        assert!(has_condbr);
        let branch_exits = s
            .function
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::ExitHandler)
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::SetResumeStatus { status: ResumeStatus::Branch }))
            .count();
        assert_eq!(branch_exits, 0);
    }

    #[test]
    fn cooperative_scalar_yields_at_branches() {
        let tk = translated();
        let s = specialize(&tk, &SpecializeOptions::dynamic(1)).unwrap();
        let branch_exits = s
            .function
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::ExitHandler)
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::SetResumeStatus { status: ResumeStatus::Branch }))
            .count();
        assert!(branch_exits >= 1);
    }

    #[test]
    fn static_tie_reduces_instruction_count() {
        let tk = translated();
        let dynamic = specialize(&tk, &SpecializeOptions::dynamic(4)).unwrap();
        let tie = specialize(&tk, &SpecializeOptions::static_tie(4)).unwrap();
        // TIE merges the replicated CTA-uniform context reads, so the
        // optimized static function is smaller.
        assert!(
            tie.post_opt_instructions <= dynamic.post_opt_instructions,
            "tie {} vs dynamic {}",
            tie.post_opt_instructions,
            dynamic.post_opt_instructions
        );
    }

    #[test]
    fn barrier_kernels_yield_with_barrier_status() {
        let src = r#"
.kernel b (.param .u64 p) {
  .reg .u32 %r<4>;
entry:
  mov.u32 %r1, %tid.x;
  bar.sync 0;
  add.u32 %r1, %r1, 1;
  ret;
}
"#;
        let tk = translate(&parse_kernel(src).unwrap()).unwrap();
        for w in [1u32, 2, 4] {
            let s = specialize(&tk, &SpecializeOptions::dynamic(w)).unwrap();
            let has_barrier_yield = s
                .function
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i, Inst::SetResumeStatus { status: ResumeStatus::Barrier }));
            assert!(has_barrier_yield, "w={w}");
        }
    }
}

#[cfg(test)]
mod uniform_tests {
    use super::*;
    use crate::translate::translate;
    use dpvk_ptx::parse_kernel;

    /// A cp-style kernel: uniform loop over warp-invariant data plus a
    /// per-thread store.
    const UNIFORM_LOOP: &str = r#"
.kernel uloop (.param .u64 table, .param .u64 out, .param .u32 n) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mov.f32 %f0, 0.0;
  ld.param.u64 %rd0, [table];
  ld.param.u32 %r1, [n];
  mov.u32 %r2, 0;
loop:
  ld.global.f32 %f1, [%rd0];
  add.f32 %f0, %f0, %f1;
  add.u64 %rd0, %rd0, 4;
  add.u32 %r2, %r2, 1;
  setp.lt.u32 %p0, %r2, %r1;
  @%p0 bra loop;
  shl.u32 %r3, %r0, 2;
  cvt.u64.u32 %rd1, %r3;
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd1;
  st.global.f32 [%rd2], %f0;
  ret;
}
"#;

    #[test]
    fn uniform_loads_issue_once_per_warp() {
        let tk = translate(&parse_kernel(UNIFORM_LOOP).unwrap()).unwrap();
        let on = specialize(&tk, &SpecializeOptions::dynamic(4)).unwrap();
        let off =
            specialize(&tk, &SpecializeOptions::dynamic(4).without_uniform_analysis()).unwrap();
        let count_loop_loads = |f: &Function| -> usize {
            f.blocks
                .iter()
                .filter(|b| b.label.starts_with("loop"))
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::Load { space: ir::Space::Global, .. }))
                .count()
        };
        // With the analysis the table load issues once; without it, once
        // per lane.
        assert_eq!(count_loop_loads(&on.function), 1, "{}", ir::print_function(&on.function));
        assert_eq!(count_loop_loads(&off.function), 4);
    }

    #[test]
    fn uniform_loop_branch_needs_no_divergence_machinery() {
        let tk = translate(&parse_kernel(UNIFORM_LOOP).unwrap()).unwrap();
        let on = specialize(&tk, &SpecializeOptions::dynamic(4)).unwrap();
        // The loop back-edge is a direct CondBr, not a predicate-sum
        // switch.
        let body_switches = on
            .function
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::Body)
            .filter(|b| matches!(b.term, Term::Switch { .. }))
            .count();
        assert_eq!(body_switches, 0, "{}", ir::print_function(&on.function));
        let has_condbr = on.function.blocks.iter().any(|b| matches!(b.term, Term::CondBr { .. }));
        assert!(has_condbr);
    }

    #[test]
    fn control_dependence_demotes_uniform_values() {
        // `x` is assigned constants on both arms of a tid-dependent
        // branch: data-flow-only analysis would call it uniform, but the
        // value differs per thread. The specialized kernel must keep it
        // per-thread (validated end-to-end by running it).
        let src = r#"
.kernel cdep (.param .u64 out) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  and.b32 %r1, %r0, 1;
  setp.eq.u32 %p0, %r1, 0;
  @%p0 bra even;
  mov.u32 %r2, 111;
  bra join;
even:
  mov.u32 %r2, 222;
join:
  shl.u32 %r3, %r0, 2;
  cvt.u64.u32 %rd0, %r3;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r2;
  ret;
}
"#;
        use crate::exec::ExecConfig;
        use crate::runtime::{Device, ParamValue};
        let dev = Device::new(dpvk_vm::MachineModel::sandybridge_sse(), 1 << 20);
        dev.register_source(src).unwrap();
        let po = dev.malloc(32 * 4).unwrap();
        dev.launch("cdep", [1, 1, 1], [32, 1, 1], &[ParamValue::Ptr(po)], &ExecConfig::dynamic(4))
            .unwrap();
        let got = dev.copy_u32_dtoh(po, 32).unwrap();
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, if i % 2 == 1 { 111 } else { 222 }, "thread {i}");
        }
    }

    #[test]
    fn uniform_stores_collapse() {
        // All threads store the same uniform value to the same address:
        // with the analysis this is one store per warp.
        let src = r#"
.kernel ustore (.param .u64 out, .param .u32 v) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<3>;
entry:
  ld.param.u32 %r0, [v];
  ld.param.u64 %rd0, [out];
  st.global.u32 [%rd0], %r0;
  ret;
}
"#;
        let tk = translate(&parse_kernel(src).unwrap()).unwrap();
        let on = specialize(&tk, &SpecializeOptions::dynamic(4)).unwrap();
        let stores = on
            .function
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Store { space: ir::Space::Global, .. }))
            .count();
        assert_eq!(stores, 1, "{}", ir::print_function(&on.function));
    }
}
