//! The dynamic execution manager (paper, Sections 3 and 5.2).
//!
//! Each worker thread runs one execution manager over a statically
//! partitioned set of CTAs. Within a CTA the manager keeps a pool of
//! ready thread contexts, forms warps of threads waiting at the same
//! entry point (round-robin pick, then greedy gather), executes the
//! matching specialization from the translation cache, and routes yields:
//! diverged threads re-enter the ready pool at their recorded resume
//! points, barrier arrivals wait in a per-CTA pool until every live
//! thread has arrived, and terminated threads are discarded.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use dpvk_ir::ResumeStatus;
use dpvk_vm::{
    execute_warp_bytecode, execute_warp_framed, CancelToken, ExecLimits, ExecStats, GlobalMem,
    MemAccess, RegFrame, ThreadContext, VmError,
};

use crate::cache::{CompiledKernel, TranslationCache, Variant};
use crate::error::{CoreError, FaultContext};
use crate::translate::TranslatedKernel;

/// How warps are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormationPolicy {
    /// No warps: every thread runs the serialized scalar baseline
    /// (the comparison baseline of the paper's Figure 6).
    ScalarBaseline,
    /// Dynamic warp formation: any ready threads waiting at the same
    /// entry point may form a warp.
    Dynamic,
    /// Static warp formation: only the predetermined group of
    /// consecutively indexed threads may form a warp, enabling
    /// thread-invariant expression elimination (Section 6.2).
    Static,
}

/// Which guest interpreter runs warp bodies. Both engines execute the
/// same compiled specialization and charge modeled cycles identically;
/// they differ only in host-side speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The pre-decoded linear-bytecode engine (default): operands
    /// resolved to frame slots at compile time, hot pairs fused, inner
    /// loop a flat `match` over µops.
    #[default]
    Bytecode,
    /// The tree-walking interpreter over the IR, kept as the
    /// differential oracle for the bytecode engine.
    Tree,
}

impl Engine {
    /// Stable lowercase label used in benchmark output and reports.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Bytecode => "bytecode",
            Engine::Tree => "tree",
        }
    }

    /// The session default: `Engine::default()` unless overridden by
    /// `DPVK_ENGINE={tree,bytecode}`. The env hook lets CI rerun a whole
    /// reproduction binary on the tree-walk oracle and diff its output
    /// against the bytecode engine without per-binary flags. Read once;
    /// explicit `with_engine` calls are unaffected.
    pub fn from_env() -> Self {
        static CHOICE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("DPVK_ENGINE").as_deref() {
            Ok("tree") => Engine::Tree,
            Ok("bytecode") | Err(_) => Engine::Bytecode,
            Ok(other) => panic!("DPVK_ENGINE={other}: expected `tree` or `bytecode`"),
        })
    }
}

/// Modeled cycle charges for execution-manager work (the "EM" bars of the
/// paper's Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmCostModel {
    /// Base cost of forming one warp.
    pub formation_base: u64,
    /// Cost per ready-pool entry examined while gathering.
    pub per_thread_scanned: u64,
    /// Cost per thread of processing a yield (status dispatch, re-queue).
    pub per_yield_thread: u64,
    /// Cost per thread of barrier bookkeeping.
    pub per_barrier_thread: u64,
    /// Cost of one translation-cache query.
    pub per_cache_query: u64,
}

impl Default for EmCostModel {
    fn default() -> Self {
        EmCostModel {
            formation_base: 20,
            per_thread_scanned: 2,
            per_yield_thread: 6,
            per_barrier_thread: 4,
            per_cache_query: 25,
        }
    }
}

/// Execution configuration for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Warp-formation policy.
    pub policy: FormationPolicy,
    /// Maximum warp width (the machine vector width in the paper's
    /// evaluation: 4).
    pub max_warp: u32,
    /// Worker threads; 0 means one per modeled core.
    pub workers: usize,
    /// Interpreter limits.
    pub limits: ExecLimits,
    /// Execution-manager cycle charges.
    pub em_cost: EmCostModel,
    /// Which guest interpreter runs warp bodies.
    pub engine: Engine,
}

impl ExecConfig {
    /// Dynamic warp formation at the given maximum width.
    pub fn dynamic(max_warp: u32) -> Self {
        ExecConfig {
            policy: FormationPolicy::Dynamic,
            max_warp,
            workers: 0,
            limits: ExecLimits::default(),
            em_cost: EmCostModel::default(),
            engine: Engine::from_env(),
        }
    }

    /// The serialized scalar baseline.
    pub fn baseline() -> Self {
        ExecConfig { policy: FormationPolicy::ScalarBaseline, max_warp: 1, ..Self::dynamic(1) }
    }

    /// Static warp formation with thread-invariant elimination.
    pub fn static_tie(max_warp: u32) -> Self {
        ExecConfig { policy: FormationPolicy::Static, ..Self::dynamic(max_warp) }
    }

    /// Use exactly `n` worker threads.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Run warp bodies on the given guest engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }
}

/// Statistics of one launch: VM counters plus the warp-size histogram
/// (the paper's Figure 7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Cycle/instruction counters.
    pub exec: ExecStats,
    /// `warp_hist[w]` = number of kernel entries with warp size `w`.
    pub warp_hist: Vec<u64>,
}

impl LaunchStats {
    fn new(max_warp: u32) -> Self {
        LaunchStats { exec: ExecStats::default(), warp_hist: vec![0; max_warp as usize + 1] }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &LaunchStats) {
        self.exec.merge(&other.exec);
        if self.warp_hist.len() < other.warp_hist.len() {
            self.warp_hist.resize(other.warp_hist.len(), 0);
        }
        for (i, v) in other.warp_hist.iter().enumerate() {
            self.warp_hist[i] += v;
        }
    }

    /// Fraction of kernel entries at each warp size (index = warp size).
    pub fn warp_size_fractions(&self) -> Vec<f64> {
        let total: u64 = self.warp_hist.iter().sum();
        if total == 0 {
            return vec![0.0; self.warp_hist.len()];
        }
        self.warp_hist.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

/// Run a full kernel grid, partitioning CTAs across worker threads.
///
/// # Errors
///
/// Returns the first error raised by any worker (bad launch geometry,
/// compilation failure, memory fault, barrier deadlock).
#[allow(clippy::too_many_arguments)]
pub fn run_grid(
    cache: &TranslationCache,
    kernel: &str,
    grid: [u32; 3],
    block: [u32; 3],
    param: &[u8],
    cbank: &[u8],
    global: &GlobalMem,
    config: &ExecConfig,
) -> Result<LaunchStats, CoreError> {
    run_grid_cancellable(cache, kernel, grid, block, param, cbank, global, config, None)
}

/// What one worker thread brings home: stats for the CTAs it ran (kept
/// even on failure, so Figure-9-style breakdowns stay honest under
/// degradation), the error that stopped it (if any), and the CTA it was
/// on when it stopped short of its partition.
struct WorkerOutcome {
    stats: LaunchStats,
    error: Option<CoreError>,
    stopped_at: Option<u32>,
}

/// [`run_grid`] with cooperative cancellation.
///
/// Every worker's CTA loop runs under `catch_unwind`: a panic in one CTA
/// becomes [`CoreError::WorkerPanic`] instead of tearing down the
/// process, and the launch's cancellation token is tripped so sibling
/// workers stop at their next poll instead of burning CPU on a doomed
/// launch. The caller's `cancel` token (when given) *is* the launch
/// token — cancelling it from another thread stops the launch, and the
/// runtime cancels it itself on an internal fault, so a token is good
/// for one launch only.
///
/// # Errors
///
/// The first error raised by any worker, with genuine faults preferred
/// over secondary cancellations. VM faults arrive as
/// [`CoreError::Fault`] carrying kernel/CTA/warp provenance.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_cancellable(
    cache: &TranslationCache,
    kernel: &str,
    grid: [u32; 3],
    block: [u32; 3],
    param: &[u8],
    cbank: &[u8],
    global: &GlobalMem,
    config: &ExecConfig,
    cancel: Option<&CancelToken>,
) -> Result<LaunchStats, CoreError> {
    let cta_count = (grid[0] as u64) * (grid[1] as u64) * (grid[2] as u64);
    let cta_size = (block[0] as u64) * (block[1] as u64) * (block[2] as u64);
    if cta_count == 0 || cta_size == 0 {
        return Err(CoreError::BadLaunch("grid and block dimensions must be positive".into()));
    }
    if cta_size > 4096 {
        return Err(CoreError::BadLaunch(format!("CTA size {cta_size} exceeds the 4096 limit")));
    }
    // Force translation before spawning workers so errors surface eagerly,
    // and share the result so CTAs skip the per-CTA cache lookup.
    let tk = cache.translated(kernel)?;
    let tk = &tk;

    let workers = if config.workers == 0 { cache.model().cores as usize } else { config.workers }
        .min(cta_count as usize)
        .max(1);

    // One token per launch: the caller's token if given, a private one
    // otherwise. Workers trip it on any fault so siblings stop early.
    let token = cancel.cloned().unwrap_or_default();
    let token = &token;

    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            handles.push(s.spawn(move || {
                // Scratch lives outside `catch_unwind` so the dispatch
                // table's stats flush survives CTA panics and faults.
                let mut scratch = WorkerScratch::new(cache);
                let mut stats = LaunchStats::new(config.max_warp);
                let mut error = None;
                let mut stopped_at = None;
                let mut cta = worker as u64;
                while cta < cta_count {
                    let flat = cta as u32;
                    if token.is_cancelled() {
                        stopped_at = Some(flat);
                        break;
                    }
                    if let Some(deadline) = config.limits.deadline {
                        if Instant::now() >= deadline {
                            error = Some(boundary_fault(kernel, flat, VmError::Deadline));
                            stopped_at = Some(flat);
                            token.cancel();
                            break;
                        }
                    }
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        run_cta(
                            cache,
                            kernel,
                            tk,
                            grid,
                            block,
                            flat,
                            param,
                            cbank,
                            global,
                            config,
                            &mut stats,
                            &mut scratch,
                            token,
                        )
                    }));
                    match run {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            // Secondary cancellations are not faults: the
                            // first failure already tripped the token.
                            if !e.is_cancelled() {
                                token.cancel();
                            }
                            error = Some(e);
                            stopped_at = Some(flat);
                            break;
                        }
                        Err(payload) => {
                            token.cancel();
                            error = Some(CoreError::WorkerPanic {
                                worker,
                                cta: flat,
                                payload: panic_payload(payload.as_ref()),
                            });
                            stopped_at = Some(flat);
                            break;
                        }
                    }
                    cta += workers as u64;
                }
                WorkerOutcome { stats, error, stopped_at }
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| WorkerOutcome {
                    stats: LaunchStats::new(config.max_warp),
                    error: Some(CoreError::WorkerPanic {
                        worker: usize::MAX,
                        cta: 0,
                        payload: panic_payload(payload.as_ref()),
                    }),
                    stopped_at: Some(0),
                })
            })
            .collect()
    });

    // Merge stats from every worker — including failed ones — then pick
    // the most meaningful error: a genuine fault beats the secondary
    // cancellations it caused in sibling workers.
    let mut total = LaunchStats::new(config.max_warp);
    let mut first_error: Option<CoreError> = None;
    let mut interrupted = false;
    for o in &outcomes {
        total.merge(&o.stats);
        interrupted |= o.stopped_at.is_some();
        match (&first_error, &o.error) {
            (None, Some(e)) => first_error = Some(e.clone()),
            (Some(prev), Some(e)) if prev.is_cancelled() && !e.is_cancelled() => {
                first_error = Some(e.clone());
            }
            _ => {}
        }
    }
    dpvk_trace::add(dpvk_trace::Counter::SpillBytes, total.exec.spill_bytes);
    dpvk_trace::add(dpvk_trace::Counter::RestoreBytes, total.exec.restore_bytes);
    if total.exec.downgraded_warps > 0 {
        dpvk_trace::add(dpvk_trace::Counter::DowngradedWarps, total.exec.downgraded_warps);
    }
    if total.exec.cancelled_warps > 0 {
        dpvk_trace::add(dpvk_trace::Counter::CancelledWarps, total.exec.cancelled_warps);
    }
    if first_error.is_none() && interrupted {
        // The host cancelled the token and no worker faulted: surface the
        // cancellation with the first interrupted CTA as provenance.
        let cta = outcomes.iter().filter_map(|o| o.stopped_at).min().unwrap_or(0);
        first_error = Some(boundary_fault(kernel, cta, VmError::Cancelled));
    }
    match first_error {
        Some(e) => {
            dpvk_trace::record_fault(kernel, &e.to_string());
            Err(e)
        }
        None => Ok(total),
    }
}

/// Provenance for a fault detected between warps (no warp was formed, so
/// the thread list is empty and the entry point is the kernel start).
fn boundary_fault(kernel: &str, cta: u32, source: VmError) -> CoreError {
    CoreError::Fault {
        context: FaultContext {
            kernel: kernel.to_string(),
            cta,
            warp_entry: 0,
            thread_ids: Vec::new(),
        },
        source,
    }
}

/// Provenance for a fault raised while a formed warp was executing.
fn warp_fault(
    kernel: &str,
    cta: u32,
    warp_entry: i64,
    warp: &[ThreadContext],
    source: VmError,
) -> CoreError {
    CoreError::Fault {
        context: FaultContext {
            kernel: kernel.to_string(),
            cta,
            warp_entry,
            thread_ids: warp.iter().map(|c| c.flat_tid()).collect(),
        },
        source,
    }
}

/// Best-effort stringification of a panic payload.
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Worker-local memo of resolved specializations. A launch requests the
/// same few `(width, variant)` pairs for every warp, so after the first
/// shared-cache query per pair the steady state is answered from this
/// table: a linear scan over a handful of entries, no lock, no
/// allocation. Hit and downgrade tallies accumulate locally and flush to
/// the cache's atomic counters on drop — which runs even when a CTA
/// panics or faults, because the table lives outside `catch_unwind` — so
/// [`TranslationCache::stats`] totals are identical to per-query
/// counting.
struct DispatchTable<'c> {
    cache: &'c TranslationCache,
    entries: Vec<(u32, Variant, Arc<CompiledKernel>, bool)>,
    hits: u64,
    downgrades: u64,
}

impl<'c> DispatchTable<'c> {
    fn new(cache: &'c TranslationCache) -> Self {
        DispatchTable { cache, entries: Vec::new(), hits: 0, downgrades: 0 }
    }

    /// Resolve a specialization plus its downgrade flag, consulting the
    /// shared cache only on the first request per `(width, variant)`.
    fn resolve(
        &mut self,
        kernel: &str,
        w: u32,
        variant: Variant,
    ) -> Result<(Arc<CompiledKernel>, bool), CoreError> {
        if let Some((_, _, c, d)) =
            self.entries.iter().find(|(ew, ev, _, _)| *ew == w && *ev == variant)
        {
            // Tally what the shared cache would have counted: one hit per
            // resolution, and for a downgraded entry a hit on the width-1
            // baseline plus one downgrade.
            self.hits += 1;
            let downgraded = *d;
            if downgraded {
                self.downgrades += 1;
            }
            if dpvk_trace::enabled() {
                let (rw, rv) = if downgraded { (1, Variant::Baseline) } else { (w, variant) };
                dpvk_trace::record_cache_query(kernel, rw, rv.label(), true);
            }
            return Ok((Arc::clone(c), downgraded));
        }
        let (c, d) = self.cache.get_or_downgrade(kernel, w, variant)?;
        self.entries.push((w, variant, Arc::clone(&c), d));
        Ok((c, d))
    }
}

impl Drop for DispatchTable<'_> {
    fn drop(&mut self) {
        self.cache.add_resolved(self.hits, self.downgrades);
    }
}

/// Reusable per-worker execution state: the dispatch memo plus scratch
/// buffers for warp formation and the interpreter register frame, so the
/// steady-state CTA loop performs no heap allocation.
struct WorkerScratch<'c> {
    dispatch: DispatchTable<'c>,
    warp: Vec<ThreadContext>,
    kept: Vec<ThreadContext>,
    frame: RegFrame,
}

impl<'c> WorkerScratch<'c> {
    fn new(cache: &'c TranslationCache) -> Self {
        WorkerScratch {
            dispatch: DispatchTable::new(cache),
            warp: Vec::new(),
            kept: Vec::new(),
            frame: RegFrame::new(),
        }
    }
}

/// Execute all threads of one CTA to completion.
#[allow(clippy::too_many_arguments)]
fn run_cta(
    cache: &TranslationCache,
    kernel: &str,
    tk: &TranslatedKernel,
    grid: [u32; 3],
    block: [u32; 3],
    cta_flat: u32,
    param: &[u8],
    cbank: &[u8],
    global: &GlobalMem,
    config: &ExecConfig,
    stats: &mut LaunchStats,
    scratch: &mut WorkerScratch<'_>,
    cancel: &CancelToken,
) -> Result<(), CoreError> {
    #[cfg(feature = "fault-inject")]
    crate::faults::maybe_panic(cta_flat);

    let cta_size = (block[0] * block[1] * block[2]) as usize;
    let ctaid =
        [cta_flat % grid[0], (cta_flat / grid[0]) % grid[1], cta_flat / (grid[0] * grid[1])];

    // Build thread contexts.
    let mut ready: VecDeque<ThreadContext> = VecDeque::with_capacity(cta_size);
    for tz in 0..block[2] {
        for ty in 0..block[1] {
            for tx in 0..block[0] {
                let mut ctx = ThreadContext::new([tx, ty, tz], block, ctaid, grid);
                let flat = ctx.flat_tid() as usize;
                ctx.local_base = (flat * tk.local_bytes) as u64;
                ready.push_back(ctx);
            }
        }
    }

    let mut shared = vec![0u8; tk.shared_bytes.max(1)];
    let mut local = vec![0u8; (tk.local_bytes * cta_size).max(1)];
    let mut barrier_pool: Vec<ThreadContext> = Vec::new();
    let mut exited: usize = 0;
    let mut scan_total: u64 = 0;
    let tracing = dpvk_trace::enabled();
    // The interpreter polls on an instruction stride; this boundary check
    // covers short warp calls that retire before the first poll.
    let polling = config.limits.deadline.is_some();

    #[cfg(feature = "fault-inject")]
    let mut injected_fault_pending = crate::faults::injected_warp_fault(cta_flat);

    while let Some(front) = ready.front() {
        let rp = front.resume_point;
        if cancel.is_cancelled() {
            return Err(boundary_fault(kernel, cta_flat, VmError::Cancelled));
        }
        if polling {
            if let Some(deadline) = config.limits.deadline {
                if Instant::now() >= deadline {
                    return Err(boundary_fault(kernel, cta_flat, VmError::Deadline));
                }
            }
        }
        // Gather a warp (round-robin from the queue head, greedy collect of
        // matching resume points).
        let host_t = tracing.then(Instant::now);
        let scanned = gather(&mut ready, rp, config, &mut scratch.warp, &mut scratch.kept);
        if let Some(t) = host_t {
            dpvk_trace::add(dpvk_trace::Counter::HostFormationNs, t.elapsed().as_nanos() as u64);
        }
        stats.exec.cycles_manager +=
            config.em_cost.formation_base + config.em_cost.per_thread_scanned * scanned as u64;
        scan_total += scanned as u64;

        // Pick the widest available specialization.
        let (w, variant) = match config.policy {
            FormationPolicy::ScalarBaseline => (1u32, Variant::Baseline),
            FormationPolicy::Dynamic => {
                let mut w = config.max_warp;
                while w as usize > scratch.warp.len() {
                    w /= 2;
                }
                (w.max(1), Variant::Dynamic)
            }
            FormationPolicy::Static => {
                if scratch.warp.len() == config.max_warp as usize && config.max_warp > 1 {
                    (config.max_warp, Variant::StaticTie)
                } else {
                    (1, Variant::StaticTie)
                }
            }
        };
        stats.exec.cycles_manager += config.em_cost.per_cache_query;
        // Degrade instead of failing: a specialization that cannot
        // compile falls back to the width-1 scalar baseline. Entry-point
        // numbering is shared across variants (assigned in `translate`),
        // so baseline warps resume mid-grid safely.
        let host_t = tracing.then(Instant::now);
        let (compiled, downgraded) = scratch.dispatch.resolve(kernel, w, variant)?;
        if let Some(t) = host_t {
            dpvk_trace::add(dpvk_trace::Counter::HostDispatchNs, t.elapsed().as_nanos() as u64);
        }
        let w = if downgraded {
            stats.exec.downgraded_warps += 1;
            1
        } else {
            w
        };
        // Return surplus threads to the queue head (they keep priority).
        while scratch.warp.len() > w as usize {
            let ctx = scratch.warp.pop().expect("warp longer than w");
            ready.push_front(ctx);
        }

        #[cfg(feature = "fault-inject")]
        if let Some(vm_err) = injected_fault_pending.take() {
            return Err(warp_fault(kernel, cta_flat, rp, &scratch.warp, vm_err));
        }
        #[cfg(feature = "fault-inject")]
        crate::faults::maybe_slow_warp(cta_flat);

        // Count the dispatch before executing: a warp that faults or is
        // cancelled mid-body was still dispatched to its engine.
        if tracing {
            let engine_counter = match config.engine {
                Engine::Bytecode => dpvk_trace::Counter::WarpsBytecode,
                Engine::Tree => dpvk_trace::Counter::WarpsTree,
            };
            dpvk_trace::add(engine_counter, 1);
        }
        let mut mem = MemAccess { global, shared: &mut shared, local: &mut local, param, cbank };
        let outcome = match config.engine {
            Engine::Bytecode => execute_warp_bytecode(
                &compiled.bytecode,
                &mut scratch.frame,
                &mut scratch.warp,
                rp,
                &mut mem,
                &mut stats.exec,
                &config.limits,
                Some(cancel),
            ),
            Engine::Tree => execute_warp_framed(
                &compiled.function,
                &compiled.frame,
                &mut scratch.frame,
                &compiled.cost,
                cache.model(),
                &mut scratch.warp,
                rp,
                &mut mem,
                &mut stats.exec,
                &config.limits,
                Some(cancel),
            ),
        }
        .map_err(|e| {
            if matches!(e, VmError::Cancelled | VmError::Deadline) {
                stats.exec.cancelled_warps += 1;
            }
            warp_fault(kernel, cta_flat, rp, &scratch.warp, e)
        })?;
        if (w as usize) < stats.warp_hist.len() {
            stats.warp_hist[w as usize] += 1;
        }
        if tracing {
            dpvk_trace::record_warp_entry(w, std::mem::take(&mut scan_total));
            let reason = match outcome.status {
                ResumeStatus::Exit => dpvk_trace::YieldReason::Exit,
                ResumeStatus::Branch => dpvk_trace::YieldReason::Branch,
                ResumeStatus::Barrier => dpvk_trace::YieldReason::Barrier,
            };
            dpvk_trace::record_yield(kernel, rp.max(0) as u32, reason, w);
        }

        stats.exec.cycles_manager += config.em_cost.per_yield_thread * w as u64;
        match outcome.status {
            ResumeStatus::Exit => {
                exited += scratch.warp.len();
                scratch.warp.clear();
            }
            ResumeStatus::Branch => {
                for ctx in scratch.warp.drain(..) {
                    if ctx.is_terminated() {
                        exited += 1;
                    } else {
                        ready.push_back(ctx);
                    }
                }
            }
            ResumeStatus::Barrier => {
                stats.exec.cycles_manager += config.em_cost.per_barrier_thread * w as u64;
                barrier_pool.append(&mut scratch.warp);
            }
        }

        // Barrier release: when every live thread has arrived, everyone
        // resumes at the continuation entry point.
        let alive = cta_size - exited;
        if !barrier_pool.is_empty() && barrier_pool.len() == alive {
            stats.exec.cycles_manager +=
                config.em_cost.per_barrier_thread * barrier_pool.len() as u64;
            ready.extend(barrier_pool.drain(..));
        }
    }

    if !barrier_pool.is_empty() {
        return Err(CoreError::BadLaunch(format!(
            "barrier deadlock in kernel `{kernel}`: {} thread(s) waiting, {} exited",
            barrier_pool.len(),
            exited
        )));
    }
    Ok(())
}

/// Collect up to `max_warp` contexts with resume point `rp` from the
/// queue into `warp`, scanning from the front in one pass: non-matching
/// contexts are parked in `kept` and restored to the queue head in their
/// original order. For static formation only contexts of the front
/// thread's group are eligible, and the result is sorted by thread index
/// (lane order). Returns the number of queue entries examined.
///
/// Host time is O(entries examined) — the previous implementation
/// removed each picked context by index, which shifts the whole deque
/// per removal (O(n) per thread, O(n²) per warp on fragmented pools).
/// The modeled formation charge is unchanged: `scanned` counts exactly
/// the entries the indexed scan inspected, and both the warp and the
/// residual queue end up in the same order.
fn gather(
    ready: &mut VecDeque<ThreadContext>,
    rp: i64,
    config: &ExecConfig,
    warp: &mut Vec<ThreadContext>,
    kept: &mut Vec<ThreadContext>,
) -> usize {
    let max = config.max_warp as usize;
    let is_static = config.policy == FormationPolicy::Static;
    let group_of =
        |ctx: &ThreadContext| -> u32 { ctx.flat_tid().checked_div(config.max_warp).unwrap_or(0) };
    let front_group = ready.front().map(group_of).unwrap_or(0);

    warp.clear();
    kept.clear();
    let mut scanned = 0usize;
    while let Some(ctx) = ready.pop_front() {
        scanned += 1;
        if ctx.resume_point == rp && (!is_static || group_of(&ctx) == front_group) {
            warp.push(ctx);
            if warp.len() == max {
                break;
            }
        } else {
            kept.push(ctx);
        }
    }
    for ctx in kept.drain(..).rev() {
        ready.push_front(ctx);
    }
    if is_static {
        warp.sort_by_key(|c| c.flat_tid());
    }
    scanned
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_ptx::parse_module;
    use dpvk_vm::MachineModel;

    const VECADD: &str = r#"
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  mad.lo.u32 %r3, %ctaid.x, %ntid.x, %r1;
  ld.param.u32 %r4, [n];
  setp.ge.u32 %p1, %r3, %r4;
  @%p1 bra done;
  cvt.u64.u32 %rd1, %r3;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [a];
  add.u64 %rd2, %rd2, %rd1;
  ld.global.f32 %f1, [%rd2];
  ld.param.u64 %rd3, [b];
  add.u64 %rd3, %rd3, %rd1;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f3, %f1, %f2;
  ld.param.u64 %rd4, [c];
  add.u64 %rd4, %rd4, %rd1;
  st.global.f32 [%rd4], %f3;
done:
  ret;
}
"#;

    fn setup(src: &str) -> TranslationCache {
        let cache = TranslationCache::new(MachineModel::sandybridge_sse());
        cache.register_module(&parse_module(src).unwrap());
        cache
    }

    fn pack_params(items: &[(usize, &[u8])]) -> Vec<u8> {
        let size = items.iter().map(|(off, b)| off + b.len()).max().unwrap_or(0);
        let mut buf = vec![0u8; size];
        for (off, bytes) in items {
            buf[*off..*off + bytes.len()].copy_from_slice(bytes);
        }
        buf
    }

    fn run_vecadd(config: &ExecConfig) -> (Vec<f32>, LaunchStats) {
        let cache = setup(VECADD);
        let n: u32 = 100; // not a multiple of the CTA size: tests divergence
        let global = GlobalMem::new(4096);
        let (a_ptr, b_ptr, c_ptr) = (0u64, 1024u64, 2048u64);
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        for (i, v) in a.iter().enumerate() {
            global.write::<4>(a_ptr + 4 * i as u64, v.to_le_bytes()).unwrap();
        }
        for (i, v) in b.iter().enumerate() {
            global.write::<4>(b_ptr + 4 * i as u64, v.to_le_bytes()).unwrap();
        }
        let param = pack_params(&[
            (0, &a_ptr.to_le_bytes()),
            (8, &b_ptr.to_le_bytes()),
            (16, &c_ptr.to_le_bytes()),
            (24, &n.to_le_bytes()),
        ]);
        let stats = run_grid(&cache, "vecadd", [4, 1, 1], [32, 1, 1], &param, &[], &global, config)
            .unwrap();
        let mut out = vec![0f32; n as usize];
        for (i, v) in out.iter_mut().enumerate() {
            *v = f32::from_le_bytes(global.read::<4>(c_ptr + 4 * i as u64).unwrap());
        }
        (out, stats)
    }

    #[test]
    fn vecadd_baseline_is_correct() {
        let (out, stats) = run_vecadd(&ExecConfig::baseline().with_workers(1));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        assert!(stats.exec.cycles_body > 0);
    }

    #[test]
    fn vecadd_dynamic_matches_baseline_and_forms_warps() {
        let (out, stats) = run_vecadd(&ExecConfig::dynamic(4).with_workers(2));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        // Most entries are full 4-wide warps.
        assert!(stats.warp_hist[4] > 0, "{:?}", stats.warp_hist);
        assert!(stats.exec.average_warp_size() > 2.0);
    }

    #[test]
    fn vecadd_static_matches() {
        let (out, stats) = run_vecadd(&ExecConfig::static_tie(4).with_workers(1));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        assert!(stats.warp_hist[4] > 0);
    }

    #[test]
    fn vectorization_speeds_up_vecadd() {
        let (_, scalar) = run_vecadd(&ExecConfig::baseline().with_workers(1));
        let (_, vec4) = run_vecadd(&ExecConfig::dynamic(4).with_workers(1));
        let s = scalar.exec.total_cycles() as f64 / vec4.exec.total_cycles() as f64;
        // Memory-bound kernel: modest speedup, but not a slowdown.
        assert!(s > 0.9, "speedup {s}");
    }

    const REDUCTION: &str = r#"
.kernel reduce_sum (.param .u64 data, .param .u64 out) {
  .shared .f32 tile[32];
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  cvt.u64.u32 %rd1, %r1;
  shl.u64 %rd2, %rd1, 2;
  ld.param.u64 %rd3, [data];
  add.u64 %rd3, %rd3, %rd2;
  ld.global.f32 %f1, [%rd3];
  mov.u64 %rd4, tile;
  add.u64 %rd4, %rd4, %rd2;
  st.shared.f32 [%rd4], %f1;
  mov.u32 %r2, 16;
loop:
  bar.sync 0;
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra skip;
  add.u32 %r3, %r1, %r2;
  cvt.u64.u32 %rd5, %r3;
  shl.u64 %rd5, %rd5, 2;
  mov.u64 %rd6, tile;
  add.u64 %rd6, %rd6, %rd5;
  ld.shared.f32 %f2, [%rd6];
  ld.shared.f32 %f3, [%rd4];
  add.f32 %f3, %f3, %f2;
  st.shared.f32 [%rd4], %f3;
skip:
  shr.u32 %r2, %r2, 1;
  setp.gt.u32 %p1, %r2, 0;
  @%p1 bra loop;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra done;
  ld.shared.f32 %f3, [tile];
  ld.param.u64 %rd7, [out];
  st.global.f32 [%rd7], %f3;
done:
  ret;
}
"#;

    fn run_reduction(config: &ExecConfig) -> f32 {
        let cache = setup(REDUCTION);
        let global = GlobalMem::new(1024);
        for i in 0..32u64 {
            global.write::<4>(4 * i, ((i + 1) as f32).to_le_bytes()).unwrap();
        }
        let out_ptr = 512u64;
        let param = pack_params(&[(0, &0u64.to_le_bytes()), (8, &out_ptr.to_le_bytes())]);
        run_grid(&cache, "reduce_sum", [1, 1, 1], [32, 1, 1], &param, &[], &global, config)
            .unwrap();
        f32::from_le_bytes(global.read::<4>(out_ptr).unwrap())
    }

    #[test]
    fn barrier_reduction_all_policies() {
        // sum(1..=32) = 528.
        assert_eq!(run_reduction(&ExecConfig::baseline().with_workers(1)), 528.0);
        assert_eq!(run_reduction(&ExecConfig::dynamic(4).with_workers(1)), 528.0);
        assert_eq!(run_reduction(&ExecConfig::static_tie(4).with_workers(1)), 528.0);
        assert_eq!(run_reduction(&ExecConfig::dynamic(2).with_workers(1)), 528.0);
    }

    #[test]
    fn zero_grid_is_rejected() {
        let cache = setup(VECADD);
        let global = GlobalMem::new(64);
        let err = run_grid(
            &cache,
            "vecadd",
            [0, 1, 1],
            [32, 1, 1],
            &[0u8; 28],
            &[],
            &global,
            &ExecConfig::baseline(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadLaunch(_)));
    }

    #[test]
    fn warp_fractions_sum_to_one() {
        let (_, stats) = run_vecadd(&ExecConfig::dynamic(4).with_workers(1));
        let total: f64 = stats.warp_size_fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    /// The indexed-removal gather this PR replaced, kept verbatim as the
    /// behavioral reference: warp contents and order, residual queue
    /// order, and the scanned count must all match the single-pass
    /// implementation.
    fn gather_reference(
        ready: &mut VecDeque<ThreadContext>,
        rp: i64,
        config: &ExecConfig,
    ) -> (Vec<ThreadContext>, usize) {
        let max = config.max_warp as usize;
        let is_static = config.policy == FormationPolicy::Static;
        let group_of = |ctx: &ThreadContext| -> u32 {
            ctx.flat_tid().checked_div(config.max_warp).unwrap_or(0)
        };
        let front_group = ready.front().map(group_of).unwrap_or(0);

        let mut picked: Vec<usize> = Vec::with_capacity(max);
        let mut scanned = 0usize;
        for (i, ctx) in ready.iter().enumerate() {
            scanned += 1;
            if ctx.resume_point == rp && (!is_static || group_of(ctx) == front_group) {
                picked.push(i);
                if picked.len() == max {
                    break;
                }
            }
        }
        let mut warp: Vec<ThreadContext> = Vec::with_capacity(picked.len());
        for &i in picked.iter().rev() {
            warp.push(ready.remove(i).expect("picked index valid"));
        }
        warp.reverse();
        if is_static {
            warp.sort_by_key(|c| c.flat_tid());
        }
        (warp, scanned)
    }

    #[test]
    fn gather_matches_reference_formation() {
        // Seeded LCG so failures reproduce.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let configs = [ExecConfig::dynamic(4), ExecConfig::static_tie(4), ExecConfig::dynamic(2)];
        for config in &configs {
            for _ in 0..100 {
                // A fragmented ready pool: random permutation of thread
                // ids with random resume points.
                let n = 1 + (next() % 64) as usize;
                let mut order: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    order.swap(i, (next() % (i as u64 + 1)) as usize);
                }
                let mut queue: VecDeque<ThreadContext> = VecDeque::new();
                for &tid in &order {
                    let mut ctx = ThreadContext::new([tid, 0, 0], [64, 1, 1], [0; 3], [1; 3]);
                    ctx.resume_point = (next() % 4) as i64;
                    queue.push_back(ctx);
                }
                let rp = queue.front().unwrap().resume_point;

                let mut ref_queue = queue.clone();
                let (ref_warp, ref_scanned) = gather_reference(&mut ref_queue, rp, config);

                let (mut warp, mut kept) = (Vec::new(), Vec::new());
                let scanned = gather(&mut queue, rp, config, &mut warp, &mut kept);

                assert_eq!(warp, ref_warp, "warp contents/order diverged");
                assert_eq!(scanned, ref_scanned, "scanned count diverged");
                assert_eq!(queue, ref_queue, "residual queue order diverged");
                assert!(kept.is_empty(), "kept scratch must drain back into the queue");
            }
        }
    }
}
