//! Translation from the PTX-like virtual ISA to scalar IR.
//!
//! This mirrors the paper's PTX→LLVM translator (Section 5.1): the output
//! is the *canonical scalar function* — one logical thread's code with all
//! context accesses reading warp lane 0 — plus the metadata the vectorizer
//! and execution manager need:
//!
//! * blocks are split at barriers, and each barrier becomes a recorded
//!   *barrier edge* to its continuation block;
//! * non-branch predicated instructions are rewritten into `select` form;
//! * guarded `ret`/`exit` become conditional branches to a synthetic exit
//!   block;
//! * every conditional-branch successor and barrier continuation becomes an
//!   *entry point* with a stable id, and each scalar virtual register that
//!   is live into any entry point receives a *spill slot* in thread-local
//!   memory (the slot map is shared by all specializations so that warps of
//!   different widths can exchange suspended threads).

use std::collections::{HashMap, HashSet};

use dpvk_ir as ir;
use dpvk_ir::{
    BinOp, Block, BlockId, CmpPred, CtxField, Function, Inst, Term, Type, UnOp, VReg, Value,
};
use dpvk_ptx as ptx;
use dpvk_ptx::{AddressBase, Operand, ScalarType, SpecialReg};

use crate::error::CoreError;

/// A kernel translated to canonical scalar IR with yield metadata.
#[derive(Debug, Clone)]
pub struct TranslatedKernel {
    /// Kernel name.
    pub name: String,
    /// The canonical scalar function (no yield machinery yet; conditional
    /// branches are ordinary `CondBr`s and barrier edges are plain `Br`s
    /// recorded in [`TranslatedKernel::barrier_edges`]).
    pub scalar: Function,
    /// Entry-point blocks; the index is the entry id (0 = kernel entry).
    pub entry_points: Vec<BlockId>,
    /// Inverse of `entry_points`.
    pub entry_id_of: HashMap<BlockId, i64>,
    /// Blocks whose terminating `Br` is a CTA-wide barrier, mapped to the
    /// continuation block.
    pub barrier_edges: HashMap<BlockId, BlockId>,
    /// Blocks that consist of nothing but `Ret` — divergence to these is
    /// encoded directly as [`ir::EXIT_ENTRY_ID`].
    pub pure_exit_blocks: HashSet<BlockId>,
    /// Spill-slot byte offset (within a thread's local memory) of every
    /// scalar register live into some entry point.
    pub spill_slots: HashMap<VReg, u64>,
    /// Bytes of user-declared `.local` variables.
    pub user_local_bytes: usize,
    /// Total per-thread local bytes (user variables + spill area).
    pub local_bytes: usize,
    /// Bytes of `.shared` memory per CTA.
    pub shared_bytes: usize,
    /// Bytes of the parameter buffer.
    pub param_bytes: usize,
    /// Sorted live-in register sets per scalar block.
    pub live_in: Vec<Vec<VReg>>,
}

impl TranslatedKernel {
    /// The entry id of `block`, or [`ir::EXIT_ENTRY_ID`] for pure-exit
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block` is neither an entry point nor a pure-exit block —
    /// callers only ask about yield targets.
    pub fn entry_id(&self, block: BlockId) -> i64 {
        if self.pure_exit_blocks.contains(&block) {
            return ir::EXIT_ENTRY_ID;
        }
        *self
            .entry_id_of
            .get(&block)
            .unwrap_or_else(|| panic!("block {block} is not an entry point"))
    }
}

fn sty_of(t: ScalarType) -> ir::STy {
    use ir::STy;
    match t {
        ScalarType::Pred => STy::I1,
        ScalarType::U8 | ScalarType::S8 | ScalarType::B8 => STy::I8,
        ScalarType::U16 | ScalarType::S16 => STy::I16,
        ScalarType::U32 | ScalarType::S32 | ScalarType::B32 => STy::I32,
        ScalarType::U64 | ScalarType::S64 | ScalarType::B64 => STy::I64,
        ScalarType::F32 => STy::F32,
        ScalarType::F64 => STy::F64,
    }
}

fn space_of(s: ptx::AddressSpace) -> ir::Space {
    match s {
        ptx::AddressSpace::Global => ir::Space::Global,
        ptx::AddressSpace::Shared => ir::Space::Shared,
        ptx::AddressSpace::Local => ir::Space::Local,
        ptx::AddressSpace::Param => ir::Space::Param,
        ptx::AddressSpace::Const => ir::Space::Const,
    }
}

fn ctx_field_of(sr: SpecialReg) -> CtxField {
    let d = |dim: ptx::Dim| -> u8 {
        match dim {
            ptx::Dim::X => 0,
            ptx::Dim::Y => 1,
            ptx::Dim::Z => 2,
        }
    };
    match sr {
        SpecialReg::Tid(x) => CtxField::Tid(d(x)),
        SpecialReg::Ntid(x) => CtxField::Ntid(d(x)),
        SpecialReg::Ctaid(x) => CtxField::Ctaid(d(x)),
        SpecialReg::Nctaid(x) => CtxField::Nctaid(d(x)),
        SpecialReg::LaneId => CtxField::LaneId,
        SpecialReg::WarpSize => CtxField::WarpSize,
    }
}

struct Translator<'k> {
    kernel: &'k ptx::Kernel,
    f: Function,
    /// PTX register -> IR register.
    reg_map: Vec<VReg>,
    /// First IR block of each PTX block.
    block_start: Vec<BlockId>,
    barrier_edges: HashMap<BlockId, BlockId>,
    /// The synthetic exit block (created on demand for guarded ret).
    exit_block: Option<BlockId>,
}

impl<'k> Translator<'k> {
    fn err(&self, message: impl Into<String>) -> CoreError {
        CoreError::Unsupported { kernel: self.kernel.name.clone(), message: message.into() }
    }

    fn ir_ty(&self, r: ptx::RegId) -> Type {
        Type::scalar(sty_of(self.kernel.reg_type(r)))
    }

    fn vreg(&self, r: ptx::RegId) -> VReg {
        self.reg_map[r.index()]
    }

    /// Emit `inst` into `block`.
    fn push(&mut self, block: BlockId, inst: Inst) {
        self.f.block_mut(block).insts.push(inst);
    }

    /// Materialize an operand as an IR value, emitting helper instructions
    /// into `block` as needed.
    fn value_of(&mut self, block: BlockId, op: &Operand, at: ir::STy) -> Result<Value, CoreError> {
        Ok(match op {
            Operand::Reg(r) => Value::Reg(self.vreg(*r)),
            Operand::Imm(v) => Value::ImmI(*v),
            Operand::ImmF(v) => Value::ImmF(*v),
            Operand::Special(sr) => {
                let t = self.f.new_reg(Type::scalar(ir::STy::I32));
                self.push(block, Inst::CtxRead { field: ctx_field_of(*sr), lane: 0, dst: t });
                if at != ir::STy::I32 && at.is_int() && at != ir::STy::I1 {
                    let c = self.f.new_reg(Type::scalar(at));
                    self.push(
                        block,
                        Inst::Cvt {
                            to: at,
                            from: ir::STy::I32,
                            signed: false,
                            width: 1,
                            dst: c,
                            a: Value::Reg(t),
                        },
                    );
                    Value::Reg(c)
                } else {
                    Value::Reg(t)
                }
            }
            Operand::Addr(_) => return Err(self.err("address operand in value position")),
            Operand::Sym(_) => return Err(self.err("symbol operand outside mov")),
        })
    }

    /// Compute the byte address of a memory operand within its space.
    fn addr_of(
        &mut self,
        block: BlockId,
        op: &Operand,
        space: ptx::AddressSpace,
    ) -> Result<Value, CoreError> {
        let Operand::Addr(addr) = op else {
            return Err(self.err("memory instruction without address operand"));
        };
        Ok(match &addr.base {
            AddressBase::Reg(r) => {
                let base = self.vreg(*r);
                if addr.offset == 0 {
                    Value::Reg(base)
                } else {
                    let ty = self.ir_ty(*r);
                    let t = self.f.new_reg(ty);
                    self.push(
                        block,
                        Inst::Bin {
                            op: BinOp::Add,
                            ty,
                            signed: false,
                            dst: t,
                            a: Value::Reg(base),
                            b: Value::ImmI(addr.offset),
                        },
                    );
                    Value::Reg(t)
                }
            }
            AddressBase::Param(name) => {
                let p = self
                    .kernel
                    .param(name)
                    .ok_or_else(|| self.err(format!("unknown parameter `{name}`")))?;
                Value::ImmI(p.offset as i64 + addr.offset)
            }
            AddressBase::Var(name) => {
                let var = self
                    .kernel
                    .var(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
                let flat = var.offset as i64 + addr.offset;
                match space {
                    ptx::AddressSpace::Shared => Value::ImmI(flat),
                    ptx::AddressSpace::Local => {
                        // Local addresses are arena-wide: thread base + offset.
                        let base = self.f.new_reg(Type::scalar(ir::STy::I64));
                        self.push(
                            block,
                            Inst::CtxRead { field: CtxField::LocalBase, lane: 0, dst: base },
                        );
                        let t = self.f.new_reg(Type::scalar(ir::STy::I64));
                        self.push(
                            block,
                            Inst::Bin {
                                op: BinOp::Add,
                                ty: Type::scalar(ir::STy::I64),
                                signed: false,
                                dst: t,
                                a: Value::Reg(base),
                                b: Value::ImmI(flat),
                            },
                        );
                        Value::Reg(t)
                    }
                    other => {
                        return Err(
                            self.err(format!("variable `{name}` addressed in .{other} space"))
                        )
                    }
                }
            }
            AddressBase::Absolute => Value::ImmI(addr.offset),
        })
    }

    /// The guard condition as a scalar `i1` value (emitting a `not` for
    /// negated guards).
    fn guard_value(&mut self, block: BlockId, g: ptx::Guard) -> Value {
        let p = self.vreg(g.pred);
        if g.negated {
            let t = self.f.new_reg(Type::scalar(ir::STy::I1));
            self.push(
                block,
                Inst::Un { op: UnOp::Not, ty: Type::scalar(ir::STy::I1), dst: t, a: Value::Reg(p) },
            );
            Value::Reg(t)
        } else {
            Value::Reg(p)
        }
    }

    /// Translate one non-control PTX instruction into `block`. Guarded
    /// instructions are rewritten into select form (paper, Section 5.1).
    fn translate_inst(&mut self, block: BlockId, inst: &ptx::Instruction) -> Result<(), CoreError> {
        use ptx::Opcode as P;
        let vty = sty_of(inst.ty);
        let ty = Type::scalar(vty);
        let signed = inst.ty.is_signed();

        // For guarded value-producing instructions: compute into a fresh
        // temp, then select against the old destination.
        let guarded = inst.guard;
        let real_dst = inst.dst.map(|d| self.vreg(d));
        let dst = match (guarded, real_dst) {
            (Some(_), Some(d)) => {
                let t = self.f.new_reg(self.f.reg_type(d));
                Some((t, d))
            }
            (None, Some(d)) => Some((d, d)),
            (_, None) => {
                if guarded.is_some() {
                    return Err(self.err(format!(
                        "guarded `{}` is not supported; use an explicit branch",
                        inst.opcode.mnemonic()
                    )));
                }
                None
            }
        };
        let d = dst.map(|(t, _)| t);

        let values = |me: &mut Self, at: ir::STy| -> Result<Vec<Value>, CoreError> {
            inst.srcs.iter().map(|s| me.value_of(block, s, at)).collect()
        };

        match &inst.opcode {
            P::Add
            | P::Sub
            | P::Mul(_)
            | P::Div
            | P::Rem
            | P::Min
            | P::Max
            | P::And
            | P::Or
            | P::Xor
            | P::Shl
            | P::Shr => {
                let vs = values(self, vty)?;
                let op = match &inst.opcode {
                    P::Add => BinOp::Add,
                    P::Sub => BinOp::Sub,
                    P::Mul(ptx::MulHalf::Lo) => BinOp::Mul,
                    P::Mul(ptx::MulHalf::Hi) => BinOp::MulHi,
                    P::Div => BinOp::Div,
                    P::Rem => BinOp::Rem,
                    P::Min => BinOp::Min,
                    P::Max => BinOp::Max,
                    P::And => BinOp::And,
                    P::Or => BinOp::Or,
                    P::Xor => BinOp::Xor,
                    P::Shl => BinOp::Shl,
                    P::Shr => BinOp::Shr,
                    _ => unreachable!(),
                };
                self.push(
                    block,
                    Inst::Bin {
                        op,
                        ty,
                        signed,
                        dst: d.expect("binary ops have destinations"),
                        a: vs[0],
                        b: vs[1],
                    },
                );
            }
            P::Mad | P::Fma => {
                let vs = values(self, vty)?;
                self.push(
                    block,
                    Inst::Fma {
                        ty,
                        dst: d.expect("mad/fma has a destination"),
                        a: vs[0],
                        b: vs[1],
                        c: vs[2],
                    },
                );
            }
            P::Abs
            | P::Neg
            | P::Not
            | P::Sqrt
            | P::Rsqrt
            | P::Rcp
            | P::Sin
            | P::Cos
            | P::Ex2
            | P::Lg2 => {
                let vs = values(self, vty)?;
                let op = match &inst.opcode {
                    P::Abs => UnOp::Abs,
                    P::Neg => UnOp::Neg,
                    P::Not => UnOp::Not,
                    P::Sqrt => UnOp::Sqrt,
                    P::Rsqrt => UnOp::Rsqrt,
                    P::Rcp => UnOp::Rcp,
                    P::Sin => UnOp::Sin,
                    P::Cos => UnOp::Cos,
                    P::Ex2 => UnOp::Ex2,
                    P::Lg2 => UnOp::Lg2,
                    _ => unreachable!(),
                };
                self.push(
                    block,
                    Inst::Un { op, ty, dst: d.expect("unary ops have destinations"), a: vs[0] },
                );
            }
            P::Setp(cmp) => {
                let vs = values(self, vty)?;
                let pred = match cmp {
                    ptx::CmpOp::Eq => CmpPred::Eq,
                    ptx::CmpOp::Ne => CmpPred::Ne,
                    ptx::CmpOp::Lt => CmpPred::Lt,
                    ptx::CmpOp::Le => CmpPred::Le,
                    ptx::CmpOp::Gt => CmpPred::Gt,
                    ptx::CmpOp::Ge => CmpPred::Ge,
                };
                self.push(
                    block,
                    Inst::Cmp {
                        pred,
                        ty,
                        signed,
                        dst: d.expect("setp has a destination"),
                        a: vs[0],
                        b: vs[1],
                    },
                );
            }
            P::Selp => {
                let a = self.value_of(block, &inst.srcs[0], vty)?;
                let b = self.value_of(block, &inst.srcs[1], vty)?;
                let c = self.value_of(block, &inst.srcs[2], ir::STy::I1)?;
                self.push(
                    block,
                    Inst::Select { ty, dst: d.expect("selp has a destination"), cond: c, a, b },
                );
            }
            P::Mov => {
                let dst = d.expect("mov has a destination");
                match &inst.srcs[0] {
                    Operand::Sym(name) => {
                        let var = self
                            .kernel
                            .var(name)
                            .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?
                            .clone();
                        match var.space {
                            ptx::AddressSpace::Shared => {
                                self.push(
                                    block,
                                    Inst::Mov { ty, dst, a: Value::ImmI(var.offset as i64) },
                                );
                            }
                            ptx::AddressSpace::Local => {
                                if vty != ir::STy::I64 {
                                    return Err(self.err(
                                        "address-of a .local variable requires a 64-bit mov",
                                    ));
                                }
                                let base = self.f.new_reg(Type::scalar(ir::STy::I64));
                                self.push(
                                    block,
                                    Inst::CtxRead {
                                        field: CtxField::LocalBase,
                                        lane: 0,
                                        dst: base,
                                    },
                                );
                                self.push(
                                    block,
                                    Inst::Bin {
                                        op: BinOp::Add,
                                        ty: Type::scalar(ir::STy::I64),
                                        signed: false,
                                        dst,
                                        a: Value::Reg(base),
                                        b: Value::ImmI(var.offset as i64),
                                    },
                                );
                            }
                            _ => return Err(self.err("address-of non-shared/local variable")),
                        }
                    }
                    src => {
                        let v = self.value_of(block, src, vty)?;
                        self.push(block, Inst::Mov { ty, dst, a: v });
                    }
                }
            }
            P::Cvt(from) => {
                let from_sty = sty_of(*from);
                let v = self.value_of(block, &inst.srcs[0], from_sty)?;
                self.push(
                    block,
                    Inst::Cvt {
                        to: vty,
                        from: from_sty,
                        signed: from.is_signed(),
                        width: 1,
                        dst: d.expect("cvt has a destination"),
                        a: v,
                    },
                );
            }
            P::Ld(space) => {
                let addr = self.addr_of(block, &inst.srcs[0], *space)?;
                self.push(
                    block,
                    Inst::Load {
                        ty: vty,
                        space: space_of(*space),
                        dst: d.expect("ld has a destination"),
                        addr,
                    },
                );
            }
            P::St(space) => {
                if guarded.is_some() {
                    return Err(self.err("guarded store is not supported; use an explicit branch"));
                }
                let addr = self.addr_of(block, &inst.srcs[0], *space)?;
                let v = self.value_of(block, &inst.srcs[1], vty)?;
                self.push(block, Inst::Store { ty: vty, space: space_of(*space), addr, value: v });
            }
            P::Atom(space, op) => {
                if guarded.is_some() {
                    return Err(self.err("guarded atomic is not supported; use an explicit branch"));
                }
                let addr = self.addr_of(block, &inst.srcs[0], *space)?;
                let a = self.value_of(block, &inst.srcs[1], vty)?;
                let b = if inst.srcs.len() > 2 {
                    Some(self.value_of(block, &inst.srcs[2], vty)?)
                } else {
                    None
                };
                let kind = match op {
                    ptx::AtomOp::Add => ir::AtomKind::Add,
                    ptx::AtomOp::Min => ir::AtomKind::Min,
                    ptx::AtomOp::Max => ir::AtomKind::Max,
                    ptx::AtomOp::Exch => ir::AtomKind::Exch,
                    ptx::AtomOp::Cas => ir::AtomKind::Cas,
                };
                self.push(
                    block,
                    Inst::Atom {
                        ty: vty,
                        space: space_of(*space),
                        op: kind,
                        signed,
                        dst: d.expect("atom has a destination"),
                        addr,
                        a,
                        b,
                    },
                );
            }
            P::Vote(mode) => {
                let a = self.value_of(block, &inst.srcs[0], ir::STy::I1)?;
                let dst = d.expect("vote has a destination");
                match mode {
                    ptx::VoteMode::All => {
                        self.push(block, Inst::Vote { op: ir::ReduceOp::All, dst, a });
                    }
                    ptx::VoteMode::Any => {
                        self.push(block, Inst::Vote { op: ir::ReduceOp::Any, dst, a });
                    }
                    ptx::VoteMode::Uni => {
                        // uni = all(p) | all(!p).
                        let i1 = Type::scalar(ir::STy::I1);
                        let np = self.f.new_reg(i1);
                        self.push(block, Inst::Un { op: UnOp::Not, ty: i1, dst: np, a });
                        let t1 = self.f.new_reg(i1);
                        let t2 = self.f.new_reg(i1);
                        self.push(block, Inst::Vote { op: ir::ReduceOp::All, dst: t1, a });
                        self.push(
                            block,
                            Inst::Vote { op: ir::ReduceOp::All, dst: t2, a: Value::Reg(np) },
                        );
                        self.push(
                            block,
                            Inst::Bin {
                                op: BinOp::Or,
                                ty: i1,
                                signed: false,
                                dst,
                                a: Value::Reg(t1),
                                b: Value::Reg(t2),
                            },
                        );
                    }
                }
            }
            P::Bra(_) | P::Bar | P::Ret | P::Exit => {
                unreachable!("control instructions handled by the block walker")
            }
        }

        // Guard resolution: dst = select(guard, computed, old).
        if let (Some(g), Some((t, real))) = (guarded, dst) {
            if t != real {
                let cond = self.guard_value(block, g);
                let ty = self.f.reg_type(real);
                self.push(
                    block,
                    Inst::Select { ty, dst: real, cond, a: Value::Reg(t), b: Value::Reg(real) },
                );
            }
        }
        Ok(())
    }
}

/// Translate a validated kernel into canonical scalar IR.
///
/// # Errors
///
/// Returns [`CoreError::Ptx`] for validation failures and
/// [`CoreError::Unsupported`] for constructs outside the supported subset
/// (guarded stores/atomics, address-of in narrow registers, ...).
pub fn translate(kernel: &ptx::Kernel) -> Result<TranslatedKernel, CoreError> {
    // Nested sub-phases of the cache's "translate" phase, so cold-start
    // time splits into lowering vs. entry-point/liveness analysis in the
    // trace report. Free when tracing is off.
    let lower_phase = dpvk_trace::phase(&kernel.name, "translate:lower");
    ptx::validate_kernel(kernel)?;

    let mut f = Function::new(format!("{}::scalar", kernel.name), 1);
    // One IR register per PTX register.
    let reg_map: Vec<VReg> =
        kernel.registers.iter().map(|ri| f.new_reg(Type::scalar(sty_of(ri.ty)))).collect();

    // Pre-create IR blocks: each PTX block contributes 1 + (number of
    // barriers) blocks, in order.
    let mut block_start = Vec::with_capacity(kernel.blocks.len());
    {
        for pb in &kernel.blocks {
            let first = f.add_block(Block::new(pb.label.clone()));
            block_start.push(first);
            let barriers =
                pb.instructions.iter().filter(|i| matches!(i.opcode, ptx::Opcode::Bar)).count();
            for k in 0..barriers {
                f.add_block(Block::new(format!("{}$post_bar{}", pb.label, k)));
            }
        }
    }

    let mut tr = Translator {
        kernel,
        f,
        reg_map,
        block_start,
        barrier_edges: HashMap::new(),
        exit_block: None,
    };

    // Translate each PTX block.
    for (pi, pb) in kernel.blocks.iter().enumerate() {
        let mut cur = tr.block_start[pi];
        let next_ptx_block = tr.block_start.get(pi + 1).copied();
        let mut terminated = false;
        for inst in &pb.instructions {
            match &inst.opcode {
                ptx::Opcode::Bar => {
                    // Seal the segment with a barrier edge to the next one.
                    let cont = BlockId(cur.0 + 1);
                    tr.f.block_mut(cur).term = Term::Br(cont);
                    tr.barrier_edges.insert(cur, cont);
                    cur = cont;
                }
                ptx::Opcode::Bra(label) => {
                    let target_ptx = kernel
                        .block_by_label(label)
                        .expect("validated kernels have resolved labels");
                    let target = tr.block_start[target_ptx.index()];
                    match inst.guard {
                        Some(g) => {
                            let cond = tr.guard_value(cur, g);
                            let fall = next_ptx_block.ok_or_else(|| {
                                tr.err("guarded branch at the end of the final block")
                            })?;
                            tr.f.block_mut(cur).term = Term::CondBr { cond, taken: target, fall };
                        }
                        None => {
                            tr.f.block_mut(cur).term = Term::Br(target);
                        }
                    }
                    terminated = true;
                }
                ptx::Opcode::Ret | ptx::Opcode::Exit => {
                    match inst.guard {
                        Some(g) => {
                            let cond = tr.guard_value(cur, g);
                            let exit = match tr.exit_block {
                                Some(e) => e,
                                None => {
                                    let mut b = Block::new("$exit");
                                    b.term = Term::Ret;
                                    let e = tr.f.add_block(b);
                                    tr.exit_block = Some(e);
                                    e
                                }
                            };
                            let fall = next_ptx_block.ok_or_else(|| {
                                tr.err("guarded ret at the end of the final block")
                            })?;
                            tr.f.block_mut(cur).term = Term::CondBr { cond, taken: exit, fall };
                        }
                        None => {
                            tr.f.block_mut(cur).term = Term::Ret;
                        }
                    }
                    terminated = true;
                }
                _ => {
                    tr.translate_inst(cur, inst)?;
                }
            }
        }
        if !terminated {
            match next_ptx_block {
                Some(next) => tr.f.block_mut(cur).term = Term::Br(next),
                None => tr.f.block_mut(cur).term = Term::Ret,
            }
        }
    }

    let Translator { f, barrier_edges, .. } = tr;
    drop(lower_phase);
    let _analyze_phase = dpvk_trace::phase(&kernel.name, "translate:analyze");
    ir::verify(&f)?;

    // Entry points: kernel entry + barrier continuations + conditional
    // branch successors (pure-exit blocks excluded).
    let pure_exit_blocks: HashSet<BlockId> = f
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.insts.is_empty() && b.term == Term::Ret)
        .map(|(i, _)| BlockId(i as u32))
        .collect();
    let mut entry_points = vec![BlockId(0)];
    let mut seen: HashSet<BlockId> = entry_points.iter().copied().collect();
    let mut add_entry = |b: BlockId, entry_points: &mut Vec<BlockId>| {
        if !pure_exit_blocks.contains(&b) && seen.insert(b) {
            entry_points.push(b);
        }
    };
    for b in &f.blocks {
        match &b.term {
            Term::CondBr { taken, fall, .. } => {
                add_entry(*taken, &mut entry_points);
                add_entry(*fall, &mut entry_points);
            }
            Term::Br(t) => {
                // Barrier continuations.
                if let Some(from) =
                    barrier_edges.iter().find(|(_, &cont)| cont == *t).map(|(from, _)| *from)
                {
                    let _ = from;
                    add_entry(*t, &mut entry_points);
                }
            }
            _ => {}
        }
    }
    let entry_id_of: HashMap<BlockId, i64> =
        entry_points.iter().enumerate().map(|(i, &b)| (b, i as i64)).collect();

    // Spill slots for registers live into any entry point.
    let lv = ir::Liveness::compute(&f);
    let user_local_bytes = kernel.local_size();
    let mut spill_regs: Vec<VReg> = {
        let mut set: HashSet<VReg> = HashSet::new();
        for &e in &entry_points {
            set.extend(lv.live_in[e.index()].iter().copied());
        }
        let mut v: Vec<VReg> = set.into_iter().collect();
        v.sort();
        v
    };
    let spill_slots: HashMap<VReg, u64> = spill_regs
        .drain(..)
        .enumerate()
        .map(|(i, r)| (r, (user_local_bytes + i * 8) as u64))
        .collect();
    let local_bytes = user_local_bytes + spill_slots.len() * 8;

    let live_in: Vec<Vec<VReg>> = (0..f.blocks.len())
        .map(|i| {
            let mut v: Vec<VReg> = lv.live_in[i].iter().copied().collect();
            v.sort();
            v
        })
        .collect();

    Ok(TranslatedKernel {
        name: kernel.name.clone(),
        scalar: f,
        entry_points,
        entry_id_of,
        barrier_edges,
        pure_exit_blocks,
        spill_slots,
        user_local_bytes,
        local_bytes,
        shared_bytes: kernel.shared_size(),
        param_bytes: kernel.param_buffer_size(),
        live_in,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_ptx::parse_kernel;

    const VECADD: &str = r#"
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  mad.lo.u32 %r3, %ctaid.x, %ntid.x, %r1;
  ld.param.u32 %r4, [n];
  setp.ge.u32 %p1, %r3, %r4;
  @%p1 bra done;
  cvt.u64.u32 %rd1, %r3;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [a];
  add.u64 %rd2, %rd2, %rd1;
  ld.global.f32 %f1, [%rd2];
  ld.param.u64 %rd3, [b];
  add.u64 %rd3, %rd3, %rd1;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f3, %f1, %f2;
  ld.param.u64 %rd4, [c];
  add.u64 %rd4, %rd4, %rd1;
  st.global.f32 [%rd4], %f3;
done:
  ret;
}
"#;

    #[test]
    fn vecadd_translates_and_verifies() {
        let k = parse_kernel(VECADD).unwrap();
        let t = translate(&k).unwrap();
        ir::verify(&t.scalar).unwrap();
        assert_eq!(t.param_bytes, 28);
        assert_eq!(t.shared_bytes, 0);
        // Entry points: kernel entry, plus both successors of the guarded
        // branch. `done` is a pure-exit block so only the fallthrough body
        // counts.
        assert!(t.entry_points.len() >= 2);
        assert_eq!(t.entry_points[0], BlockId(0));
        assert!(t.pure_exit_blocks.contains(&t.scalar.block_by_label("done").unwrap()));
        assert_eq!(t.entry_id(t.scalar.block_by_label("done").unwrap()), ir::EXIT_ENTRY_ID);
    }

    #[test]
    fn barrier_splits_blocks() {
        let src = r#"
.kernel bar_test (.param .u64 p) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<2>;
entry:
  mov.u32 %r1, %tid.x;
  bar.sync 0;
  add.u32 %r1, %r1, 1;
  ret;
}
"#;
        let k = parse_kernel(src).unwrap();
        let t = translate(&k).unwrap();
        assert_eq!(t.barrier_edges.len(), 1);
        let (&from, &cont) = t.barrier_edges.iter().next().unwrap();
        assert_eq!(t.scalar.block(from).term, Term::Br(cont));
        // The continuation is an entry point with live state (%r1).
        assert!(t.entry_id_of.contains_key(&cont));
        assert!(!t.live_in[cont.index()].is_empty());
        // %r1's value crosses the barrier, so it has a spill slot.
        assert!(!t.spill_slots.is_empty());
    }

    #[test]
    fn guarded_instruction_becomes_select() {
        let src = r#"
.kernel g (.param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  ld.param.u32 %r1, [n];
  setp.lt.u32 %p1, %r1, 10;
  @%p1 add.u32 %r2, %r1, 5;
  st.global.u32 [0], %r2;
  ret;
}
"#;
        let k = parse_kernel(src).unwrap();
        let t = translate(&k).unwrap();
        let has_select =
            t.scalar.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i, Inst::Select { .. }));
        assert!(has_select, "{}", ir::print_function(&t.scalar));
    }

    #[test]
    fn guarded_ret_branches_to_exit_block() {
        let src = r#"
.kernel g (.param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  ld.param.u32 %r1, [n];
  setp.lt.u32 %p1, %r1, 10;
  @%p1 ret;
  st.global.u32 [0], %r1;
  ret;
}
"#;
        let k = parse_kernel(src).unwrap();
        let t = translate(&k).unwrap();
        // Entry block ends in CondBr to the synthetic exit.
        match &t.scalar.blocks[0].term {
            Term::CondBr { taken, .. } => {
                assert!(t.pure_exit_blocks.contains(taken));
            }
            other => panic!("expected CondBr, got {other:?}"),
        }
    }

    #[test]
    fn guarded_store_is_rejected() {
        let src = r#"
.kernel g (.param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  ld.param.u32 %r1, [n];
  setp.lt.u32 %p1, %r1, 10;
  @%p1 st.global.u32 [0], %r1;
  ret;
}
"#;
        let k = parse_kernel(src).unwrap();
        let err = translate(&k).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn shared_address_of_is_offset() {
        let src = r#"
.kernel s () {
  .shared .f32 tile[16];
  .reg .u64 %rd<3>;
  .reg .f32 %f<2>;
entry:
  mov.u64 %rd1, tile;
  add.u64 %rd1, %rd1, 8;
  ld.shared.f32 %f1, [%rd1];
  st.shared.f32 [tile+4], %f1;
  ret;
}
"#;
        let k = parse_kernel(src).unwrap();
        let t = translate(&k).unwrap();
        ir::verify(&t.scalar).unwrap();
        assert_eq!(t.shared_bytes, 64);
    }

    #[test]
    fn special_registers_become_ctx_reads() {
        let k = parse_kernel(VECADD).unwrap();
        let t = translate(&k).unwrap();
        let reads: Vec<&Inst> = t
            .scalar
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::CtxRead { .. }))
            .collect();
        // tid.x, ctaid.x, ntid.x.
        assert!(reads.len() >= 3);
        assert!(reads.iter().all(|i| matches!(i, Inst::CtxRead { lane: 0, .. })));
    }

    #[test]
    fn loop_kernel_entry_points() {
        let src = r#"
.kernel l (.param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, 0;
  ld.param.u32 %r2, [n];
head:
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra head;
  ret;
}
"#;
        let k = parse_kernel(src).unwrap();
        let t = translate(&k).unwrap();
        let head = t.scalar.block_by_label("head").unwrap();
        // `head` is a conditional-branch successor: it must be an entry
        // point and its live-ins (%r1, %r2) must have spill slots.
        assert!(t.entry_id_of.contains_key(&head));
        assert_eq!(t.live_in[head.index()].len(), 2);
        assert_eq!(t.spill_slots.len(), 2);
        assert_eq!(t.local_bytes, 16);
    }
}
