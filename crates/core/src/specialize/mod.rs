//! Adaptive specialization: profile-guided warp-width selection.
//!
//! The paper's compiler specializes each kernel for a warp width chosen
//! at launch time; this module closes the loop by *measuring* launches
//! and steering subsequent ones toward the width that models cheapest.
//! See [`policy`] for the state machine and its invariants.

pub mod policy;

pub use policy::{PolicySnapshot, PolicyTable};
