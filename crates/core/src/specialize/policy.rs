//! The width-selection policy: per-kernel launch profiles and the
//! explore/commit state machine behind `DPVK_ADAPT=on`.
//!
//! Lifecycle of one kernel under adaptation:
//!
//! 1. **Warm-up** — launches run at the caller's requested width while
//!    the policy accumulates modeled cycles. Nothing changes until the
//!    width has been measured for `hotness_threshold` launches.
//! 2. **Explore** — once hot, the policy picks the next unmeasured
//!    candidate width and schedules a *background* respecialization on
//!    the worker pool: the candidate's specialization is compiled off
//!    the launch path, and only once it is resident does
//!    [`PolicyTable::decide`] switch to it — at a launch boundary,
//!    never stalling an in-flight job. Each candidate then gets its own
//!    `hotness_threshold` launches of measurement.
//! 3. **Commit** — when every candidate has been measured, the width
//!    with the fewest modeled cycles per launch wins (ties go to the
//!    narrower width) and the kernel stops adapting.
//!
//! A candidate whose specialization fails to compile at full width
//! (the background task walks the same halving fallback ladder as the
//! launch path) is marked failed and never scheduled again, so a
//! refusing width cannot wedge the state machine.
//!
//! Correctness invariant: width only changes *what is profitable*,
//! never *what is computed* — results are bit-identical across widths
//! (enforced by the width × engine differential suite), so the policy
//! is free to switch widths between launches without synchronizing
//! with callers.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use dpvk_trace::timeline::SpanKind;

use crate::cache::{TranslationCache, Variant};
use crate::exec::stats::LaunchStats;
use crate::exec::worker::PoolShared;
use crate::exec::{AdaptConfig, AdaptMode};
use crate::flight;
use crate::sync::Mutex;

/// Cumulative modeled cost of launches observed at one width.
#[derive(Debug, Default, Clone, Copy)]
struct WidthScore {
    launches: u64,
    cycles: u64,
    threads: u64,
}

impl WidthScore {
    /// `self` is strictly cheaper per launch than `other`
    /// (cross-multiplied in `u128` so huge cycle counts cannot wrap).
    fn cheaper_than(&self, other: &WidthScore) -> bool {
        u128::from(self.cycles) * u128::from(other.launches)
            < u128::from(other.cycles) * u128::from(self.launches)
    }
}

/// A background respecialization in flight on the worker pool.
struct PendingRespec {
    /// Candidate width the task was asked to compile.
    width: u32,
    /// Set by the task when it finishes (success or failure).
    ready: Arc<AtomicBool>,
    /// Width the fallback ladder actually landed on; 0 = nothing
    /// compiled. Only meaningful once `ready` is set.
    achieved: Arc<AtomicU32>,
}

/// Per-kernel adaptation state.
#[derive(Default)]
struct KernelPolicy {
    /// Launches observed (any width, any mode ≠ off).
    launches: u64,
    /// Width launches are currently steered to, if the policy has
    /// switched away from the caller's request.
    active: Option<u32>,
    /// Final committed width; set once, ends exploration.
    chosen: Option<u32>,
    pending: Option<PendingRespec>,
    scores: HashMap<u32, WidthScore>,
    /// Candidate widths whose specialization refused to compile.
    failed: HashSet<u32>,
    /// Background respecializations scheduled for this kernel.
    respec_events: u64,
}

/// A device's adaptive width-policy table: one [`KernelPolicy`] per
/// kernel, fed by retiring launches and consulted at submission.
///
/// All methods take one short-held mutex; the policy never blocks a
/// launch on compilation — candidate specializations are built by a
/// pool task and adopted only after they are resident in the
/// translation cache.
#[derive(Default)]
pub struct PolicyTable {
    kernels: Mutex<HashMap<String, KernelPolicy>>,
}

/// Externally visible adaptation state for one kernel
/// (see [`Device::width_policy`](crate::Device::width_policy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicySnapshot {
    /// Launches observed for the kernel.
    pub launches: u64,
    /// Final committed width, once exploration has converged.
    pub chosen_width: Option<u32>,
    /// Width launches are currently steered to (equals `chosen_width`
    /// after commit; a candidate under measurement during explore).
    pub active_width: Option<u32>,
    /// Background respecializations scheduled so far.
    pub respec_events: u64,
}

impl PolicyTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The width the next launch of `kernel` should run at, given the
    /// caller requested `requested`. Identity unless the mode is
    /// [`AdaptMode::On`]. This is also where a finished background
    /// respecialization is promoted — the width switch is atomic at the
    /// launch boundary; in-flight launches keep their width.
    pub(crate) fn decide(&self, kernel: &str, requested: u32, adapt: &AdaptConfig) -> u32 {
        if adapt.mode != AdaptMode::On {
            return requested;
        }
        let mut map = self.kernels.lock();
        let kp = map.entry(kernel.to_string()).or_default();
        if let Some(p) = &kp.pending {
            if p.ready.load(Ordering::Acquire) {
                let want = p.width;
                let achieved = p.achieved.load(Ordering::Acquire);
                kp.pending = None;
                if achieved == want {
                    kp.active = Some(want);
                    dpvk_trace::add(dpvk_trace::Counter::WidthSwitches, 1);
                } else {
                    // The ladder fell back (or compiled nothing): the
                    // candidate width itself is unusable.
                    kp.failed.insert(want);
                }
            }
        }
        kp.chosen.or(kp.active).unwrap_or(requested)
    }

    /// Fold one retired launch into the profile and, when the current
    /// width has become hot, advance the explore/commit state machine.
    /// Called from the worker that retires the launch's last chunk.
    pub(crate) fn observe(
        &self,
        kernel: &str,
        width: u32,
        stats: &LaunchStats,
        adapt: &AdaptConfig,
        cache: &TranslationCache,
        pool: &PoolShared,
    ) {
        if adapt.mode == AdaptMode::Off {
            return;
        }
        let mut map = self.kernels.lock();
        let kp = map.entry(kernel.to_string()).or_default();
        kp.launches += 1;
        let score = kp.scores.entry(width).or_default();
        score.launches += 1;
        score.cycles += stats.exec.total_cycles();
        score.threads += stats.exec.thread_entries;
        if adapt.mode != AdaptMode::On || kp.chosen.is_some() || kp.pending.is_some() {
            return;
        }
        let threshold = u64::from(adapt.hotness_threshold);
        let current = kp.active.unwrap_or(width);
        if kp.scores.get(&current).map_or(0, |s| s.launches) < threshold {
            return;
        }
        let next = adapt.candidate_widths().into_iter().find(|w| {
            *w != current
                && !kp.failed.contains(w)
                && kp.scores.get(w).map_or(0, |s| s.launches) < threshold
        });
        match next {
            Some(cand) => Self::schedule_respec(kp, kernel, current, cand, cache, pool),
            None => {
                // Every candidate measured (or failed): commit the
                // cheapest per launch, ties to the narrower width.
                let mut widths: Vec<u32> = kp.scores.keys().copied().collect();
                widths.sort_unstable();
                let mut best: Option<(u32, WidthScore)> = None;
                for w in widths {
                    let s = kp.scores[&w];
                    if s.launches == 0 {
                        continue;
                    }
                    if best.is_none_or(|(_, b)| s.cheaper_than(&b)) {
                        best = Some((w, s));
                    }
                }
                if let Some((w, _)) = best {
                    kp.chosen = Some(w);
                    kp.active = Some(w);
                    dpvk_trace::record_width_choice(kernel, w);
                }
            }
        }
    }

    /// Queue a background task that compiles the candidate width's
    /// specialization off the launch path. The task walks the same
    /// halving fallback ladder as the launch path, reports the width it
    /// landed on, and emits a [`SpanKind::Respecialize`] span on the
    /// worker track it ran on.
    fn schedule_respec(
        kp: &mut KernelPolicy,
        kernel: &str,
        from: u32,
        cand: u32,
        cache: &TranslationCache,
        pool: &PoolShared,
    ) {
        let ready = Arc::new(AtomicBool::new(false));
        let achieved = Arc::new(AtomicU32::new(0));
        kp.pending = Some(PendingRespec {
            width: cand,
            ready: Arc::clone(&ready),
            achieved: Arc::clone(&achieved),
        });
        kp.respec_events += 1;
        dpvk_trace::add(dpvk_trace::Counter::RespecEvents, 1);
        dpvk_trace::record_respec(kernel, from, cand, kp.launches);
        let cache = cache.clone();
        let name = kernel.to_string();
        pool.submit_task(Box::new(move || {
            let start = flight::span_start();
            let mut w = cand;
            let landed = loop {
                match cache.get(&name, w, Variant::Dynamic) {
                    Ok(_) => break w,
                    Err(_) if w > 1 => w /= 2,
                    Err(_) => break 0,
                }
            };
            achieved.store(landed, Ordering::Release);
            if let Some(t0) = start {
                flight::emit_span(SpanKind::Respecialize, &name, t0, u64::from(cand));
            }
            ready.store(true, Ordering::Release);
        }));
    }

    /// Snapshot the adaptation state of `kernel` (zeroed defaults for a
    /// kernel the table has never seen).
    pub fn snapshot(&self, kernel: &str) -> PolicySnapshot {
        let map = self.kernels.lock();
        map.get(kernel).map_or_else(PolicySnapshot::default, |kp| PolicySnapshot {
            launches: kp.launches,
            chosen_width: kp.chosen,
            active_width: kp.active,
            respec_events: kp.respec_events,
        })
    }
}

impl std::fmt::Debug for PolicyTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.kernels.lock();
        f.debug_struct("PolicyTable").field("kernels", &map.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_cycles(cycles: u64) -> LaunchStats {
        let mut s = LaunchStats::default();
        s.exec.cycles_body = cycles;
        s.exec.thread_entries = 4;
        s
    }

    #[test]
    fn off_and_observe_modes_never_steer() {
        let table = PolicyTable::new();
        let off = AdaptConfig::off();
        let observe = AdaptConfig::observe();
        assert_eq!(table.decide("k", 4, &off), 4);
        assert_eq!(table.decide("k", 4, &observe), 4);
        // Observe mode still accumulates a profile.
        let cache = TranslationCache::with_persist(dpvk_vm::MachineModel::sandybridge_sse(), None);
        let pool = crate::exec::worker::WorkerPool::new(1);
        for _ in 0..3 {
            table.observe("k", 4, &stats_with_cycles(10), &observe, &cache, pool.shared());
        }
        let snap = table.snapshot("k");
        assert_eq!(snap.launches, 3);
        assert_eq!(snap.chosen_width, None);
        assert_eq!(snap.respec_events, 0);
    }

    #[test]
    fn cheaper_than_is_per_launch_and_overflow_safe() {
        let a = WidthScore { launches: 2, cycles: 10, threads: 0 };
        let b = WidthScore { launches: 1, cycles: 6, threads: 0 };
        // 5/launch vs 6/launch.
        assert!(a.cheaper_than(&b));
        assert!(!b.cheaper_than(&a));
        let huge = WidthScore { launches: u64::MAX, cycles: u64::MAX, threads: 0 };
        let one = WidthScore { launches: 1, cycles: 1, threads: 0 };
        // ~1/launch each way; strict comparison, no panic.
        assert!(!huge.cheaper_than(&one) || !one.cheaper_than(&huge));
    }

    #[test]
    fn snapshot_of_unknown_kernel_is_zeroed() {
        let table = PolicyTable::new();
        assert_eq!(table.snapshot("nope"), PolicySnapshot::default());
    }
}
