//! Errors of the dynamic compilation pipeline and runtime.

use std::fmt;

use dpvk_ir::VerifyError;
use dpvk_ptx::PtxError;
use dpvk_vm::VmError;

/// Where inside a launch a fault happened: which kernel, CTA, entry
/// point, and threads were running when the VM raised an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultContext {
    /// Kernel name.
    pub kernel: String,
    /// Flat CTA index within the grid.
    pub cta: u32,
    /// Resume entry point the faulting warp was executing (0 = kernel
    /// start).
    pub warp_entry: i64,
    /// Flat thread indices (within the CTA) that formed the warp.
    pub thread_ids: Vec<u32>,
}

impl fmt::Display for FaultContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel `{}`, CTA {}, entry {}, threads {:?}",
            self.kernel, self.cta, self.warp_entry, self.thread_ids
        )
    }
}

/// An environment variable held a value that does not parse.
///
/// Configuration knobs read from the environment fail loudly at startup
/// (the same contract as `DPVK_ENGINE`'s `UnknownEngineError`): a typo'd
/// `DPVK_POOL_WORKERS` or `DPVK_CACHE_CAP` is a configuration bug, and
/// silently falling back to a default hides it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidEnvValue {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The offending value.
    pub value: String,
    /// What the variable expects, for the error message.
    pub expected: &'static str,
}

impl fmt::Display for InvalidEnvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value `{}`: expected {}", self.value, self.expected)
    }
}

impl std::error::Error for InvalidEnvValue {}

/// Read an integer knob from the environment. `Ok(None)` when unset;
/// panics (startup configuration bug) when set to something unparsable.
pub(crate) fn env_u64(var: &'static str, expected: &'static str) -> Option<u64> {
    let value = std::env::var(var).ok()?;
    match value.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{var}: {}", InvalidEnvValue { var, value, expected }),
    }
}

/// Error from translation, vectorization, caching or kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Front-end (parse/validate) failure.
    Ptx(PtxError),
    /// IR verification failure after a transformation.
    Verify(VerifyError),
    /// Runtime failure inside the vector machine.
    Vm(VmError),
    /// Runtime failure inside the vector machine, with full provenance:
    /// the execution manager wraps every [`VmError`] it sees in the
    /// context of the warp that raised it.
    Fault {
        /// Where the fault happened.
        context: FaultContext,
        /// The underlying VM error.
        source: VmError,
    },
    /// A worker thread panicked while executing a CTA; the panic was
    /// contained by the execution manager and sibling workers were
    /// cancelled.
    WorkerPanic {
        /// Index of the panicking worker thread.
        worker: usize,
        /// Flat CTA index the worker was executing.
        cta: u32,
        /// Stringified panic payload.
        payload: String,
    },
    /// A construct the translator does not support.
    Unsupported {
        /// Kernel name.
        kernel: String,
        /// Explanation.
        message: String,
    },
    /// Kernel or specialization not found.
    NotFound(String),
    /// Launch configuration problem (zero-sized grid, oversized CTA, ...).
    BadLaunch(String),
    /// Device memory exhausted or bad pointer.
    Memory(String),
    /// Device heap genuinely out of space: the request could not be
    /// satisfied even after evicting every idle block. Distinct from
    /// [`CoreError::Memory`] (which covers arithmetic overflow and bad
    /// pointers) so serving layers can shed load on pool exhaustion
    /// without misclassifying caller bugs.
    MemoryExhausted {
        /// Bytes the caller asked for.
        requested: usize,
        /// Bytes currently live on the heap.
        live: u64,
        /// Total heap capacity in bytes.
        capacity: u64,
    },
}

impl CoreError {
    /// Whether this error is (or wraps) a cooperative cancellation, as
    /// opposed to a genuine fault.
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self,
            CoreError::Vm(VmError::Cancelled) | CoreError::Fault { source: VmError::Cancelled, .. }
        )
    }

    /// Whether this error is (or wraps) a launch-deadline expiry.
    pub fn is_deadline(&self) -> bool {
        matches!(
            self,
            CoreError::Vm(VmError::Deadline) | CoreError::Fault { source: VmError::Deadline, .. }
        )
    }

    /// Stable machine-readable error code.
    ///
    /// Wire protocols and trace events classify failures by this string
    /// instead of matching [`Display`](fmt::Display) output, so the
    /// human-readable messages can evolve freely. Codes are part of the
    /// serving API: never rename one, only add.
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Ptx(_) => "ptx",
            CoreError::Verify(_) => "verify",
            CoreError::Vm(e) | CoreError::Fault { source: e, .. } => match e {
                VmError::Cancelled => "cancelled",
                VmError::Deadline => "deadline",
                _ => "vm_fault",
            },
            CoreError::WorkerPanic { .. } => "worker_panic",
            CoreError::Unsupported { .. } => "unsupported",
            CoreError::NotFound(_) => "not_found",
            CoreError::BadLaunch(_) => "bad_launch",
            CoreError::Memory(_) => "memory",
            CoreError::MemoryExhausted { .. } => "memory_exhausted",
        }
    }

    /// Whether a retry of the same launch may plausibly succeed.
    ///
    /// Transient failures — a contained worker panic, or a deadline
    /// expiry that may have been caused by momentary contention — are
    /// retryable; everything else (parse/verify errors, genuine VM
    /// faults, cancellation by the caller) is deterministic or
    /// caller-initiated and retrying would only repeat it.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CoreError::WorkerPanic { .. }) || self.is_deadline()
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ptx(e) => write!(f, "front-end error: {e}"),
            CoreError::Verify(e) => write!(f, "IR verification failed: {e}"),
            CoreError::Vm(e) => write!(f, "execution error: {e}"),
            CoreError::Fault { context, source } => {
                write!(f, "execution fault at {context}: {source}")
            }
            CoreError::WorkerPanic { worker, cta, payload } => {
                write!(f, "worker {worker} panicked while executing CTA {cta}: {payload}")
            }
            CoreError::Unsupported { kernel, message } => {
                write!(f, "unsupported construct in `{kernel}`: {message}")
            }
            CoreError::NotFound(what) => write!(f, "not found: {what}"),
            CoreError::BadLaunch(m) => write!(f, "bad launch configuration: {m}"),
            CoreError::Memory(m) => write!(f, "device memory error: {m}"),
            CoreError::MemoryExhausted { requested, live, capacity } => write!(
                f,
                "device heap exhausted: {requested} bytes requested, \
                 {live} of {capacity} live after eviction"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ptx(e) => Some(e),
            CoreError::Verify(e) => Some(e),
            CoreError::Vm(e) => Some(e),
            CoreError::Fault { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<PtxError> for CoreError {
    fn from(e: PtxError) -> Self {
        CoreError::Ptx(e)
    }
}

impl From<VerifyError> for CoreError {
    fn from(e: VerifyError) -> Self {
        CoreError::Verify(e)
    }
}

impl From<VmError> for CoreError {
    fn from(e: VmError) -> Self {
        CoreError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = PtxError::UndefinedLabel("x".into()).into();
        assert!(e.to_string().contains("front-end"));
        let e: CoreError = VmError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        let e = CoreError::Unsupported { kernel: "k".into(), message: "guarded store".into() };
        assert!(e.to_string().contains("k"));
    }

    #[test]
    fn fault_display_carries_full_provenance() {
        let e = CoreError::Fault {
            context: FaultContext {
                kernel: "vecadd".into(),
                cta: 3,
                warp_entry: 2,
                thread_ids: vec![4, 5, 6, 7],
            },
            source: VmError::DivisionByZero,
        };
        let s = e.to_string();
        for needle in ["vecadd", "CTA 3", "entry 2", "[4, 5, 6, 7]", "division"] {
            assert!(s.contains(needle), "missing `{needle}` in `{s}`");
        }
    }

    #[test]
    fn worker_panic_display_names_worker_and_cta() {
        let e = CoreError::WorkerPanic { worker: 1, cta: 9, payload: "boom".into() };
        let s = e.to_string();
        assert!(s.contains("worker 1") && s.contains("CTA 9") && s.contains("boom"), "{s}");
    }

    #[test]
    fn cancellation_predicates() {
        let ctx = FaultContext { kernel: "k".into(), cta: 0, warp_entry: 0, thread_ids: vec![] };
        assert!(CoreError::Vm(VmError::Cancelled).is_cancelled());
        assert!(
            CoreError::Fault { context: ctx.clone(), source: VmError::Cancelled }.is_cancelled()
        );
        assert!(!CoreError::Vm(VmError::DivisionByZero).is_cancelled());
        assert!(CoreError::Vm(VmError::Deadline).is_deadline());
        assert!(CoreError::Fault { context: ctx, source: VmError::Deadline }.is_deadline());
        assert!(!CoreError::Vm(VmError::Cancelled).is_deadline());
    }

    #[test]
    fn codes_are_stable_and_classify_retryability() {
        let ctx = FaultContext { kernel: "k".into(), cta: 0, warp_entry: 0, thread_ids: vec![] };
        let cases: Vec<(CoreError, &str, bool)> = vec![
            (PtxError::UndefinedLabel("x".into()).into(), "ptx", false),
            (
                CoreError::Verify(VerifyError {
                    function: "f".into(),
                    block: "b".into(),
                    message: "m".into(),
                }),
                "verify",
                false,
            ),
            (CoreError::Vm(VmError::DivisionByZero), "vm_fault", false),
            (CoreError::Vm(VmError::Cancelled), "cancelled", false),
            (CoreError::Vm(VmError::Deadline), "deadline", true),
            (
                CoreError::Fault { context: ctx.clone(), source: VmError::Deadline },
                "deadline",
                true,
            ),
            (CoreError::Fault { context: ctx, source: VmError::DivisionByZero }, "vm_fault", false),
            (
                CoreError::WorkerPanic { worker: 0, cta: 0, payload: "p".into() },
                "worker_panic",
                true,
            ),
            (
                CoreError::Unsupported { kernel: "k".into(), message: "m".into() },
                "unsupported",
                false,
            ),
            (CoreError::NotFound("k".into()), "not_found", false),
            (CoreError::BadLaunch("m".into()), "bad_launch", false),
            (CoreError::Memory("m".into()), "memory", false),
            (
                CoreError::MemoryExhausted { requested: 64, live: 0, capacity: 32 },
                "memory_exhausted",
                false,
            ),
        ];
        for (err, code, retryable) in cases {
            assert_eq!(err.code(), code, "{err}");
            assert_eq!(err.is_retryable(), retryable, "{err}");
        }
    }
}
