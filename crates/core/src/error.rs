//! Errors of the dynamic compilation pipeline and runtime.

use std::fmt;

use dpvk_ir::VerifyError;
use dpvk_ptx::PtxError;
use dpvk_vm::VmError;

/// Error from translation, vectorization, caching or kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Front-end (parse/validate) failure.
    Ptx(PtxError),
    /// IR verification failure after a transformation.
    Verify(VerifyError),
    /// Runtime failure inside the vector machine.
    Vm(VmError),
    /// A construct the translator does not support.
    Unsupported {
        /// Kernel name.
        kernel: String,
        /// Explanation.
        message: String,
    },
    /// Kernel or specialization not found.
    NotFound(String),
    /// Launch configuration problem (zero-sized grid, oversized CTA, ...).
    BadLaunch(String),
    /// Device memory exhausted or bad pointer.
    Memory(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ptx(e) => write!(f, "front-end error: {e}"),
            CoreError::Verify(e) => write!(f, "IR verification failed: {e}"),
            CoreError::Vm(e) => write!(f, "execution error: {e}"),
            CoreError::Unsupported { kernel, message } => {
                write!(f, "unsupported construct in `{kernel}`: {message}")
            }
            CoreError::NotFound(what) => write!(f, "not found: {what}"),
            CoreError::BadLaunch(m) => write!(f, "bad launch configuration: {m}"),
            CoreError::Memory(m) => write!(f, "device memory error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ptx(e) => Some(e),
            CoreError::Verify(e) => Some(e),
            CoreError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PtxError> for CoreError {
    fn from(e: PtxError) -> Self {
        CoreError::Ptx(e)
    }
}

impl From<VerifyError> for CoreError {
    fn from(e: VerifyError) -> Self {
        CoreError::Verify(e)
    }
}

impl From<VmError> for CoreError {
    fn from(e: VmError) -> Self {
        CoreError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = PtxError::UndefinedLabel("x".into()).into();
        assert!(e.to_string().contains("front-end"));
        let e: CoreError = VmError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        let e = CoreError::Unsupported { kernel: "k".into(), message: "guarded store".into() };
        assert!(e.to_string().contains("k"));
    }
}
