//! The dynamic translation cache (paper, Section 5.1).
//!
//! Kernels are registered as PTX-like modules, translated lazily to scalar
//! IR, and specialized per `(warp size, variant)` on first request.
//! Execution managers running in worker threads query the cache under a
//! single lock — matching the paper's "execution managers block while
//! contending for a lock on the dynamic translation cache", with
//! compilation performed in the querying thread.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::sync::Mutex;

use dpvk_ptx as ptx;
use dpvk_vm::{CostInfo, MachineModel};

use crate::error::CoreError;
use crate::translate::{translate, TranslatedKernel};
use crate::vectorize::{specialize, SpecializeOptions, Specialized};

/// Which family of specialization is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Serialized scalar baseline: direct branches, yields only at
    /// barriers (always width 1).
    Baseline,
    /// Dynamic-warp-formation specialization (cooperative scalar at
    /// width 1).
    Dynamic,
    /// Static warp formation with thread-invariant elimination (width 1
    /// falls back to the baseline code).
    StaticTie,
}

impl Variant {
    /// Stable label used in trace reports and human output.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::Dynamic => "dynamic",
            Variant::StaticTie => "static_tie",
        }
    }

    fn options(self, warp_size: u32) -> SpecializeOptions {
        match self {
            Variant::Baseline => SpecializeOptions::baseline(),
            Variant::Dynamic => SpecializeOptions::dynamic(warp_size),
            Variant::StaticTie => {
                if warp_size == 1 {
                    SpecializeOptions::baseline()
                } else {
                    SpecializeOptions::static_tie(warp_size)
                }
            }
        }
    }
}

/// A compiled, cost-analyzed kernel specialization ready for execution.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The specialized function.
    pub function: Arc<dpvk_ir::Function>,
    /// Cost analysis under the cache's machine model.
    pub cost: CostInfo,
    /// Static instruction count before optimization.
    pub pre_opt_instructions: usize,
    /// Static instruction count after optimization.
    pub post_opt_instructions: usize,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Specialization requests served from the cache.
    pub hits: u64,
    /// Requests that triggered compilation.
    pub misses: u64,
    /// Total nanoseconds spent compiling.
    pub compile_ns: u64,
    /// Specializations that failed to compile (verify error, unsupported
    /// construct). Each failed key is recorded once; repeat requests are
    /// answered from the failure memo.
    pub spec_failures: u64,
    /// Requests downgraded to the scalar baseline because the requested
    /// specialization had failed.
    pub downgrades: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queries = self.hits + self.misses;
        let hit_rate = if queries == 0 { 0.0 } else { 100.0 * self.hits as f64 / queries as f64 };
        write!(
            f,
            "cache: {} queries ({} hits, {} misses, {hit_rate:.1}% hit rate), {:.2} ms compiling",
            queries,
            self.hits,
            self.misses,
            self.compile_ns as f64 / 1e6
        )?;
        if self.spec_failures != 0 || self.downgrades != 0 {
            write!(
                f,
                ", {} failed specializations, {} downgrades to scalar",
                self.spec_failures, self.downgrades
            )?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct Inner {
    translated: HashMap<String, Arc<TranslatedKernel>>,
    compiled: HashMap<(String, u32, Variant), Arc<CompiledKernel>>,
    /// Specializations that failed to compile, memoized so each launch
    /// does not retry (and re-pay for) a known-bad compilation.
    failed: HashMap<(String, u32, Variant), CoreError>,
    stats: CacheStats,
}

/// The translation cache: kernels in, specialized functions out.
pub struct TranslationCache {
    model: MachineModel,
    kernels: Mutex<HashMap<String, ptx::Kernel>>,
    inner: Mutex<Inner>,
}

impl TranslationCache {
    /// Create an empty cache compiling for `model`.
    pub fn new(model: MachineModel) -> Self {
        TranslationCache {
            model,
            kernels: Mutex::new(HashMap::new()),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The machine model this cache compiles for.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Register every kernel of a module (later registrations shadow
    /// earlier kernels with the same name).
    pub fn register_module(&self, module: &ptx::Module) {
        let mut k = self.kernels.lock();
        for kernel in &module.kernels {
            k.insert(kernel.name.clone(), kernel.clone());
        }
    }

    /// The translated (canonical scalar) form of `kernel`, translating on
    /// first use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unregistered kernels and any
    /// translation error otherwise.
    pub fn translated(&self, kernel: &str) -> Result<Arc<TranslatedKernel>, CoreError> {
        {
            let inner = self.inner.lock();
            if let Some(t) = inner.translated.get(kernel) {
                return Ok(Arc::clone(t));
            }
        }
        let ptx_kernel = {
            let kernels = self.kernels.lock();
            kernels
                .get(kernel)
                .cloned()
                .ok_or_else(|| CoreError::NotFound(format!("kernel `{kernel}`")))?
        };
        let t = {
            let _phase = dpvk_trace::phase(kernel, "translate");
            Arc::new(translate(&ptx_kernel)?)
        };
        let mut inner = self.inner.lock();
        Ok(Arc::clone(inner.translated.entry(kernel.to_string()).or_insert(t)))
    }

    /// The specialization of `kernel` for `(warp_size, variant)`,
    /// compiling on a miss.
    ///
    /// # Errors
    ///
    /// Propagates translation/specialization errors; see
    /// [`TranslationCache::translated`].
    pub fn get(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Result<Arc<CompiledKernel>, CoreError> {
        let key = (kernel.to_string(), warp_size, variant);
        {
            let mut inner = self.inner.lock();
            if let Some(c) = inner.compiled.get(&key) {
                let c = Arc::clone(c);
                inner.stats.hits += 1;
                dpvk_trace::record_cache_query(kernel, warp_size, variant.label(), true);
                return Ok(c);
            }
            if let Some(e) = inner.failed.get(&key) {
                return Err(e.clone());
            }
        }
        dpvk_trace::record_cache_query(kernel, warp_size, variant.label(), false);
        let tk = self.translated(kernel)?;
        let start = Instant::now();
        let specialized = {
            let _phase = dpvk_trace::phase(kernel, "specialize");
            self.specialize_checked(&tk, kernel, warp_size, variant)
        };
        let Specialized { function, pre_opt_instructions, post_opt_instructions, .. } =
            match specialized {
                Ok(s) => s,
                Err(e) => {
                    // Memoize compile-type failures so later queries (and
                    // the downgrade path) answer without recompiling.
                    if matches!(e, CoreError::Verify(_) | CoreError::Unsupported { .. }) {
                        dpvk_trace::add(dpvk_trace::Counter::SpecFailures, 1);
                        dpvk_trace::record_downgrade(
                            kernel,
                            warp_size,
                            variant.label(),
                            &e.to_string(),
                        );
                        let mut inner = self.inner.lock();
                        inner.stats.spec_failures += 1;
                        inner.failed.entry(key).or_insert_with(|| e.clone());
                    }
                    return Err(e);
                }
            };
        let cost = CostInfo::analyze(&function, &self.model);
        let compiled = Arc::new(CompiledKernel {
            function: Arc::new(function),
            cost,
            pre_opt_instructions,
            post_opt_instructions,
        });
        let elapsed = start.elapsed().as_nanos() as u64;
        dpvk_trace::record_compile(kernel, warp_size, variant.label(), elapsed);
        let mut inner = self.inner.lock();
        inner.stats.misses += 1;
        inner.stats.compile_ns += elapsed;
        Ok(Arc::clone(inner.compiled.entry(key).or_insert(compiled)))
    }

    /// Run `specialize`, with the fault-injection hook (forced verify
    /// failure for a chosen width) applied first when enabled.
    fn specialize_checked(
        &self,
        tk: &TranslatedKernel,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Result<Specialized, CoreError> {
        #[cfg(feature = "fault-inject")]
        if let Some(e) = crate::faults::injected_specialize_failure(kernel, warp_size, variant) {
            return Err(e);
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = kernel;
        specialize(tk, &variant.options(warp_size))
    }

    /// Like [`TranslationCache::get`], but degrade gracefully: when the
    /// requested specialization fails to *compile* (verify error or
    /// unsupported construct), fall back to the width-1 scalar baseline
    /// instead of failing the launch. Returns the compiled kernel plus
    /// `true` when a downgrade happened.
    ///
    /// Entry-point numbering is assigned during translation on the
    /// canonical scalar kernel and shared by every variant, so resuming a
    /// grid mid-flight on the baseline function is safe.
    ///
    /// # Errors
    ///
    /// Propagates non-compile failures (unregistered kernel, parse
    /// errors), and any failure of the baseline itself.
    pub fn get_or_downgrade(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Result<(Arc<CompiledKernel>, bool), CoreError> {
        match self.get(kernel, warp_size, variant) {
            Ok(c) => Ok((c, false)),
            Err(CoreError::Verify(_) | CoreError::Unsupported { .. })
                if !(warp_size == 1 && variant == Variant::Baseline) =>
            {
                self.inner.lock().stats.downgrades += 1;
                let c = self.get(kernel, 1, Variant::Baseline)?;
                Ok((c, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// The registered declaration of `kernel` (signature, register file,
    /// variables).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unregistered kernels.
    pub fn kernel_declaration(&self, kernel: &str) -> Result<ptx::Kernel, CoreError> {
        self.kernels
            .lock()
            .get(kernel)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("kernel `{kernel}`")))
    }
}

impl std::fmt::Debug for TranslationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TranslationCache")
            .field("model", &self.model.name)
            .field("translated", &inner.translated.len())
            .field("compiled", &inner.compiled.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
.kernel k (.param .u64 p, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [n];
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra done;
  add.u32 %r1, %r1, 1;
done:
  ret;
}
"#;

    fn cache_with_kernel() -> TranslationCache {
        let cache = TranslationCache::new(MachineModel::sandybridge_sse());
        cache.register_module(&ptx::parse_module(SRC).unwrap());
        cache
    }

    #[test]
    fn miss_then_hit() {
        let cache = cache_with_kernel();
        let a = cache.get("k", 4, Variant::Dynamic).unwrap();
        let b = cache.get("k", 4, Variant::Dynamic).unwrap();
        assert!(Arc::ptr_eq(&a.function, &b.function));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.compile_ns > 0);
    }

    #[test]
    fn distinct_specializations_are_distinct_entries() {
        let cache = cache_with_kernel();
        let a = cache.get("k", 2, Variant::Dynamic).unwrap();
        let b = cache.get("k", 4, Variant::Dynamic).unwrap();
        let c = cache.get("k", 4, Variant::StaticTie).unwrap();
        assert_eq!(a.function.warp_size, 2);
        assert_eq!(b.function.warp_size, 4);
        assert_eq!(c.function.warp_size, 4);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn unknown_kernel_is_not_found() {
        let cache = cache_with_kernel();
        assert!(matches!(cache.get("absent", 4, Variant::Dynamic), Err(CoreError::NotFound(_))));
    }

    #[test]
    fn get_or_downgrade_passes_through_on_success() {
        let cache = cache_with_kernel();
        let (c, downgraded) = cache.get_or_downgrade("k", 4, Variant::Dynamic).unwrap();
        assert!(!downgraded);
        assert_eq!(c.function.warp_size, 4);
        let stats = cache.stats();
        assert_eq!(stats.downgrades, 0);
        assert_eq!(stats.spec_failures, 0);
    }

    #[test]
    fn get_or_downgrade_propagates_not_found() {
        let cache = cache_with_kernel();
        assert!(matches!(
            cache.get_or_downgrade("absent", 4, Variant::Dynamic),
            Err(CoreError::NotFound(_))
        ));
    }

    #[test]
    fn concurrent_queries_converge() {
        let cache = Arc::new(cache_with_kernel());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for w in [1u32, 2, 4] {
                        cache.get("k", w, Variant::Dynamic).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 24);
        assert!(stats.misses >= 3);
    }
}
