//! The dynamic translation cache (paper, Section 5.1).
//!
//! Kernels are registered as PTX-like modules, translated lazily to scalar
//! IR, and specialized per `(warp size, variant)` on first request.
//!
//! The paper notes that "execution managers block while contending for a
//! lock on the dynamic translation cache" — and that this contention must
//! be amortized away for the steady state to run at hardware speed. The
//! compiled-specialization table is therefore read-mostly: lookups take a
//! shared read lock with a borrowed key (no allocation per query) and
//! statistics are relaxed atomics, so warm queries never serialize
//! against each other. A mutex is held only on the compilation path, and
//! pool workers additionally keep long-lived resolution memos (see
//! `exec::worker::DispatchMemo`) so steady-state dispatch touches no
//! shared state at all.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::sync::{Mutex, RwLock};

use dpvk_ptx as ptx;
use dpvk_vm::{BytecodeProgram, CostInfo, FrameLayout, JitProgram, MachineModel};

use dpvk_trace::timeline::SpanKind;

use crate::error::CoreError;
use crate::flight;
use crate::persist::{PersistConfig, PersistStore};
use crate::translate::{translate, TranslatedKernel};
use crate::vectorize::{specialize, SpecializeOptions, Specialized};

/// Which family of specialization is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Serialized scalar baseline: direct branches, yields only at
    /// barriers (always width 1).
    Baseline,
    /// Dynamic-warp-formation specialization (cooperative scalar at
    /// width 1).
    Dynamic,
    /// Static warp formation with thread-invariant elimination (width 1
    /// falls back to the baseline code).
    StaticTie,
}

impl Variant {
    /// Stable label used in trace reports and human output.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::Dynamic => "dynamic",
            Variant::StaticTie => "static_tie",
        }
    }

    /// Parse a label produced by [`Variant::label`]; `None` for anything
    /// else (e.g. a corrupt or future-format width manifest).
    pub(crate) fn from_label(label: &str) -> Option<Variant> {
        match label {
            "baseline" => Some(Variant::Baseline),
            "dynamic" => Some(Variant::Dynamic),
            "static_tie" => Some(Variant::StaticTie),
            _ => None,
        }
    }

    fn options(self, warp_size: u32) -> SpecializeOptions {
        match self {
            Variant::Baseline => SpecializeOptions::baseline(),
            Variant::Dynamic => SpecializeOptions::dynamic(warp_size),
            Variant::StaticTie => {
                if warp_size == 1 {
                    SpecializeOptions::baseline()
                } else {
                    SpecializeOptions::static_tie(warp_size)
                }
            }
        }
    }
}

/// A compiled, cost-analyzed kernel specialization ready for execution.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The specialized function.
    pub function: Arc<dpvk_ir::Function>,
    /// Cost analysis under the cache's machine model.
    pub cost: CostInfo,
    /// Register frame layout, computed once here so the interpreter can
    /// execute against a flat reusable frame with no per-warp setup.
    pub frame: FrameLayout,
    /// The function pre-decoded to linear bytecode, built once here so
    /// the default engine's inner loop is a flat `match` over µops with
    /// no per-warp tree walk.
    pub bytecode: BytecodeProgram,
    /// Static instruction count before optimization.
    pub pre_opt_instructions: usize,
    /// Static instruction count after optimization.
    pub post_opt_instructions: usize,
    /// The bytecode JIT-compiled to native x86-64, emitted lazily on the
    /// first `Engine::Jit` warp and cached here alongside the bytecode
    /// (`None` once emission has been tried and declined).
    jit: OnceLock<Option<Arc<JitProgram>>>,
}

impl CompiledKernel {
    /// The native-code form of this specialization, emitting it on first
    /// request. Returns `None` when the host cannot run JIT code or the
    /// program has no native lowering; callers fall back to
    /// [`CompiledKernel::bytecode`].
    pub fn jit(&self, kernel: &str) -> Option<&Arc<JitProgram>> {
        self.jit
            .get_or_init(|| {
                let span = flight::span_start();
                let _phase = dpvk_trace::phase(kernel, "jit:emit");
                let program = dpvk_vm::jit_compile(&self.bytecode).map(Arc::new);
                if let Some(jit) = &program {
                    let s = jit.emit_stats();
                    dpvk_trace::add(dpvk_trace::Counter::JitCodeBytes, s.code_bytes);
                    dpvk_trace::add(dpvk_trace::Counter::JitTemplateUops, s.template_uops);
                    dpvk_trace::add(dpvk_trace::Counter::JitHelperUops, s.helper_uops);
                    dpvk_trace::add(dpvk_trace::Counter::JitWideHelperUops, s.wide_helper_uops);
                    if let Some(start) = span {
                        flight::emit_span(SpanKind::JitEmit, kernel, start, s.code_bytes);
                    }
                }
                program
            })
            .as_ref()
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Specialization requests served from the cache.
    pub hits: u64,
    /// Requests that triggered compilation.
    pub misses: u64,
    /// Total nanoseconds spent compiling.
    pub compile_ns: u64,
    /// Specializations that failed to compile (verify error, unsupported
    /// construct). Each failed key is recorded once; repeat requests are
    /// answered from the failure memo.
    pub spec_failures: u64,
    /// Requests downgraded to the scalar baseline because the requested
    /// specialization had failed.
    pub downgrades: u64,
    /// Nanoseconds of [`compile_ns`](CacheStats::compile_ns) spent in
    /// PTX→IR translation (charged once per kernel, not per variant).
    pub translate_ns: u64,
    /// Nanoseconds spent specializing (warp formation, TIE, verify).
    pub specialize_ns: u64,
    /// Nanoseconds spent decoding specialized IR to bytecode.
    pub decode_ns: u64,
    /// Artifacts rehydrated from the persistent (disk) cache. Each
    /// persist hit still counts as a [`miss`](CacheStats::misses) of the
    /// in-memory cache — it just pays rehydration instead of
    /// translation/specialization.
    pub persist_hits: u64,
    /// Persistent-cache lookups that found nothing (or a corrupt
    /// artifact) and fell through to compilation.
    pub persist_misses: u64,
    /// Artifacts written to the persistent cache.
    pub persist_writes: u64,
    /// Artifacts deleted from the persistent cache enforcing its size
    /// cap.
    pub persist_evictions: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queries = self.hits + self.misses;
        let hit_rate = if queries == 0 { 0.0 } else { 100.0 * self.hits as f64 / queries as f64 };
        write!(
            f,
            "cache: {} queries ({} hits, {} misses, {hit_rate:.1}% hit rate), {:.2} ms compiling",
            queries,
            self.hits,
            self.misses,
            self.compile_ns as f64 / 1e6
        )?;
        if self.spec_failures != 0 || self.downgrades != 0 {
            write!(
                f,
                ", {} failed specializations, {} downgrades to scalar",
                self.spec_failures, self.downgrades
            )?;
        }
        if self.translate_ns + self.specialize_ns + self.decode_ns != 0 {
            write!(
                f,
                "\ncompile phases: translate {:.2} ms, specialize {:.2} ms, decode {:.2} ms",
                self.translate_ns as f64 / 1e6,
                self.specialize_ns as f64 / 1e6,
                self.decode_ns as f64 / 1e6
            )?;
        }
        if self.persist_hits + self.persist_misses + self.persist_writes + self.persist_evictions
            != 0
        {
            write!(
                f,
                "\npersist: {} hits, {} misses, {} writes, {} evictions",
                self.persist_hits, self.persist_misses, self.persist_writes, self.persist_evictions
            )?;
        }
        Ok(())
    }
}

/// One compiled width of a kernel, with per-width hotness accounting.
///
/// `hits` counts warm resolutions served at this width (direct cache
/// hits plus memo-resolved dispatches flushed at chunk boundaries);
/// `warps` counts warps actually dispatched against this entry. Both are
/// relaxed monotonic sums, updated without the map's write lock, and are
/// what the adaptive width policy and the trace report read.
struct WidthEntry {
    width: u32,
    variant: Variant,
    compiled: Arc<CompiledKernel>,
    hits: AtomicU64,
    warps: AtomicU64,
}

/// The set of compiled widths of one translation — the cache's unit of
/// multi-width storage. A kernel has at most a handful of
/// `(width, variant)` entries, so a linear scan beats hashing a
/// composite key — and needs no key allocation.
#[derive(Default)]
struct WidthSet {
    entries: Vec<WidthEntry>,
}

impl WidthSet {
    fn find(&self, warp_size: u32, variant: Variant) -> Option<&WidthEntry> {
        self.entries.iter().find(|e| e.width == warp_size && e.variant == variant)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Snapshot of one width's accounting, for trace reports, the adaptive
/// policy, and tests. See [`TranslationCache::width_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthStats {
    /// The specialized warp width.
    pub width: u32,
    /// The specialization family compiled at this width.
    pub variant: Variant,
    /// Warm resolutions served at this width (cache hits plus
    /// memo-resolved dispatches).
    pub hits: u64,
    /// Warps dispatched against this entry.
    pub warps: u64,
}

/// Cache statistics as relaxed atomics, so the hot hit path updates them
/// without taking any lock. All counters are monotonic sums, so relaxed
/// ordering cannot misreport a snapshot taken after the work settles.
#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    compile_ns: AtomicU64,
    spec_failures: AtomicU64,
    downgrades: AtomicU64,
    translate_ns: AtomicU64,
    specialize_ns: AtomicU64,
    decode_ns: AtomicU64,
    persist_hits: AtomicU64,
    persist_misses: AtomicU64,
    persist_writes: AtomicU64,
    persist_evictions: AtomicU64,
}

#[derive(Default)]
struct Inner {
    translated: HashMap<String, Arc<TranslatedKernel>>,
    /// Specializations that failed to compile, memoized so each launch
    /// does not retry (and re-pay for) a known-bad compilation.
    failed: HashMap<(String, u32, Variant), CoreError>,
    /// Persistent-cache translation key per kernel (hash of format
    /// version × model × printed source), memoized alongside the
    /// translation so specialization keys derive from it without
    /// re-printing the kernel. Populated only when persistence is on.
    persist_keys: HashMap<String, u64>,
}

/// The translation cache: kernels in, specialized functions out.
///
/// A `TranslationCache` is a cheap handle over shared state: cloning it
/// produces another handle to the *same* cache, which is what lets the
/// persistent worker pool own a reference to the cache of whatever
/// launch it is running without borrowing from the submitting thread.
pub struct TranslationCache {
    shared: Arc<CacheShared>,
}

impl Clone for TranslationCache {
    fn clone(&self) -> Self {
        TranslationCache { shared: Arc::clone(&self.shared) }
    }
}

struct CacheShared {
    model: MachineModel,
    kernels: Mutex<HashMap<String, ptx::Kernel>>,
    /// Read-mostly: warm lookups take the read lock with a borrowed
    /// `&str` key; the write lock is held only to publish a freshly
    /// compiled specialization.
    compiled: RwLock<HashMap<String, WidthSet>>,
    inner: Mutex<Inner>,
    stats: StatCells,
    /// Disk-backed artifact store; `None` when persistence is disabled.
    persist: Option<PersistStore>,
}

impl TranslationCache {
    /// Create an empty cache compiling for `model`, with the persistent
    /// disk cache configured from the environment (see
    /// [`PersistConfig::from_env`]).
    pub fn new(model: MachineModel) -> Self {
        Self::with_persist(model, PersistConfig::from_env())
    }

    /// Create an empty cache compiling for `model` with explicit
    /// persistence control: `None` keeps everything in memory, `Some`
    /// rehydrates translations and specializations from (and stores
    /// them to) the configured directory.
    pub fn with_persist(model: MachineModel, persist: Option<PersistConfig>) -> Self {
        TranslationCache {
            shared: Arc::new(CacheShared {
                model,
                kernels: Mutex::new(HashMap::new()),
                compiled: RwLock::new(HashMap::new()),
                inner: Mutex::new(Inner::default()),
                stats: StatCells::default(),
                persist: persist.and_then(PersistStore::open),
            }),
        }
    }

    /// Whether two handles refer to the same underlying cache. Worker
    /// memos use this to invalidate entries resolved against a
    /// different device's cache.
    pub fn same_cache(&self, other: &TranslationCache) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// The machine model this cache compiles for.
    pub fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// Register every kernel of a module (later registrations shadow
    /// earlier kernels with the same name).
    pub fn register_module(&self, module: &ptx::Module) {
        let mut k = self.shared.kernels.lock();
        for kernel in &module.kernels {
            k.insert(kernel.name.clone(), kernel.clone());
        }
    }

    /// The translated (canonical scalar) form of `kernel`, translating on
    /// first use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unregistered kernels and any
    /// translation error otherwise.
    pub fn translated(&self, kernel: &str) -> Result<Arc<TranslatedKernel>, CoreError> {
        {
            let inner = self.shared.inner.lock();
            if let Some(t) = inner.translated.get(kernel) {
                return Ok(Arc::clone(t));
            }
        }
        let ptx_kernel = {
            let kernels = self.shared.kernels.lock();
            kernels
                .get(kernel)
                .cloned()
                .ok_or_else(|| CoreError::NotFound(format!("kernel `{kernel}`")))?
        };
        // Persistent cache: key by format version × model × printed
        // source, so a changed kernel body never matches a stale
        // artifact. A disk hit skips translation entirely and charges
        // no translate time.
        let mut tkey = None;
        if let Some(ps) = &self.shared.persist {
            let source = ptx::print_kernel(&ptx_kernel);
            let key = PersistStore::translation_key(&self.shared.model.name, &source);
            tkey = Some(key);
            let span = flight::span_start();
            if let Some(tk) = ps.load_translation(kernel, key) {
                self.shared.stats.persist_hits.fetch_add(1, Relaxed);
                dpvk_trace::add(dpvk_trace::Counter::PersistHits, 1);
                if let Some(s) = span {
                    flight::emit_span(
                        SpanKind::PersistLoad,
                        kernel,
                        s,
                        tk.scalar.blocks.len() as u64,
                    );
                }
                let t = Arc::new(tk);
                let (t, first) = {
                    let mut inner = self.shared.inner.lock();
                    inner.persist_keys.insert(kernel.to_string(), key);
                    let first = !inner.translated.contains_key(kernel);
                    (Arc::clone(inner.translated.entry(kernel.to_string()).or_insert(t)), first)
                };
                if first {
                    self.rehydrate_widths(kernel, key);
                }
                return Ok(t);
            }
            self.shared.stats.persist_misses.fetch_add(1, Relaxed);
            dpvk_trace::add(dpvk_trace::Counter::PersistMisses, 1);
        }
        let t = {
            let start = Instant::now();
            let span = flight::span_start();
            let _phase = dpvk_trace::phase(kernel, "translate");
            let t = Arc::new(translate(&ptx_kernel)?);
            self.shared.stats.translate_ns.fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
            if let Some(s) = span {
                flight::emit_span(SpanKind::Translate, kernel, s, t.scalar.blocks.len() as u64);
            }
            t
        };
        if let (Some(ps), Some(key)) = (&self.shared.persist, tkey) {
            let span = flight::span_start();
            let evicted = ps.store_translation(kernel, key, &t);
            self.shared.stats.persist_writes.fetch_add(1, Relaxed);
            self.shared.stats.persist_evictions.fetch_add(evicted, Relaxed);
            dpvk_trace::add(dpvk_trace::Counter::PersistWrites, 1);
            if let Some(s) = span {
                flight::emit_span(SpanKind::PersistStore, kernel, s, t.scalar.blocks.len() as u64);
            }
        }
        let (t, first) = {
            let mut inner = self.shared.inner.lock();
            if let Some(key) = tkey {
                inner.persist_keys.insert(kernel.to_string(), key);
            }
            let first = !inner.translated.contains_key(kernel);
            (Arc::clone(inner.translated.entry(kernel.to_string()).or_insert(t)), first)
        };
        // Specialization artifacts can outlive an evicted translation, so
        // even a fresh translate rehydrates any widths the width manifest
        // still lists.
        if let (Some(key), true) = (tkey, first) {
            self.rehydrate_widths(kernel, key);
        }
        Ok(t)
    }

    /// Rehydrate every width the persistent width manifest lists for
    /// `kernel`, so a restarted process starts with the same `WidthSet`
    /// it shut down with — not just the one width the first launch asks
    /// for. Runs once, when the translation is first materialized.
    fn rehydrate_widths(&self, kernel: &str, tkey: u64) {
        let Some(ps) = self.shared.persist.as_ref() else { return };
        for (width, label) in ps.load_widths(kernel, tkey) {
            let Some(variant) = Variant::from_label(&label) else { continue };
            if self.lookup(kernel, width, variant).is_some() {
                continue;
            }
            let _ = self.load_persisted_spec(kernel, width, variant);
        }
    }

    /// The specialization of `kernel` for `(warp_size, variant)`,
    /// compiling on a miss.
    ///
    /// # Errors
    ///
    /// Propagates translation/specialization errors; see
    /// [`TranslationCache::translated`].
    pub fn get(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Result<Arc<CompiledKernel>, CoreError> {
        // Hot path: shared read lock, borrowed key, no allocation. Trace
        // bookkeeping (including `Variant::label`) runs only when the
        // trace layer is actually on.
        if let Some(c) = self.lookup_counting(kernel, warp_size, variant) {
            self.shared.stats.hits.fetch_add(1, Relaxed);
            if dpvk_trace::enabled() {
                dpvk_trace::record_cache_query(kernel, warp_size, variant.label(), true);
            }
            return Ok(c);
        }
        {
            let inner = self.shared.inner.lock();
            if let Some(e) = inner.failed.get(&(kernel.to_string(), warp_size, variant)) {
                return Err(e.clone());
            }
        }
        if dpvk_trace::enabled() {
            dpvk_trace::record_cache_query(kernel, warp_size, variant.label(), false);
        }
        let tk = self.translated(kernel)?;
        // Materializing the translation may have rehydrated this very
        // width from the persistent width manifest: re-probe before
        // touching the disk again so the rehydration is charged once.
        if let Some(c) = self.lookup_counting(kernel, warp_size, variant) {
            self.shared.stats.hits.fetch_add(1, Relaxed);
            return Ok(c);
        }
        if let Some(compiled) = self.load_persisted_spec(kernel, warp_size, variant) {
            return Ok(compiled);
        }
        let start = Instant::now();
        let spec_start = Instant::now();
        let spec_span = flight::span_start();
        let specialized = {
            let _phase = dpvk_trace::phase(kernel, "specialize");
            self.specialize_checked(&tk, kernel, warp_size, variant)
        };
        self.shared.stats.specialize_ns.fetch_add(spec_start.elapsed().as_nanos() as u64, Relaxed);
        if let Some(s) = spec_span {
            flight::emit_span(SpanKind::Specialize, kernel, s, u64::from(warp_size));
        }
        let Specialized { function, pre_opt_instructions, post_opt_instructions, fusion, .. } =
            match specialized {
                Ok(s) => s,
                Err(e) => {
                    // Memoize compile-type failures so later queries (and
                    // the downgrade path) answer without recompiling.
                    if matches!(e, CoreError::Verify(_) | CoreError::Unsupported { .. }) {
                        dpvk_trace::add(dpvk_trace::Counter::SpecFailures, 1);
                        dpvk_trace::record_downgrade(
                            kernel,
                            warp_size,
                            variant.label(),
                            &e.to_string(),
                        );
                        self.shared.stats.spec_failures.fetch_add(1, Relaxed);
                        let mut inner = self.shared.inner.lock();
                        inner
                            .failed
                            .entry((kernel.to_string(), warp_size, variant))
                            .or_insert_with(|| e.clone());
                    }
                    return Err(e);
                }
            };
        let cost = CostInfo::analyze(&function, &self.shared.model);
        let frame = FrameLayout::of(&function);
        let decode_t = Instant::now();
        let decode_span = flight::span_start();
        let mut bytecode = BytecodeProgram::decode(&function, &frame, &self.shared.model, &cost);
        // Tag the program with its profiler identity unconditionally (one
        // Arc per compile): the µop profiler may be switched on after
        // this specialization is already cached.
        bytecode.attach_profile(kernel, variant.label());
        // The decoder re-derives fusion legality per pair; the
        // specializer's static summary bounds what it may form.
        debug_assert!(
            bytecode.stats.fused_cmp_br <= fusion.cmp_br_candidates,
            "decoder fused {} compare-branches but only {} are legal",
            bytecode.stats.fused_cmp_br,
            fusion.cmp_br_candidates,
        );
        debug_assert!(
            bytecode.stats.fused_bin_bin + bytecode.stats.fused_load_bin <= fusion.pair_candidates,
            "decoder fused {} pairs but only {} are legal",
            bytecode.stats.fused_bin_bin + bytecode.stats.fused_load_bin,
            fusion.pair_candidates,
        );
        let decode_ns = decode_t.elapsed().as_nanos() as u64;
        self.shared.stats.decode_ns.fetch_add(decode_ns, Relaxed);
        if let Some(s) = decode_span {
            dpvk_trace::add(dpvk_trace::Counter::GuestDecodeNs, decode_ns);
            dpvk_trace::add(dpvk_trace::Counter::FusedCmpBr, bytecode.stats.fused_cmp_br);
            dpvk_trace::add(dpvk_trace::Counter::FusedBinBin, bytecode.stats.fused_bin_bin);
            dpvk_trace::add(dpvk_trace::Counter::FusedLoadBin, bytecode.stats.fused_load_bin);
            flight::emit_span(SpanKind::Decode, kernel, s, bytecode.stats.ops);
        }
        let compiled = Arc::new(CompiledKernel {
            function: Arc::new(function),
            cost,
            frame,
            bytecode,
            pre_opt_instructions,
            post_opt_instructions,
            jit: OnceLock::new(),
        });
        let elapsed = start.elapsed().as_nanos() as u64;
        dpvk_trace::record_compile(kernel, warp_size, variant.label(), elapsed);
        self.shared.stats.misses.fetch_add(1, Relaxed);
        self.shared.stats.compile_ns.fetch_add(elapsed, Relaxed);
        self.store_persisted_spec(kernel, warp_size, variant, &compiled);
        // Publish under the write lock; on a compile race the first
        // publication wins (both racers still count their miss, exactly
        // as the mutex-era cache did).
        let mut map = self.shared.compiled.write();
        let set = map.entry(kernel.to_string()).or_default();
        if let Some(existing) = set.find(warp_size, variant) {
            return Ok(Arc::clone(&existing.compiled));
        }
        set.entries.push(WidthEntry {
            width: warp_size,
            variant,
            compiled: Arc::clone(&compiled),
            hits: AtomicU64::new(0),
            warps: AtomicU64::new(0),
        });
        Ok(compiled)
    }

    /// Warm lookup: read lock, borrowed key, linear scan of the kernel's
    /// few specializations. Pure probe — no accounting.
    fn lookup(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Option<Arc<CompiledKernel>> {
        let map = self.shared.compiled.read();
        let set = map.get(kernel)?;
        set.find(warp_size, variant).map(|e| Arc::clone(&e.compiled))
    }

    /// Warm lookup that also charges the served width's hit counter.
    fn lookup_counting(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Option<Arc<CompiledKernel>> {
        let map = self.shared.compiled.read();
        let set = map.get(kernel)?;
        let e = set.find(warp_size, variant)?;
        e.hits.fetch_add(1, Relaxed);
        Some(Arc::clone(&e.compiled))
    }

    /// Snapshot per-width accounting for `kernel`: every compiled
    /// `(width, variant)` with its hit and dispatched-warp tallies,
    /// ordered by `(width, variant)` for deterministic reporting.
    pub fn width_stats(&self, kernel: &str) -> Vec<WidthStats> {
        let map = self.shared.compiled.read();
        let mut out: Vec<WidthStats> = map
            .get(kernel)
            .map(|set| {
                set.entries
                    .iter()
                    .map(|e| WidthStats {
                        width: e.width,
                        variant: e.variant,
                        hits: e.hits.load(Relaxed),
                        warps: e.warps.load(Relaxed),
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort_by_key(|s| (s.width, s.variant.label()));
        out
    }

    /// Every `(width, variant)` currently compiled for `kernel`, in
    /// deterministic `(width, variant)` order.
    pub fn observed_widths(&self, kernel: &str) -> Vec<(u32, Variant)> {
        self.width_stats(kernel).into_iter().map(|s| (s.width, s.variant)).collect()
    }

    /// Fold per-width usage flushed from a worker's dispatch memo into
    /// the served entry's accounting: `hits` resolutions and `warps`
    /// dispatched warps at `(warp_size, variant)`. Read lock only — the
    /// entry's counters are relaxed atomics.
    pub(crate) fn note_width_use(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
        hits: u64,
        warps: u64,
    ) {
        let map = self.shared.compiled.read();
        if let Some(e) = map.get(kernel).and_then(|set| set.find(warp_size, variant)) {
            if hits != 0 {
                e.hits.fetch_add(hits, Relaxed);
            }
            if warps != 0 {
                e.warps.fetch_add(warps, Relaxed);
            }
        }
    }

    /// Try to rehydrate a `(kernel, warp_size, variant)` specialization
    /// from the persistent cache. Cost analysis and the frame layout
    /// are recomputed live (they depend on the machine model, not the
    /// artifact); the persisted program's slot count is cross-checked
    /// against the recomputed layout and any disagreement is treated as
    /// a miss. A hit counts as an in-memory **miss** whose `compile_ns`
    /// is the rehydration time, so hit/miss totals stay comparable with
    /// persistence on or off.
    fn load_persisted_spec(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Option<Arc<CompiledKernel>> {
        let ps = self.shared.persist.as_ref()?;
        // A planned injected fault must not be masked by a disk hit:
        // probe first and let the normal specialize path take (and
        // memoize) the failure.
        #[cfg(feature = "fault-inject")]
        if crate::faults::injected_specialize_failure(kernel, warp_size, variant).is_some() {
            return None;
        }
        let tkey = {
            let inner = self.shared.inner.lock();
            *inner.persist_keys.get(kernel)?
        };
        let skey = PersistStore::spec_key(tkey, warp_size, variant.label());
        let start = Instant::now();
        let span = flight::span_start();
        let Some(mut art) = ps.load_spec(kernel, skey) else {
            self.shared.stats.persist_misses.fetch_add(1, Relaxed);
            dpvk_trace::add(dpvk_trace::Counter::PersistMisses, 1);
            return None;
        };
        let cost = CostInfo::analyze(&art.function, &self.shared.model);
        let frame = FrameLayout::of(&art.function);
        if frame.slots() != art.bytecode.slots() {
            // This build lays out frames differently than the one that
            // stored the artifact (format drift without a version
            // bump): miss, recompile.
            self.shared.stats.persist_misses.fetch_add(1, Relaxed);
            dpvk_trace::add(dpvk_trace::Counter::PersistMisses, 1);
            return None;
        }
        art.bytecode.attach_profile(kernel, variant.label());
        let compiled = Arc::new(CompiledKernel {
            function: Arc::new(art.function),
            cost,
            frame,
            bytecode: art.bytecode,
            pre_opt_instructions: art.pre_opt_instructions,
            post_opt_instructions: art.post_opt_instructions,
            jit: OnceLock::new(),
        });
        let elapsed = start.elapsed().as_nanos() as u64;
        self.shared.stats.misses.fetch_add(1, Relaxed);
        self.shared.stats.compile_ns.fetch_add(elapsed, Relaxed);
        self.shared.stats.persist_hits.fetch_add(1, Relaxed);
        dpvk_trace::add(dpvk_trace::Counter::PersistHits, 1);
        if let Some(s) = span {
            flight::emit_span(SpanKind::PersistLoad, kernel, s, compiled.bytecode.len() as u64);
        }
        let mut map = self.shared.compiled.write();
        let set = map.entry(kernel.to_string()).or_default();
        if let Some(existing) = set.find(warp_size, variant) {
            return Some(Arc::clone(&existing.compiled));
        }
        set.entries.push(WidthEntry {
            width: warp_size,
            variant,
            compiled: Arc::clone(&compiled),
            hits: AtomicU64::new(0),
            warps: AtomicU64::new(0),
        });
        Some(compiled)
    }

    /// Persist a freshly compiled specialization (best effort). The JIT
    /// byte count is advisory metadata: native code is emitted lazily
    /// after compilation (and is not relocatable across processes), so
    /// it is almost always 0 here.
    fn store_persisted_spec(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
        compiled: &CompiledKernel,
    ) {
        let Some(ps) = self.shared.persist.as_ref() else { return };
        let tkey = {
            let inner = self.shared.inner.lock();
            match inner.persist_keys.get(kernel) {
                Some(k) => *k,
                None => return,
            }
        };
        let skey = PersistStore::spec_key(tkey, warp_size, variant.label());
        let span = flight::span_start();
        let jit_code_bytes = compiled
            .jit
            .get()
            .and_then(|o| o.as_ref())
            .map(|j| j.emit_stats().code_bytes)
            .unwrap_or(0);
        let evicted = ps.store_spec(
            kernel,
            skey,
            &compiled.function,
            &compiled.bytecode,
            crate::persist::SpecMeta {
                pre_opt_instructions: compiled.pre_opt_instructions,
                post_opt_instructions: compiled.post_opt_instructions,
                jit_code_bytes,
            },
        );
        self.shared.stats.persist_writes.fetch_add(1, Relaxed);
        self.shared.stats.persist_evictions.fetch_add(evicted, Relaxed);
        dpvk_trace::add(dpvk_trace::Counter::PersistWrites, 1);
        // Keep the width manifest in step so a restart rehydrates every
        // width that was observed, not just the first one requested.
        ps.record_width(kernel, tkey, warp_size, variant.label());
        if let Some(s) = span {
            flight::emit_span(SpanKind::PersistStore, kernel, s, compiled.bytecode.len() as u64);
        }
    }

    /// Run `specialize`, with the fault-injection hook (forced verify
    /// failure for a chosen width) applied first when enabled.
    fn specialize_checked(
        &self,
        tk: &TranslatedKernel,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Result<Specialized, CoreError> {
        #[cfg(feature = "fault-inject")]
        if let Some(e) = crate::faults::injected_specialize_failure(kernel, warp_size, variant) {
            return Err(e);
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = kernel;
        specialize(tk, &variant.options(warp_size))
    }

    /// Like [`TranslationCache::get`], but degrade gracefully: when the
    /// requested specialization fails to *compile* (verify error or
    /// unsupported construct), fall back to the width-1 scalar baseline
    /// instead of failing the launch. Returns the compiled kernel plus
    /// `true` when a downgrade happened.
    ///
    /// Entry-point numbering is assigned during translation on the
    /// canonical scalar kernel and shared by every variant, so resuming a
    /// grid mid-flight on the baseline function is safe.
    ///
    /// # Errors
    ///
    /// Propagates non-compile failures (unregistered kernel, parse
    /// errors), and any failure of the baseline itself.
    pub fn get_or_downgrade(
        &self,
        kernel: &str,
        warp_size: u32,
        variant: Variant,
    ) -> Result<(Arc<CompiledKernel>, bool), CoreError> {
        match self.get(kernel, warp_size, variant) {
            Ok(c) => Ok((c, false)),
            Err(CoreError::Verify(_) | CoreError::Unsupported { .. })
                if !(warp_size == 1 && variant == Variant::Baseline) =>
            {
                self.shared.stats.downgrades.fetch_add(1, Relaxed);
                let c = self.get(kernel, 1, Variant::Baseline)?;
                Ok((c, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Fold in hit/downgrade counts resolved from a worker-local dispatch
    /// memo (see `exec::worker::DispatchMemo`), which answers repeat
    /// queries without touching the shared cache and flushes its tallies
    /// here at chunk boundaries so [`TranslationCache::stats`] totals stay
    /// identical to per-query counting.
    pub(crate) fn add_resolved(&self, hits: u64, downgrades: u64) {
        if hits != 0 {
            self.shared.stats.hits.fetch_add(hits, Relaxed);
        }
        if downgrades != 0 {
            self.shared.stats.downgrades.fetch_add(downgrades, Relaxed);
        }
    }

    /// Record a specialization-type failure that was detected outside
    /// [`TranslationCache::get`] — e.g. an eager pre-translation failure
    /// at launch submission — so the async submit path reports compile
    /// errors with the same statistics and trace events as worker-side
    /// translation failures.
    pub(crate) fn note_spec_failure(&self, kernel: &str, error: &CoreError) {
        if matches!(error, CoreError::Verify(_) | CoreError::Unsupported { .. }) {
            self.shared.stats.spec_failures.fetch_add(1, Relaxed);
            dpvk_trace::add(dpvk_trace::Counter::SpecFailures, 1);
        }
        dpvk_trace::record_fault(kernel, &format!("[{}] {error}", error.code()));
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.shared.stats.hits.load(Relaxed),
            misses: self.shared.stats.misses.load(Relaxed),
            compile_ns: self.shared.stats.compile_ns.load(Relaxed),
            spec_failures: self.shared.stats.spec_failures.load(Relaxed),
            downgrades: self.shared.stats.downgrades.load(Relaxed),
            translate_ns: self.shared.stats.translate_ns.load(Relaxed),
            specialize_ns: self.shared.stats.specialize_ns.load(Relaxed),
            decode_ns: self.shared.stats.decode_ns.load(Relaxed),
            persist_hits: self.shared.stats.persist_hits.load(Relaxed),
            persist_misses: self.shared.stats.persist_misses.load(Relaxed),
            persist_writes: self.shared.stats.persist_writes.load(Relaxed),
            persist_evictions: self.shared.stats.persist_evictions.load(Relaxed),
        }
    }

    /// The registered declaration of `kernel` (signature, register file,
    /// variables).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unregistered kernels.
    pub fn kernel_declaration(&self, kernel: &str) -> Result<ptx::Kernel, CoreError> {
        self.shared
            .kernels
            .lock()
            .get(kernel)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("kernel `{kernel}`")))
    }
}

impl std::fmt::Debug for TranslationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let compiled: usize = self.shared.compiled.read().values().map(WidthSet::len).sum();
        let inner = self.shared.inner.lock();
        f.debug_struct("TranslationCache")
            .field("model", &self.shared.model.name)
            .field("translated", &inner.translated.len())
            .field("compiled", &compiled)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
.kernel k (.param .u64 p, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [n];
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra done;
  add.u32 %r1, %r1, 1;
done:
  ret;
}
"#;

    fn cache_with_kernel() -> TranslationCache {
        // In-memory only: these tests pin exact demand-path counter
        // values, which must not depend on what an earlier process left
        // in the shared env cache directory (width-manifest rehydration
        // would pre-load entries and shift hit/miss totals).
        let cache = TranslationCache::with_persist(MachineModel::sandybridge_sse(), None);
        cache.register_module(&ptx::parse_module(SRC).unwrap());
        cache
    }

    #[test]
    fn miss_then_hit() {
        let cache = cache_with_kernel();
        let a = cache.get("k", 4, Variant::Dynamic).unwrap();
        let b = cache.get("k", 4, Variant::Dynamic).unwrap();
        assert!(Arc::ptr_eq(&a.function, &b.function));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.compile_ns > 0);
    }

    #[test]
    fn distinct_specializations_are_distinct_entries() {
        let cache = cache_with_kernel();
        let a = cache.get("k", 2, Variant::Dynamic).unwrap();
        let b = cache.get("k", 4, Variant::Dynamic).unwrap();
        let c = cache.get("k", 4, Variant::StaticTie).unwrap();
        assert_eq!(a.function.warp_size, 2);
        assert_eq!(b.function.warp_size, 4);
        assert_eq!(c.function.warp_size, 4);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn unknown_kernel_is_not_found() {
        let cache = cache_with_kernel();
        assert!(matches!(cache.get("absent", 4, Variant::Dynamic), Err(CoreError::NotFound(_))));
    }

    #[test]
    fn get_or_downgrade_passes_through_on_success() {
        let cache = cache_with_kernel();
        let (c, downgraded) = cache.get_or_downgrade("k", 4, Variant::Dynamic).unwrap();
        assert!(!downgraded);
        assert_eq!(c.function.warp_size, 4);
        let stats = cache.stats();
        assert_eq!(stats.downgrades, 0);
        assert_eq!(stats.spec_failures, 0);
    }

    #[test]
    fn get_or_downgrade_propagates_not_found() {
        let cache = cache_with_kernel();
        assert!(matches!(
            cache.get_or_downgrade("absent", 4, Variant::Dynamic),
            Err(CoreError::NotFound(_))
        ));
    }

    #[test]
    fn persisted_specialization_rehydrates_across_cache_instances() {
        let dir =
            std::env::temp_dir().join(format!("dpvk-cache-test-rehydrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = || {
            let c = TranslationCache::with_persist(
                MachineModel::sandybridge_sse(),
                Some(PersistConfig::at(&dir)),
            );
            c.register_module(&ptx::parse_module(SRC).unwrap());
            c
        };
        let a = fresh();
        let c1 = a.get("k", 4, Variant::Dynamic).unwrap();
        assert!(a.stats().persist_writes >= 2, "translation + spec should be written");
        // A fresh cache over the same directory models a restarted
        // process: both artifacts rehydrate, no translate/specialize/
        // decode time is charged, and the program is identical.
        let b = fresh();
        let c2 = b.get("k", 4, Variant::Dynamic).unwrap();
        let stats = b.stats();
        assert_eq!(stats.persist_hits, 2, "{stats:?}");
        assert_eq!(stats.translate_ns, 0);
        assert_eq!(stats.specialize_ns, 0);
        assert_eq!(stats.decode_ns, 0);
        assert_eq!(stats.misses, 1, "a persist hit still counts as an in-memory miss");
        assert_eq!(*c1.function, *c2.function);
        assert_eq!(
            format!("{:?}", c1.bytecode),
            format!("{:?}", c2.bytecode),
            "rehydrated bytecode must match the compiled program exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_persistence_keeps_everything_in_memory() {
        let dir =
            std::env::temp_dir().join(format!("dpvk-cache-test-disabled-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = TranslationCache::with_persist(MachineModel::sandybridge_sse(), None);
        c.register_module(&ptx::parse_module(SRC).unwrap());
        c.get("k", 4, Variant::Dynamic).unwrap();
        let stats = c.stats();
        assert_eq!(stats.persist_hits + stats.persist_misses + stats.persist_writes, 0);
        assert!(stats.translate_ns > 0);
        assert!(!dir.exists());
    }

    #[test]
    fn width_set_keeps_independent_per_width_stats() {
        let cache = cache_with_kernel();
        for w in [2u32, 4, 8] {
            cache.get("k", w, Variant::Dynamic).unwrap();
        }
        cache.get("k", 4, Variant::Dynamic).unwrap();
        cache.get("k", 4, Variant::Dynamic).unwrap();
        cache.get("k", 8, Variant::Dynamic).unwrap();
        let stats = cache.width_stats("k");
        assert_eq!(stats.len(), 3);
        let hits = |w: u32| stats.iter().find(|s| s.width == w).unwrap().hits;
        assert_eq!(hits(2), 0);
        assert_eq!(hits(4), 2);
        assert_eq!(hits(8), 1);
        cache.note_width_use("k", 8, Variant::Dynamic, 3, 7);
        let s8 = *cache.width_stats("k").iter().find(|s| s.width == 8).unwrap();
        assert_eq!(s8.hits, 4);
        assert_eq!(s8.warps, 7);
        assert_eq!(
            cache.observed_widths("k"),
            vec![(2, Variant::Dynamic), (4, Variant::Dynamic), (8, Variant::Dynamic)]
        );
    }

    #[test]
    fn width_manifest_rehydrates_every_observed_width() {
        let dir =
            std::env::temp_dir().join(format!("dpvk-cache-test-widths-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = || {
            let c = TranslationCache::with_persist(
                MachineModel::sandybridge_sse(),
                Some(PersistConfig::at(&dir)),
            );
            c.register_module(&ptx::parse_module(SRC).unwrap());
            c
        };
        let a = fresh();
        for w in [2u32, 4, 8] {
            a.get("k", w, Variant::Dynamic).unwrap();
        }
        a.get("k", 1, Variant::Baseline).unwrap();
        // A restarted process materializes the translation once and gets
        // every previously observed width back without asking for them.
        let b = fresh();
        b.translated("k").unwrap();
        assert_eq!(
            b.observed_widths("k"),
            vec![
                (1, Variant::Baseline),
                (2, Variant::Dynamic),
                (4, Variant::Dynamic),
                (8, Variant::Dynamic)
            ]
        );
        let stats = b.stats();
        assert_eq!(stats.persist_hits, 5, "translation + four widths: {stats:?}");
        assert_eq!(stats.translate_ns, 0);
        assert_eq!(stats.specialize_ns, 0);
        assert_eq!(stats.decode_ns, 0);
        // Asking for a rehydrated width is now a pure in-memory hit.
        b.get("k", 4, Variant::Dynamic).unwrap();
        assert_eq!(b.stats().persist_hits, 5);
        assert_eq!(b.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_queries_converge() {
        let cache = Arc::new(cache_with_kernel());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for w in [1u32, 2, 4] {
                        cache.get("k", w, Variant::Dynamic).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 24);
        assert!(stats.misses >= 3);
    }
}
