//! Locking used by the translation cache and runtime.
//!
//! By default this is a thin, poison-ignoring wrapper over
//! [`std::sync::Mutex`], keeping `dpvk-core` free of external
//! dependencies. Enabling the optional `parking_lot` feature swaps in
//! `parking_lot::Mutex` (the paper's implementation contends on a single
//! cache lock from every execution manager, which is exactly the workload
//! `parking_lot` is tuned for); both expose the same `lock() -> guard`
//! surface so no call site changes.

#[cfg(feature = "parking_lot")]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "parking_lot"))]
pub use fallback::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "parking_lot"))]
mod fallback {
    use std::fmt;

    /// Guard returned by [`Mutex::lock`]; unlocks on drop.
    pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// Mutex with the `parking_lot` calling convention: `lock()` returns
    /// the guard directly, and a panic while the lock is held does not
    /// poison it (the interpreter's caches hold no invariants that a
    /// panicking reader could corrupt).
    #[derive(Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Create a mutex protecting `value`.
        pub const fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock, blocking until it is available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }

    /// Guard returned by [`RwLock::read`]; releases on drop.
    pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    /// Guard returned by [`RwLock::write`]; releases on drop.
    pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// Reader-writer lock with the `parking_lot` calling convention:
    /// `read()`/`write()` return guards directly and poisoning is
    /// ignored, like [`Mutex`].
    #[derive(Default)]
    pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

    impl<T> RwLock<T> {
        /// Create a lock protecting `value`.
        pub const fn new(value: T) -> Self {
            RwLock(std::sync::RwLock::new(value))
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquire shared read access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard(self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner))
        }

        /// Acquire exclusive write access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            RwLockWriteGuard(self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner))
        }
    }

    impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }
}

/// A monitor: a mutex paired with a condition variable, with the same
/// poison-transparent convention as [`Mutex`]. The persistent worker
/// pool, launch jobs, streams and the device's in-flight gauge all need
/// blocking waits, which the `parking_lot`-style wrappers above do not
/// expose, so this is always backed by `std` regardless of features.
pub(crate) struct Monitor<T> {
    state: std::sync::Mutex<T>,
    cond: std::sync::Condvar,
}

impl<T> Monitor<T> {
    /// Create a monitor protecting `value`.
    pub fn new(value: T) -> Self {
        Monitor { state: std::sync::Mutex::new(value), cond: std::sync::Condvar::new() }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Block on the condition variable, releasing `guard` while parked.
    pub fn wait<'a>(&self, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
        self.cond.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Park until `condition` returns false.
    pub fn wait_while<'a, F>(
        &self,
        guard: std::sync::MutexGuard<'a, T>,
        condition: F,
    ) -> std::sync::MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        self.cond.wait_while(guard, condition).unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.cond.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Monitor, Mutex, RwLock};

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn monitor_wakes_waiter() {
        let m = std::sync::Arc::new(Monitor::new(false));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let guard = m2.lock();
            let guard = m2.wait_while(guard, |done| !*done);
            *guard
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = true;
        m.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (1, 1));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
