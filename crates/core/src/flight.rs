//! Flight-recorder glue: emit per-launch timeline spans with the
//! current launch and worker attribution attached.
//!
//! The helpers here are the only place the core crate constructs
//! [`Span`]s, so the attribution rules live in one spot: `seq`/`stream`
//! come from the ambient [`timeline::launch_scope`] (zero outside one),
//! `worker` from the pool thread's registered track (absent on
//! submitter threads, which lands the span on the stream track
//! instead). Every call site first obtains a start timestamp via
//! [`span_start`], which is `None` when tracing is off — so the
//! disabled fast path costs one relaxed atomic load and nothing else.

use dpvk_trace::timeline::{self, Span, SpanKind};

/// Start timestamp for a prospective span, or `None` when the trace
/// layer is off (one relaxed atomic load).
#[inline]
pub(crate) fn span_start() -> Option<u64> {
    dpvk_trace::enabled().then(timeline::now_ns)
}

/// Record a span that began at `start_ns` (from [`span_start`]) and
/// ends now, attributed to the ambient launch scope and — when called
/// from a pool worker — that worker's timeline track.
pub(crate) fn emit_span(kind: SpanKind, kernel: &str, start_ns: u64, detail: u64) {
    let dur_ns = timeline::now_ns().saturating_sub(start_ns);
    emit_span_at(kind, kernel, start_ns, dur_ns, detail);
}

/// Record a span with an explicit duration (used for coalesced spans —
/// e.g. the sum of a chunk's gather calls nested at the head of its
/// execute span), attributed like [`emit_span`].
pub(crate) fn emit_span_at(kind: SpanKind, kernel: &str, start_ns: u64, dur_ns: u64, detail: u64) {
    let (seq, stream) = timeline::current_launch();
    timeline::record_span(Span {
        kind,
        kernel: kernel.to_string(),
        seq,
        stream,
        worker: timeline::worker_track(),
        start_ns,
        dur_ns,
        detail,
    });
}

/// Record a span with explicit launch attribution and duration on the
/// stream track (no worker), for events observed outside a launch scope
/// — e.g. the retire edge (duration 0) runs on whichever thread
/// completes the last chunk.
pub(crate) fn emit_stream_span(
    kind: SpanKind,
    kernel: &str,
    seq: u64,
    stream: u64,
    start_ns: u64,
    dur_ns: u64,
    detail: u64,
) {
    timeline::record_span(Span {
        kind,
        kernel: kernel.to_string(),
        seq,
        stream,
        worker: None,
        start_ns,
        dur_ns,
        detail,
    });
}
