//! Deterministic fault injection for the hardened execution manager.
//!
//! Compiled only with the `fault-inject` feature; the default build pays
//! nothing. Tests install a [`FaultPlan`] describing which failures to
//! trip — a forced worker panic at a chosen CTA, a forced verify failure
//! for a chosen specialization width, an injected out-of-bounds fault, or
//! artificial slow warps for deadline testing — and the execution
//! pipeline consults the plan at the matching points. Slow-warp selection
//! is seeded SplitMix64, so a plan reproduces the same schedule of delays
//! on every run.

use std::sync::Mutex;
use std::time::Duration;

use dpvk_ir::{Space, VerifyError};
use dpvk_vm::VmError;

use crate::cache::Variant;
use crate::error::CoreError;

/// Artificially delay a deterministic subset of warps (for deadline and
/// cancellation tests that need a "slow" kernel without a spin loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowWarps {
    /// SplitMix64 seed; the same seed always delays the same CTAs.
    pub seed: u64,
    /// Fraction of CTAs delayed, in `[0, 1]`.
    pub fraction: f64,
    /// Sleep applied to each selected warp execution.
    pub delay: Duration,
}

/// What to break, and where. `None` fields inject nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Panic (worker-thread panic, not an error return) when the manager
    /// starts executing this flat CTA index.
    pub panic_at_cta: Option<u32>,
    /// Budget for [`panic_at_cta`](Self::panic_at_cta): `Some(n)` trips
    /// the panic at most `n` times and then lets execution through, so a
    /// retrying caller deterministically recovers; `None` panics on every
    /// matching execution (the original behavior).
    pub panic_budget: Option<u32>,
    /// Fail specialization with a synthetic [`VerifyError`] for any
    /// non-baseline variant requested at this warp width.
    pub fail_specialize_width: Option<u32>,
    /// Raise a synthetic out-of-bounds [`VmError`] from the first warp of
    /// this flat CTA index.
    pub oob_at_cta: Option<u32>,
    /// Artificially slow a seeded-random subset of warp executions.
    pub slow_warps: Option<SlowWarps>,
}

/// The installed plan. Reads are cheap (Copy under a short lock);
/// writes go through [`install`].
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Serializes tests that inject faults: the guard returned by
/// [`install`] holds this lock, so concurrently running tests take turns
/// with the process-wide plan instead of trampling each other's.
static GATE: Mutex<()> = Mutex::new(());

/// Clears the installed [`FaultPlan`] on drop and releases the injection
/// gate for the next test.
#[must_use = "the plan is cleared when the guard drops"]
pub struct PlanGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for PlanGuard {
    fn drop(&mut self) {
        *PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// Install `plan` as the process-wide injection plan, blocking until any
/// other holder of a [`PlanGuard`] drops theirs. The plan is cleared
/// when the returned guard drops, so hold it for the whole test body.
pub fn install(plan: FaultPlan) -> PlanGuard {
    let gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(plan);
    PlanGuard(gate)
}

fn plan() -> Option<FaultPlan> {
    *PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// SplitMix64: the repo's standard seedable generator (also used by the
/// workload harnesses; re-implemented here because `dpvk-workloads`
/// depends on this crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Panic if the plan demands a worker panic at `cta`. A finite
/// [`FaultPlan::panic_budget`] is decremented under the plan lock, so
/// concurrent workers racing on the same CTA consume it exactly once
/// per trip.
pub(crate) fn maybe_panic(cta: u32) {
    let mut slot = PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(p) = slot.as_mut() else { return };
    if p.panic_at_cta != Some(cta) {
        return;
    }
    if let Some(remaining) = p.panic_budget.as_mut() {
        if *remaining == 0 {
            return;
        }
        *remaining -= 1;
    }
    drop(slot);
    panic!("injected fault: forced panic at CTA {cta}");
}

/// Synthetic specialization failure for `(kernel, warp_size, variant)`,
/// if the plan demands one. Baseline requests never fail, so the
/// downgrade path always has somewhere to land.
pub(crate) fn injected_specialize_failure(
    kernel: &str,
    warp_size: u32,
    variant: Variant,
) -> Option<CoreError> {
    let p = plan()?;
    if variant != Variant::Baseline && p.fail_specialize_width == Some(warp_size) {
        return Some(CoreError::Verify(VerifyError {
            function: kernel.to_string(),
            block: "entry".into(),
            message: format!("injected fault: forced verify failure at width {warp_size}"),
        }));
    }
    None
}

/// Synthetic VM fault for the first warp of `cta`, if the plan demands
/// one.
pub(crate) fn injected_warp_fault(cta: u32) -> Option<VmError> {
    let p = plan()?;
    if p.oob_at_cta == Some(cta) {
        return Some(VmError::OutOfBounds {
            space: Space::Global,
            addr: u64::MAX,
            size: 4,
            space_size: 0,
        });
    }
    None
}

/// Sleep if the plan's seeded selection picks `cta` as a slow warp.
pub(crate) fn maybe_slow_warp(cta: u32) {
    let Some(SlowWarps { seed, fraction, delay }) = plan().and_then(|p| p.slow_warps) else {
        return;
    };
    let mut state = seed ^ (u64::from(cta).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let draw = splitmix64(&mut state) as f64 / u64::MAX as f64;
    if draw < fraction {
        std::thread::sleep(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_round_trip_and_specialize_failure() {
        let guard = install(FaultPlan {
            panic_at_cta: Some(7),
            fail_specialize_width: Some(4),
            ..Default::default()
        });
        assert_eq!(plan().unwrap().panic_at_cta, Some(7));
        assert!(injected_specialize_failure("k", 4, Variant::Dynamic).is_some());
        assert!(injected_specialize_failure("k", 4, Variant::StaticTie).is_some());
        assert!(injected_specialize_failure("k", 4, Variant::Baseline).is_none());
        assert!(injected_specialize_failure("k", 2, Variant::Dynamic).is_none());
        drop(guard);
    }

    #[test]
    fn panic_budget_is_consumed_then_execution_passes() {
        let _guard = install(FaultPlan {
            panic_at_cta: Some(3),
            panic_budget: Some(2),
            ..Default::default()
        });
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(|| maybe_panic(3));
            assert!(caught.is_err(), "budgeted panic should trip");
        }
        // Budget exhausted: the same CTA now runs clean.
        maybe_panic(3);
        maybe_panic(3);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b).wrapping_add(1));
    }
}
