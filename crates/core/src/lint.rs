//! Warp-synchronous programming lint.
//!
//! The paper (Section 4, "Implicit Synchronization", discussing Guo et
//! al.) notes that kernels relying on lock-step warp execution — reading
//! shared memory written by a neighbour without an intervening barrier —
//! have undefined behaviour under this compilation model, because warp
//! membership and width change dynamically. This module flags the idiom:
//! a `.shared` load that can execute after a `.shared` store with no
//! CTA-wide barrier on some path between them.
//!
//! The analysis is necessarily approximate (it ignores addresses), so a
//! finding is a *warning*: the access pattern may still be benign when
//! each thread reads only locations it wrote itself.

use dpvk_ir::{BlockId, Inst, Space};

use crate::translate::TranslatedKernel;

/// One potential warp-synchronous dependence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Block (label) containing the suspicious load.
    pub block: String,
    /// Index of the load within the block.
    pub inst_index: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Scan a translated kernel for shared-memory loads that may observe
/// another thread's store without an intervening barrier.
///
/// Returns one finding per suspicious load (empty = clean).
pub fn warp_sync_lint(tk: &TranslatedKernel) -> Vec<LintFinding> {
    let f = &tk.scalar;
    let n = f.blocks.len();
    // Forward data-flow: `dirty[b]` = a shared store may have executed
    // since the last barrier on entry to b.
    let mut dirty_in = vec![false; n];
    let mut dirty_out = vec![false; n];
    let preds = f.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let mut din = false;
            for p in &preds[i] {
                // A barrier edge cleans the flag: every thread of the CTA
                // synchronizes before the continuation runs.
                let is_barrier_edge = tk.barrier_edges.get(p) == Some(&BlockId(i as u32));
                if !is_barrier_edge && dirty_out[p.index()] {
                    din = true;
                    break;
                }
            }
            let mut dout = din;
            for inst in &f.blocks[i].insts {
                if matches!(inst, Inst::Store { space: Space::Shared, .. })
                    || matches!(inst, Inst::Atom { space: Space::Shared, .. })
                {
                    dout = true;
                }
            }
            if din != dirty_in[i] || dout != dirty_out[i] {
                dirty_in[i] = din;
                dirty_out[i] = dout;
                changed = true;
            }
        }
    }
    // Report loads that execute while the flag is set.
    let mut findings = Vec::new();
    for (i, b) in f.blocks.iter().enumerate() {
        let mut dirty = dirty_in[i];
        for (j, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Store { space: Space::Shared, .. }
                | Inst::Atom { space: Space::Shared, .. } => dirty = true,
                Inst::Load { space: Space::Shared, .. } if dirty => {
                    findings.push(LintFinding {
                        block: b.label.clone(),
                        inst_index: j,
                        message: format!(
                            "shared-memory load in `{}` may observe another thread's \
                             store without an intervening bar.sync; behaviour is \
                             undefined under dynamic warp formation (warp-synchronous \
                             idiom)",
                            b.label
                        ),
                    });
                }
                _ => {}
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use dpvk_ptx::parse_kernel;

    fn lint(src: &str) -> Vec<LintFinding> {
        warp_sync_lint(&translate(&parse_kernel(src).unwrap()).unwrap())
    }

    #[test]
    fn synchronized_exchange_is_clean() {
        let findings = lint(
            r#"
.kernel ok (.param .u64 out) {
  .shared .u32 buf[32];
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
entry:
  mov.u32 %r0, %tid.x;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  mov.u64 %rd1, buf;
  add.u64 %rd1, %rd1, %rd0;
  st.shared.u32 [%rd1], %r0;
  bar.sync 0;
  ld.shared.u32 %r2, [%rd1];
  ld.param.u64 %rd2, [out];
  st.global.u32 [%rd2], %r2;
  ret;
}
"#,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsynchronized_exchange_is_flagged() {
        let findings = lint(
            r#"
.kernel racy (.param .u64 out) {
  .shared .u32 buf[32];
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
entry:
  mov.u32 %r0, %tid.x;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  mov.u64 %rd1, buf;
  add.u64 %rd1, %rd1, %rd0;
  st.shared.u32 [%rd1], %r0;
  ld.shared.u32 %r2, [%rd1];
  ld.param.u64 %rd2, [out];
  st.global.u32 [%rd2], %r2;
  ret;
}
"#,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("warp-synchronous"));
    }

    #[test]
    fn store_after_barrier_in_loop_is_flagged_on_back_edge() {
        // The store at the loop bottom reaches the load at the loop top on
        // the back edge without a barrier.
        let findings = lint(
            r#"
.kernel loopy () {
  .shared .u32 buf[32];
  .reg .u32 %r<6>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, 0;
  mov.u64 %rd0, buf;
head:
  ld.shared.u32 %r2, [%rd0];
  add.u32 %r2, %r2, 1;
  st.shared.u32 [%rd0], %r2;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p0, %r1, 4;
  @%p0 bra head;
  ret;
}
"#,
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn barrier_in_loop_cleans_each_iteration() {
        let findings = lint(
            r#"
.kernel clean_loop () {
  .shared .u32 buf[32];
  .reg .u32 %r<6>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, 0;
  mov.u64 %rd0, buf;
head:
  ld.shared.u32 %r2, [%rd0];
  add.u32 %r2, %r2, 1;
  bar.sync 0;
  st.shared.u32 [%rd0], %r2;
  bar.sync 0;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p0, %r1, 4;
  @%p0 bra head;
  ret;
}
"#,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
