//! A CUDA-runtime-like host API: device memory, module registration,
//! parameter packing and kernel launch.
//!
//! This is the front-end the paper wraps around its compilation model
//! ("the proposed compilation model is wrapped by an API front-end for
//! heterogeneous computing", Section 3).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpvk_ptx as ptx;
use dpvk_vm::{CancelToken, GlobalMem, MachineModel};

use crate::cache::{CacheStats, TranslationCache};
use crate::devmem::{DevHeap, MemoryStats};
use crate::error::CoreError;
use crate::exec::job::{self, InflightGauge, LaunchRequest, StreamShared};
use crate::exec::worker::{pool_size, WorkerPool};
use crate::exec::{ExecConfig, FormationPolicy, LaunchHandle, LaunchStats};
use crate::specialize::{PolicySnapshot, PolicyTable};

/// A kernel launch parameter value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// 32-bit unsigned (also used for `.s32`/`.b32` parameters).
    U32(u32),
    /// 64-bit unsigned (also used for `.s64`/`.b64` parameters).
    U64(u64),
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// Device pointer (an offset into global memory).
    Ptr(DevicePtr),
}

/// A device global-memory pointer (byte offset into the global arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Pointer `bytes` past this one.
    pub fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }
}

/// The simulated device: global memory, a translation cache, a
/// persistent pool of execution-manager workers, and launch facilities.
///
/// The pool is created with the device and parks when idle, so launches
/// — blocking or [asynchronous](Device::launch_async) — enqueue work
/// instead of spawning threads. Launches on one [`Stream`] run in
/// submission order; launches on different streams (or plain
/// `launch_async` calls) may overlap. Dropping the device drains the
/// pool: every outstanding [`LaunchHandle`] completes first.
pub struct Device {
    model: MachineModel,
    global: Arc<GlobalMem>,
    cache: TranslationCache,
    heap: DevHeap,
    heap_size: u64,
    pool: WorkerPool,
    inflight: Arc<InflightGauge>,
    next_stream: std::sync::atomic::AtomicU64,
    /// Adaptive width-policy table shared by every launch path of this
    /// device (blocking, async, stream).
    policy: Arc<PolicyTable>,
}

impl Device {
    /// Create a device with the given machine model and global-memory heap
    /// size in bytes. Spawns the device's worker pool: `DPVK_POOL_WORKERS`
    /// workers when set, otherwise at least the host parallelism and the
    /// model's core count (so a default-config launch always has a worker
    /// per chunk).
    pub fn new(model: MachineModel, heap_size: usize) -> Self {
        Self::with_persist(model, heap_size, crate::persist::PersistConfig::from_env())
    }

    /// [`Device::new`] with explicit control of the persistent
    /// translation cache: `None` keeps compilation artifacts in memory
    /// only, `Some` rehydrates translations and specializations from
    /// (and stores them to) the configured directory. [`Device::new`]
    /// itself configures persistence from the environment
    /// (`DPVK_CACHE`, `DPVK_CACHE_DIR`, `DPVK_CACHE_CAP`).
    pub fn with_persist(
        model: MachineModel,
        heap_size: usize,
        persist: Option<crate::persist::PersistConfig>,
    ) -> Self {
        dpvk_trace::init_from_env();
        let pool = WorkerPool::new(pool_size(model.cores as usize));
        let global = GlobalMem::new(heap_size);
        Device {
            cache: TranslationCache::with_persist(model.clone(), persist),
            model,
            // The heap starts at offset 64 so null stays distinct.
            heap: DevHeap::new(Arc::clone(&global), heap_size as u64),
            global,
            heap_size: heap_size as u64,
            pool,
            inflight: Arc::new(InflightGauge::new()),
            next_stream: std::sync::atomic::AtomicU64::new(1),
            policy: Arc::new(PolicyTable::new()),
        }
    }

    /// The machine model.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Direct access to global memory (for tests and host-side setup).
    pub fn global(&self) -> &GlobalMem {
        &self.global
    }

    /// The translation cache.
    pub fn cache(&self) -> &TranslationCache {
        &self.cache
    }

    /// Register all kernels in `module`.
    pub fn register_module(&self, module: &ptx::Module) {
        self.cache.register_module(module);
    }

    /// Parse and register kernels from source text.
    ///
    /// # Errors
    ///
    /// Returns parse/validation errors.
    pub fn register_source(&self, src: &str) -> Result<(), CoreError> {
        let _phase = dpvk_trace::phase("module", "parse");
        let module = ptx::parse_module(src)?;
        for k in &module.kernels {
            ptx::validate_kernel(k)?;
        }
        self.register_module(&module);
        Ok(())
    }

    /// Allocate `size` bytes of global memory (64-byte aligned,
    /// zero-initialized). The block is owned by the caller until
    /// [`Device::free`]; prefer [`Device::alloc`] for scope-tied
    /// buffers that free themselves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Memory`] when the rounded size overflows,
    /// or [`CoreError::MemoryExhausted`] when the heap cannot satisfy
    /// the request even after evicting idle blocks.
    pub fn malloc(&self, size: usize) -> Result<DevicePtr, CoreError> {
        self.heap.alloc(size).map(DevicePtr)
    }

    /// Release a block previously returned by [`Device::malloc`] back
    /// to the heap's free lists, making it eligible for reuse.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Memory`] on a pointer that is not a live
    /// allocation (never allocated, already freed, or interior).
    pub fn free(&self, ptr: DevicePtr) -> Result<(), CoreError> {
        self.heap.free(ptr.0)
    }

    /// Allocate `size` bytes as an RAII [`DeviceBuffer`] that frees
    /// itself when dropped. The CUDA-style manual pair is still
    /// available as [`Device::malloc`]/[`Device::free`].
    ///
    /// # Errors
    ///
    /// See [`Device::malloc`].
    pub fn alloc(&self, size: usize) -> Result<DeviceBuffer<'_>, CoreError> {
        let ptr = self.malloc(size)?;
        Ok(DeviceBuffer { dev: self, ptr, len: size })
    }

    /// A snapshot of heap occupancy and allocator activity: live/free/
    /// reserve bytes, the high-water mark, and cumulative reuse, fresh
    /// and eviction byte counts.
    pub fn memory_stats(&self) -> MemoryStats {
        self.heap.stats()
    }

    /// Copy host bytes to device memory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Vm`] on out-of-range copies.
    pub fn memcpy_htod(&self, dst: DevicePtr, data: &[u8]) -> Result<(), CoreError> {
        self.global.copy_in(dst.0, data)?;
        Ok(())
    }

    /// Copy device memory to host bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Vm`] on out-of-range copies.
    pub fn memcpy_dtoh(&self, dst: &mut [u8], src: DevicePtr) -> Result<(), CoreError> {
        self.global.copy_out(src.0, dst)?;
        Ok(())
    }

    /// Copy a slice of `f32` to the device.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Vm`] on out-of-range copies.
    pub fn copy_f32_htod(&self, dst: DevicePtr, data: &[f32]) -> Result<(), CoreError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.memcpy_htod(dst, &bytes)
    }

    /// Read a slice of `f32` back from the device.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Vm`] on out-of-range copies.
    pub fn copy_f32_dtoh(&self, src: DevicePtr, len: usize) -> Result<Vec<f32>, CoreError> {
        let mut bytes = vec![0u8; len * 4];
        self.memcpy_dtoh(&mut bytes, src)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Copy a slice of `u32` to the device.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Vm`] on out-of-range copies.
    pub fn copy_u32_htod(&self, dst: DevicePtr, data: &[u32]) -> Result<(), CoreError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.memcpy_htod(dst, &bytes)
    }

    /// Read a slice of `u32` back from the device.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Vm`] on out-of-range copies.
    pub fn copy_u32_dtoh(&self, src: DevicePtr, len: usize) -> Result<Vec<u32>, CoreError> {
        let mut bytes = vec![0u8; len * 4];
        self.memcpy_dtoh(&mut bytes, src)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Pack launch parameters according to the kernel's signature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadLaunch`] when the argument count or types
    /// do not match the declaration.
    pub fn pack_params(&self, kernel: &str, args: &[ParamValue]) -> Result<Vec<u8>, CoreError> {
        let tk = self.cache.translated(kernel)?;
        let _ = tk;
        // Re-read the declaration for offsets/types.
        let decl = {
            // The cache owns the kernel; go through a private reparse-free
            // path: translated() guarantees registration, so we can look at
            // the declaration via the kernels map.
            self.cache.kernel_declaration(kernel)?
        };
        if decl.params.len() != args.len() {
            return Err(CoreError::BadLaunch(format!(
                "kernel `{kernel}` expects {} parameters, got {}",
                decl.params.len(),
                args.len()
            )));
        }
        let mut buf = vec![0u8; decl.param_buffer_size()];
        for (p, a) in decl.params.iter().zip(args) {
            let bytes: Vec<u8> = match (p.ty.size_bytes(), a) {
                (4, ParamValue::U32(v)) => v.to_le_bytes().to_vec(),
                (4, ParamValue::F32(v)) => v.to_le_bytes().to_vec(),
                (8, ParamValue::U64(v)) => v.to_le_bytes().to_vec(),
                (8, ParamValue::F64(v)) => v.to_le_bytes().to_vec(),
                (8, ParamValue::Ptr(v)) => v.0.to_le_bytes().to_vec(),
                (size, other) => {
                    return Err(CoreError::BadLaunch(format!(
                        "parameter `{}` is {size} bytes but argument is {other:?}",
                        p.name
                    )))
                }
            };
            buf[p.offset..p.offset + bytes.len()].copy_from_slice(&bytes);
        }
        Ok(buf)
    }

    /// Package a launch for submission to this device's pool.
    fn request(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
        token: CancelToken,
    ) -> Result<LaunchRequest, CoreError> {
        let param = self.pack_params(kernel, args)?;
        let mut config = *config;
        if config.policy == FormationPolicy::Dynamic {
            // Let the adaptive policy steer the width (identity unless
            // `DPVK_ADAPT=on`); a finished background respecialization
            // is adopted here, at the launch boundary.
            config.max_warp = self.policy.decide(kernel, config.max_warp, &config.adapt);
        }
        Ok(LaunchRequest {
            cache: self.cache.clone(),
            kernel: kernel.to_string(),
            grid,
            block,
            param,
            cbank: Vec::new(),
            global: Arc::clone(&self.global),
            config,
            token,
            policy: Some(Arc::clone(&self.policy)),
        })
    }

    /// Launch `kernel` over `grid` CTAs of `block` threads and block
    /// until it completes (submit + wait on the device's worker pool).
    ///
    /// # Errors
    ///
    /// Returns compilation, configuration or execution errors.
    pub fn launch(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
    ) -> Result<LaunchStats, CoreError> {
        self.launch_async(kernel, grid, block, args, config)?.wait()
    }

    /// Launch `kernel` asynchronously: the launch is enqueued on the
    /// device's worker pool and this call returns immediately with a
    /// [`LaunchHandle`] to wait on, poll, or cancel. Launches submitted
    /// this way are unordered with respect to each other; use a
    /// [`Stream`](Device::stream) for in-order submission.
    ///
    /// # Errors
    ///
    /// Launch-geometry and compilation errors surface here,
    /// synchronously; execution errors surface from
    /// [`LaunchHandle::wait`].
    pub fn launch_async(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
    ) -> Result<LaunchHandle, CoreError> {
        let req = self.request(kernel, grid, block, args, config, CancelToken::new())?;
        job::submit(&self.pool, req, None, Some(Arc::clone(&self.inflight)))
    }

    /// Create a new stream on this device. Launches submitted to the
    /// stream run in submission order (at most one in the pool at a
    /// time); launches on different streams may overlap. Streams are
    /// independent and cheap; dropping one does not affect its in-flight
    /// launches.
    pub fn stream(&self) -> Stream<'_> {
        let id = self.next_stream.fetch_add(1, Ordering::Relaxed);
        Stream { dev: self, shared: Arc::new(StreamShared::new(id)) }
    }

    /// Block until every launch submitted to this device — blocking,
    /// async, or via any stream — has completed.
    pub fn synchronize(&self) {
        self.inflight.wait_idle();
    }

    /// Number of worker threads in the device's pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.size()
    }

    /// Bytes of device heap currently live (allocated and not yet
    /// freed), at block granularity. Freed and reused blocks are
    /// reflected: long-running services watch this for admission
    /// decisions, and it falls when buffers are released.
    pub fn heap_used(&self) -> u64 {
        self.heap.live_bytes()
    }

    /// Total device heap capacity in bytes.
    pub fn heap_capacity(&self) -> u64 {
        self.heap_size
    }

    /// [`Device::launch`] with a wall-clock budget: the launch fails with
    /// a [`dpvk_vm::VmError::Deadline`] fault (wrapped in
    /// [`CoreError::Fault`] with provenance) if it is still running when
    /// `budget` elapses. The kill is cooperative — workers poll every
    /// [`dpvk_vm::ExecLimits::check_interval`] interpreted instructions
    /// and at warp/CTA boundaries — so a runaway kernel dies within a
    /// small multiple of the poll interval, not instantly.
    ///
    /// # Errors
    ///
    /// Returns compilation, configuration or execution errors; deadline
    /// expiry satisfies [`CoreError::is_deadline`].
    pub fn launch_with_deadline(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
        budget: Duration,
    ) -> Result<LaunchStats, CoreError> {
        let mut config = *config;
        config.limits.deadline = Some(Instant::now() + budget);
        self.launch(kernel, grid, block, args, &config)
    }

    /// [`Device::launch`] with a host-held cancellation token. Cancelling
    /// `cancel` from any thread stops the launch cooperatively; the
    /// runtime also cancels the token itself when a worker faults, so
    /// the token is good for this one launch only.
    ///
    /// # Errors
    ///
    /// Returns compilation, configuration or execution errors; host
    /// cancellation satisfies [`CoreError::is_cancelled`].
    pub fn launch_cancellable(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<LaunchStats, CoreError> {
        let req = self.request(kernel, grid, block, args, config, cancel.clone())?;
        job::submit(&self.pool, req, None, Some(Arc::clone(&self.inflight)))?.wait()
    }

    /// Translation-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Adaptation state of `kernel` under the device's width policy:
    /// launches observed, the width currently steered to, the final
    /// committed width once exploration converges, and how many
    /// background respecializations were scheduled. Zeroed for kernels
    /// the device has never launched (or when `DPVK_ADAPT` is off —
    /// observe mode still counts launches).
    pub fn width_policy(&self, kernel: &str) -> PolicySnapshot {
        self.policy.snapshot(kernel)
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("model", &self.model.name)
            .field("heap_size", &self.heap_size)
            .field("pool_workers", &self.pool.size())
            .field("cache", &self.cache)
            .finish()
    }
}

/// An RAII device allocation from [`Device::alloc`]: frees itself back
/// to the heap when dropped, so per-iteration scratch buffers in
/// workloads and examples recycle instead of leaking bump space.
///
/// The buffer dereferences to its [`DevicePtr`] via [`DeviceBuffer::ptr`];
/// pass that to launches and copies. Dropping the buffer while a launch
/// that references it is still in flight is a caller bug (like freeing
/// a CUDA buffer mid-kernel): the memory may be recycled under the
/// kernel. Synchronize first.
#[derive(Debug)]
pub struct DeviceBuffer<'d> {
    dev: &'d Device,
    ptr: DevicePtr,
    len: usize,
}

impl DeviceBuffer<'_> {
    /// The device pointer to the start of the buffer.
    pub fn ptr(&self) -> DevicePtr {
        self.ptr
    }

    /// Requested length in bytes (the underlying block may be larger).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the requested length was zero (the underlying block is
    /// still at least one 64-byte class).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Release the buffer explicitly, surfacing any free error (drop
    /// ignores it).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Memory`] if the block was already freed
    /// out from under the buffer via [`Device::free`].
    pub fn release(self) -> Result<(), CoreError> {
        let ptr = self.ptr;
        let dev = self.dev;
        std::mem::forget(self);
        dev.free(ptr)
    }
}

impl Drop for DeviceBuffer<'_> {
    fn drop(&mut self) {
        // Double-free via a manual `Device::free` on our pointer is a
        // caller bug; the heap reports it, drop cannot.
        let _ = self.dev.free(self.ptr);
    }
}

/// An in-order launch queue on a [`Device`] — the CUDA stream of the
/// front-end. Launches submitted to one stream execute in submission
/// order (at most one of the stream's launches occupies the pool at a
/// time; the worker that retires it promotes the next). Launches on
/// different streams, and plain [`Device::launch_async`] calls, may
/// overlap freely.
pub struct Stream<'d> {
    dev: &'d Device,
    shared: Arc<StreamShared>,
}

impl Stream<'_> {
    /// This stream's device-unique identifier (as reported in dpvk-trace
    /// stream events).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Enqueue a launch on this stream, after every launch previously
    /// submitted to it, and return its handle immediately.
    ///
    /// # Errors
    ///
    /// Launch-geometry and compilation errors surface here,
    /// synchronously (nothing is enqueued); execution errors surface
    /// from [`LaunchHandle::wait`]. A failed launch does *not* block the
    /// stream: later submissions still run.
    pub fn launch(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
    ) -> Result<LaunchHandle, CoreError> {
        self.launch_cancellable(kernel, grid, block, args, config, &CancelToken::new())
    }

    /// [`Stream::launch`] with a host-held cancellation token (in
    /// addition to [`LaunchHandle::cancel`]). Cancelling one launch does
    /// not cancel or reorder the stream's other launches.
    ///
    /// # Errors
    ///
    /// See [`Stream::launch`].
    pub fn launch_cancellable(
        &self,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[ParamValue],
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<LaunchHandle, CoreError> {
        let req = self.dev.request(kernel, grid, block, args, config, cancel.clone())?;
        job::submit(
            &self.dev.pool,
            req,
            Some(Arc::clone(&self.shared)),
            Some(Arc::clone(&self.dev.inflight)),
        )
    }

    /// Launches accepted by this stream but not yet released to the pool
    /// (queued behind the stream's active launch).
    pub fn pending(&self) -> usize {
        self.shared.held()
    }

    /// Block until every launch submitted to this stream has completed.
    pub fn synchronize(&self) {
        self.shared.wait_idle();
    }
}

impl std::fmt::Debug for Stream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("id", &self.shared.id)
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: &str = r#"
.kernel scale (.param .u64 data, .param .f32 alpha, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %r1;
  ld.param.u32 %r2, [n];
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra done;
  cvt.u64.u32 %rd1, %r1;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [data];
  add.u64 %rd2, %rd2, %rd1;
  ld.global.f32 %f1, [%rd2];
  ld.param.f32 %f2, [alpha];
  mul.f32 %f1, %f1, %f2;
  st.global.f32 [%rd2], %f1;
done:
  ret;
}
"#;

    #[test]
    fn end_to_end_scale() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
        dev.register_source(SCALE).unwrap();
        let n = 70usize;
        let buf = dev.malloc(n * 4).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        dev.copy_f32_htod(buf, &data).unwrap();
        let stats = dev
            .launch(
                "scale",
                [3, 1, 1],
                [32, 1, 1],
                &[ParamValue::Ptr(buf), ParamValue::F32(2.5), ParamValue::U32(n as u32)],
                &ExecConfig::dynamic(4),
            )
            .unwrap();
        let out = dev.copy_f32_dtoh(buf, n).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.5 * i as f32);
        }
        assert!(stats.exec.total_cycles() > 0);
        assert!(dev.cache_stats().misses > 0);
    }

    #[test]
    fn param_count_mismatch_is_rejected() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        dev.register_source(SCALE).unwrap();
        let err = dev
            .launch("scale", [1, 1, 1], [1, 1, 1], &[ParamValue::U32(1)], &ExecConfig::baseline())
            .unwrap_err();
        assert!(matches!(err, CoreError::BadLaunch(_)));
    }

    #[test]
    fn param_type_mismatch_is_rejected() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 16);
        dev.register_source(SCALE).unwrap();
        let err = dev
            .launch(
                "scale",
                [1, 1, 1],
                [1, 1, 1],
                &[ParamValue::U32(0), ParamValue::F32(1.0), ParamValue::U32(0)],
                &ExecConfig::baseline(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadLaunch(_)), "{err:?}");
    }

    #[test]
    fn malloc_is_aligned_and_bounded() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 4096);
        let a = dev.malloc(10).unwrap();
        let b = dev.malloc(10).unwrap();
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0 % 64, 0);
        assert!(b.0 >= a.0 + 64);
        assert!(dev.malloc(1 << 20).is_err());
    }

    #[test]
    fn malloc_overflow_is_reported_not_wrapped() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 4096);
        assert!(matches!(dev.malloc(usize::MAX), Err(CoreError::Memory(_))));
        assert!(matches!(dev.malloc(usize::MAX - 62), Err(CoreError::Memory(_))));
        // A failed allocation must not consume heap: the next small one
        // still fits.
        assert!(dev.malloc(64).is_ok());
    }

    #[test]
    fn launch_with_deadline_passes_when_budget_is_generous() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
        dev.register_source(SCALE).unwrap();
        let n = 16usize;
        let buf = dev.malloc(n * 4).unwrap();
        dev.copy_f32_htod(buf, &vec![1.0; n]).unwrap();
        dev.launch_with_deadline(
            "scale",
            [1, 1, 1],
            [16, 1, 1],
            &[ParamValue::Ptr(buf), ParamValue::F32(3.0), ParamValue::U32(n as u32)],
            &ExecConfig::dynamic(4),
            Duration::from_secs(60),
        )
        .unwrap();
        assert!(dev.copy_f32_dtoh(buf, n).unwrap().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn pre_cancelled_launch_fails_and_device_stays_usable() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
        dev.register_source(SCALE).unwrap();
        let n = 16usize;
        let buf = dev.malloc(n * 4).unwrap();
        dev.copy_f32_htod(buf, &vec![1.0; n]).unwrap();
        let args = [ParamValue::Ptr(buf), ParamValue::F32(2.0), ParamValue::U32(n as u32)];
        let token = CancelToken::new();
        token.cancel();
        let err = dev
            .launch_cancellable(
                "scale",
                [1, 1, 1],
                [16, 1, 1],
                &args,
                &ExecConfig::dynamic(4),
                &token,
            )
            .unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(err.to_string().contains("scale"), "{err}");
        // The device is not poisoned: a fresh launch succeeds.
        dev.launch("scale", [1, 1, 1], [16, 1, 1], &args, &ExecConfig::dynamic(4)).unwrap();
        assert!(dev.copy_f32_dtoh(buf, n).unwrap().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn memcpy_round_trip() {
        let dev = Device::new(MachineModel::sandybridge_sse(), 4096);
        let p = dev.malloc(16).unwrap();
        dev.memcpy_htod(p, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        dev.memcpy_dtoh(&mut out, p).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }
}
