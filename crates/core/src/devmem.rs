//! Size-classed device heap with reuse and eviction.
//!
//! Replaces the original bump-only allocator of [`Device`]: allocations
//! are rounded to power-of-two size classes (64 B minimum) and served,
//! in order of preference, from the matching class's free list (LIFO —
//! the hottest block first), from a *reserve* of coalesced evicted
//! ranges (best-fit with splitting), or by bumping the virgin frontier.
//! When the frontier is exhausted, idle free blocks are evicted —
//! oldest-freed first — into the reserve, where adjacent ranges coalesce
//! so that large requests can be satisfied from many small corpses.
//!
//! Two invariants matter to callers:
//!
//! * **Alignment.** Every block offset and size is a multiple of 64, so
//!   the 64-byte alignment the original bump allocator guaranteed holds
//!   for reused blocks too.
//! * **Zero on reuse.** The global arena is zero-initialized, so virgin
//!   frontier memory reads as zero; reused and reserve-carved blocks are
//!   explicitly re-zeroed before being handed out. A buffer's initial
//!   contents therefore never depend on allocation history, which keeps
//!   workload digests reproducible under churn.
//!
//! [`Device`]: crate::runtime::Device

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use dpvk_trace::Counter;
use dpvk_vm::GlobalMem;

use crate::error::CoreError;

/// Requests at or below this many bytes are rounded to a power-of-two
/// size class; larger ones get an exact (64-byte-rounded) block so a
/// 1.5 MiB request does not burn 2 MiB of heap.
const LARGE_THRESHOLD: u64 = 1 << 20;

/// Minimum block size and universal alignment.
const MIN_CLASS: u64 = 64;

/// A snapshot of device-heap occupancy and allocator activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes currently allocated (block sizes, including rounding).
    pub live_bytes: u64,
    /// Bytes sitting on per-class free lists, ready for exact reuse.
    pub free_bytes: u64,
    /// Bytes in the coalesced reserve (evicted ranges awaiting carving).
    pub reserve_bytes: u64,
    /// Highest `live_bytes` ever observed.
    pub high_water: u64,
    /// Total heap capacity in bytes (includes the reserved null page).
    pub capacity: u64,
    /// Number of live allocations.
    pub live_blocks: usize,
    /// Cumulative bytes served by reusing a freed block or reserve range.
    pub reuse_bytes: u64,
    /// Cumulative bytes served from the virgin bump frontier.
    pub fresh_bytes: u64,
    /// Cumulative bytes of idle blocks evicted into the reserve.
    pub evicted_bytes: u64,
}

/// A block on a size class's free list.
#[derive(Debug, Clone, Copy)]
struct FreeBlock {
    offset: u64,
    /// Allocator clock value at `free` time; smaller = longer idle.
    freed_tick: u64,
}

/// A live allocation, keyed by offset in the owning map.
#[derive(Debug, Clone, Copy)]
struct LiveBlock {
    /// Block size actually consumed (class-rounded or exact-64-rounded).
    size: u64,
}

#[derive(Debug, Default)]
struct HeapInner {
    /// Virgin frontier: everything at or above this offset has never
    /// been allocated (and therefore still reads as zero).
    bump: u64,
    /// Live allocations by offset.
    live: HashMap<u64, LiveBlock>,
    /// Free lists keyed by block size. LIFO within a class.
    free: BTreeMap<u64, Vec<FreeBlock>>,
    /// Coalesced evicted ranges: offset → length.
    reserve: BTreeMap<u64, u64>,
    live_bytes: u64,
    free_bytes: u64,
    reserve_bytes: u64,
    high_water: u64,
    /// Monotonic event clock ordering frees for LRU eviction.
    tick: u64,
    reuse_bytes: u64,
    fresh_bytes: u64,
    evicted_bytes: u64,
}

/// The device heap: a size-classed allocator over `[64, capacity)` of a
/// [`GlobalMem`] arena. Offset 0 is never handed out so a null
/// [`DevicePtr`](crate::runtime::DevicePtr) stays distinguishable.
pub(crate) struct DevHeap {
    global: Arc<GlobalMem>,
    capacity: u64,
    inner: Mutex<HeapInner>,
}

impl DevHeap {
    pub(crate) fn new(global: Arc<GlobalMem>, capacity: u64) -> Self {
        let bump = MIN_CLASS.min(capacity);
        DevHeap { global, capacity, inner: Mutex::new(HeapInner { bump, ..Default::default() }) }
    }

    /// Round a request to its block size: the 64-byte-aligned size for
    /// large requests, the next power of two (min 64) otherwise.
    /// Returns `None` when rounding overflows.
    fn block_size(size: usize) -> Option<u64> {
        let aligned = (size.max(1) as u64).checked_add(MIN_CLASS - 1)? & !(MIN_CLASS - 1);
        if aligned <= LARGE_THRESHOLD {
            Some(aligned.next_power_of_two().max(MIN_CLASS))
        } else {
            Some(aligned)
        }
    }

    /// Allocate a block for `size` bytes and return its offset.
    pub(crate) fn alloc(&self, size: usize) -> Result<u64, CoreError> {
        let block = Self::block_size(size).ok_or_else(|| {
            CoreError::Memory(format!("allocation of {size} bytes overflows the address space"))
        })?;
        let (offset, needs_zero) = {
            let mut inner = self.inner.lock().expect("device heap lock poisoned");
            inner.tick += 1;
            let (offset, reused) = match inner.carve(block, self.capacity) {
                Some(hit) => hit,
                None => {
                    return Err(CoreError::MemoryExhausted {
                        requested: size,
                        live: inner.live_bytes,
                        capacity: self.capacity,
                    })
                }
            };
            inner.live.insert(offset, LiveBlock { size: block });
            inner.live_bytes += block;
            inner.high_water = inner.high_water.max(inner.live_bytes);
            if reused {
                inner.reuse_bytes += block;
                dpvk_trace::add(Counter::AllocReuseBytes, block);
            } else {
                inner.fresh_bytes += block;
                dpvk_trace::add(Counter::AllocFreshBytes, block);
            }
            (offset, reused)
        };
        if needs_zero {
            // Outside the lock: the block is exclusively ours already,
            // and zeroing a large block should not stall other threads.
            self.global.fill_zero(offset, block as usize)?;
        }
        Ok(offset)
    }

    /// Return a block to its size class's free list.
    pub(crate) fn free(&self, offset: u64) -> Result<(), CoreError> {
        let mut inner = self.inner.lock().expect("device heap lock poisoned");
        let block = inner.live.remove(&offset).ok_or_else(|| {
            CoreError::Memory(format!(
                "free of unknown or already-freed device pointer {offset:#x}"
            ))
        })?;
        inner.tick += 1;
        let tick = inner.tick;
        inner.live_bytes -= block.size;
        inner.free_bytes += block.size;
        inner.free.entry(block.size).or_default().push(FreeBlock { offset, freed_tick: tick });
        Ok(())
    }

    /// Bytes currently allocated (block-size granularity).
    pub(crate) fn live_bytes(&self) -> u64 {
        self.inner.lock().expect("device heap lock poisoned").live_bytes
    }

    /// Snapshot of occupancy and cumulative allocator activity.
    pub(crate) fn stats(&self) -> MemoryStats {
        let inner = self.inner.lock().expect("device heap lock poisoned");
        MemoryStats {
            live_bytes: inner.live_bytes,
            free_bytes: inner.free_bytes,
            reserve_bytes: inner.reserve_bytes,
            high_water: inner.high_water,
            capacity: self.capacity,
            live_blocks: inner.live.len(),
            reuse_bytes: inner.reuse_bytes,
            fresh_bytes: inner.fresh_bytes,
            evicted_bytes: inner.evicted_bytes,
        }
    }
}

impl HeapInner {
    /// Find space for a `block`-sized allocation: exact-class free list,
    /// then reserve best-fit, then the bump frontier, then eviction of
    /// idle blocks (oldest-freed first) into the reserve. Returns the
    /// offset and whether the memory was previously used (needs
    /// re-zeroing); `None` means genuinely exhausted.
    fn carve(&mut self, block: u64, capacity: u64) -> Option<(u64, bool)> {
        if let Some(list) = self.free.get_mut(&block) {
            if let Some(fb) = list.pop() {
                if list.is_empty() {
                    self.free.remove(&block);
                }
                self.free_bytes -= block;
                return Some((fb.offset, true));
            }
        }
        if let Some(offset) = self.reserve_take(block) {
            return Some((offset, true));
        }
        if let Some(end) = self.bump.checked_add(block) {
            if end <= capacity {
                let offset = self.bump;
                self.bump = end;
                return Some((offset, false));
            }
        }
        if self.evict_until_fit(block) {
            let offset = self.reserve_take(block).expect("eviction reported a fit");
            return Some((offset, true));
        }
        None
    }

    /// Best-fit carve from the reserve: smallest range that fits, split
    /// from its start so the remainder stays aligned and coalescible.
    fn reserve_take(&mut self, need: u64) -> Option<u64> {
        let mut best: Option<(u64, u64)> = None;
        for (&off, &len) in self.reserve.iter() {
            if len >= need && best.is_none_or(|(_, bl)| len < bl) {
                best = Some((off, len));
            }
        }
        let (off, len) = best?;
        self.reserve.remove(&off);
        if len > need {
            self.reserve.insert(off + need, len - need);
        }
        self.reserve_bytes -= need;
        Some(off)
    }

    /// Insert `[off, off+len)` into the reserve, coalescing with
    /// adjacent ranges.
    fn reserve_insert(&mut self, mut off: u64, mut len: u64) {
        self.reserve_bytes += len;
        if let Some((&poff, &plen)) = self.reserve.range(..off).next_back() {
            if poff + plen == off {
                self.reserve.remove(&poff);
                off = poff;
                len += plen;
            }
        }
        if let Some(&slen) = self.reserve.get(&(off + len)) {
            self.reserve.remove(&(off + len));
            len += slen;
        }
        self.reserve.insert(off, len);
    }

    /// Evict idle free blocks — oldest `freed_tick` first — into the
    /// reserve until some reserve range fits `need` (true) or every free
    /// list is empty without producing a fit (false).
    fn evict_until_fit(&mut self, need: u64) -> bool {
        let mut idle: Vec<(u64, FreeBlock)> = Vec::new();
        for (&size, list) in self.free.iter() {
            idle.extend(list.iter().map(|fb| (size, *fb)));
        }
        idle.sort_by_key(|(_, fb)| fb.freed_tick);
        for (size, fb) in idle {
            let list = self.free.get_mut(&size).expect("free list exists for idle block");
            let at = list
                .iter()
                .position(|b| b.offset == fb.offset)
                .expect("idle block still on its free list");
            list.swap_remove(at);
            if list.is_empty() {
                self.free.remove(&size);
            }
            self.free_bytes -= size;
            self.evicted_bytes += size;
            dpvk_trace::add(Counter::AllocEvictedBytes, size);
            self.reserve_insert(fb.offset, size);
            if self.reserve.values().any(|&len| len >= need) {
                return true;
            }
        }
        false
    }
}

impl std::fmt::Debug for DevHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("DevHeap")
            .field("live_bytes", &s.live_bytes)
            .field("free_bytes", &s.free_bytes)
            .field("reserve_bytes", &s.reserve_bytes)
            .field("high_water", &s.high_water)
            .field("capacity", &s.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(capacity: u64) -> DevHeap {
        DevHeap::new(GlobalMem::new(capacity as usize), capacity)
    }

    #[test]
    fn classes_round_up_and_large_is_exact() {
        assert_eq!(DevHeap::block_size(1), Some(64));
        assert_eq!(DevHeap::block_size(64), Some(64));
        assert_eq!(DevHeap::block_size(65), Some(128));
        assert_eq!(DevHeap::block_size(1000), Some(1024));
        assert_eq!(DevHeap::block_size(1 << 20), Some(1 << 20));
        // Large path: 64-byte rounding, no power-of-two blowup.
        assert_eq!(DevHeap::block_size((1 << 20) + 1), Some((1 << 20) + 64));
        assert_eq!(DevHeap::block_size(usize::MAX), None);
    }

    #[test]
    fn exact_class_reuse_is_lifo() {
        let h = heap(1 << 16);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(100).unwrap();
        h.free(a).unwrap();
        h.free(b).unwrap();
        // LIFO: most recently freed comes back first.
        assert_eq!(h.alloc(100).unwrap(), b);
        assert_eq!(h.alloc(100).unwrap(), a);
        let s = h.stats();
        assert_eq!(s.reuse_bytes, 256);
        assert_eq!(s.fresh_bytes, 256);
    }

    #[test]
    fn double_free_and_unknown_free_are_errors() {
        let h = heap(1 << 16);
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        assert!(matches!(h.free(a), Err(CoreError::Memory(_))));
        assert!(matches!(h.free(0xdead0), Err(CoreError::Memory(_))));
    }

    #[test]
    fn eviction_coalesces_small_corpses_into_a_large_block() {
        // Heap fits exactly 8 x 128-byte blocks after the null page.
        let h = heap(64 + 8 * 128);
        let blocks: Vec<u64> = (0..8).map(|_| h.alloc(128).unwrap()).collect();
        // Free them all: the frontier is spent, free lists hold 1 KiB.
        for &b in &blocks {
            h.free(b).unwrap();
        }
        // A 512-byte allocation matches no free class (all are 128) and
        // the frontier is exhausted — eviction must coalesce.
        let big = h.alloc(512).unwrap();
        assert_eq!(big % 64, 0);
        let s = h.stats();
        assert!(s.evicted_bytes >= 512, "{s:?}");
        assert_eq!(s.live_bytes, 512);
        h.free(big).unwrap();
    }

    #[test]
    fn exhaustion_reports_typed_error() {
        let h = heap(4096);
        let _a = h.alloc(2048).unwrap();
        match h.alloc(1 << 20) {
            Err(CoreError::MemoryExhausted { requested, live, capacity }) => {
                assert_eq!(requested, 1 << 20);
                assert_eq!(live, 2048);
                assert_eq!(capacity, 4096);
            }
            other => panic!("expected MemoryExhausted, got {other:?}"),
        }
        // Overflowing sizes stay the generic Memory error.
        assert!(matches!(h.alloc(usize::MAX), Err(CoreError::Memory(_))));
    }

    #[test]
    fn reused_memory_is_zeroed() {
        let cap = 1 << 12;
        let h = heap(cap);
        let a = h.alloc(256).unwrap();
        h.global.copy_in(a, &[0xABu8; 256]).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(256).unwrap();
        assert_eq!(b, a, "exact-class reuse expected");
        let mut out = [0xFFu8; 256];
        h.global.copy_out(b, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "reused block not zeroed");
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let h = heap(1 << 16);
        let a = h.alloc(1024).unwrap();
        let b = h.alloc(1024).unwrap();
        h.free(a).unwrap();
        h.free(b).unwrap();
        let s = h.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.high_water, 2048);
    }
}
