//! Launch jobs, handles and stream state.
//!
//! A launch is *submitted*: validated and translated eagerly on the
//! calling thread (so compile errors surface synchronously, with the
//! same statistics and trace events on every path), packaged as an
//! owned [`LaunchJob`], and enqueued on a persistent
//! [`WorkerPool`](super::worker::WorkerPool) as one chunk per worker
//! share. The caller gets a [`LaunchHandle`] — the stream-ordered,
//! individually waitable/cancellable "event" of the CUDA model.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use dpvk_trace::timeline::{self, SpanKind};
use dpvk_vm::{CancelToken, GlobalMem, VmError};

use crate::cache::TranslationCache;
use crate::error::CoreError;
use crate::flight;
use crate::sync::Monitor;
use crate::translate::TranslatedKernel;

use super::stats::LaunchStats;
use super::worker::{PoolShared, WorkerPool};
use super::{boundary_fault, ExecConfig};

/// Everything a launch needs, owned: pool workers are `'static` and may
/// outlive any one caller's borrow, so the job carries cloned cache and
/// memory handles and copied parameter bytes instead of references.
pub(crate) struct LaunchRequest {
    pub cache: TranslationCache,
    pub kernel: String,
    pub grid: [u32; 3],
    pub block: [u32; 3],
    pub param: Vec<u8>,
    pub cbank: Vec<u8>,
    pub global: Arc<GlobalMem>,
    pub config: ExecConfig,
    /// The launch token: the caller's token when given, a private one
    /// otherwise. Chunks trip it on any fault so siblings of *this*
    /// launch stop early; other launches' tokens are untouched.
    pub token: CancelToken,
    /// The device's adaptive width-policy table, when the launch came
    /// through a [`Device`](crate::Device) with adaptation enabled; the
    /// retiring worker feeds the launch's `ExecStats` back into it.
    pub policy: Option<Arc<crate::specialize::policy::PolicyTable>>,
}

/// Mutable completion state of one launch, updated by pool workers as
/// chunks finish.
struct JobInner {
    /// Chunks still running or queued.
    remaining: usize,
    /// Stats merged from finished chunks (merging is commutative, so
    /// completion order does not matter).
    stats: LaunchStats,
    /// Per-chunk error slot, indexed by chunk — the final merge walks
    /// them in chunk order, replicating the spawn-per-launch error
    /// priority exactly.
    errors: Vec<Option<CoreError>>,
    /// Per-chunk first-unfinished-CTA slot.
    stopped: Vec<Option<u32>>,
    /// The finalized outcome; present exactly when `remaining == 0`.
    outcome: Option<Result<LaunchStats, CoreError>>,
}

/// One launch in flight on the pool.
pub(crate) struct LaunchJob {
    pub req: LaunchRequest,
    /// The eagerly translated kernel, shared by every chunk (and used as
    /// the identity key of worker dispatch memos).
    pub tk: Arc<TranslatedKernel>,
    pub cta_count: u64,
    /// Number of chunks the grid is striped across; chunk `i` runs CTAs
    /// `i, i + chunks, …` (the old per-worker partition).
    pub chunks: usize,
    /// Stream this job is ordered on, if any.
    stream: Option<Arc<StreamShared>>,
    /// Device in-flight gauge, decremented at completion.
    gauge: Option<Arc<InflightGauge>>,
    state: Monitor<JobInner>,
    /// Flight-recorder launch sequence number; 0 when tracing was off at
    /// submission, which disables all timeline work for this job.
    pub(crate) seq: u64,
    /// Timeline timestamp of submission, origin of the queue-wait span.
    submit_ns: u64,
    /// Set by the first chunk to start executing; that chunk closes the
    /// queue-wait span (submission → first dispatch).
    queue_wait_done: AtomicBool,
}

impl LaunchJob {
    /// Stream id for timeline attribution (0 for the default stream).
    pub(crate) fn stream_id(&self) -> u64 {
        self.stream.as_ref().map_or(0, |s| s.id)
    }

    /// Called by a worker immediately before it runs a chunk of this
    /// job; the first caller closes the launch's queue-wait span
    /// (submission → first dispatch) on the stream track. One untaken
    /// branch per chunk when the flight recorder is off.
    pub(crate) fn note_chunk_start(&self) {
        if self.seq == 0 || self.queue_wait_done.swap(true, Relaxed) {
            return;
        }
        flight::emit_stream_span(
            SpanKind::QueueWait,
            &self.req.kernel,
            self.seq,
            self.stream_id(),
            self.submit_ns,
            timeline::now_ns().saturating_sub(self.submit_ns),
            self.chunks as u64,
        );
    }

    /// Record one finished chunk; the worker that retires the last chunk
    /// finalizes the outcome, wakes waiters, and releases the stream's
    /// next job into `pool`.
    pub(crate) fn complete_chunk(
        self: &Arc<Self>,
        index: usize,
        stats: LaunchStats,
        error: Option<CoreError>,
        stopped_at: Option<u32>,
        pool: &PoolShared,
    ) {
        let finished = {
            let mut st = self.state.lock();
            st.stats.merge(&stats);
            st.errors[index] = error;
            st.stopped[index] = stopped_at;
            st.remaining -= 1;
            if st.remaining == 0 {
                let outcome = finalize(&self.req.kernel, &mut st);
                if let (Some(policy), Ok(stats)) = (&self.req.policy, &outcome) {
                    // Feed the launch's modeled cost back into the
                    // adaptive width policy before the outcome becomes
                    // visible to waiters, so a caller that immediately
                    // relaunches observes every prior launch's score.
                    policy.observe(
                        &self.req.kernel,
                        self.req.config.max_warp,
                        stats,
                        &self.req.config.adapt,
                        &self.req.cache,
                        pool,
                    );
                }
                st.outcome = Some(outcome);
                true
            } else {
                false
            }
        };
        if finished {
            self.state.notify_all();
            dpvk_trace::add(dpvk_trace::Counter::LaunchesRetired, 1);
            if self.seq != 0 {
                // Instantaneous retire edge on the stream track.
                flight::emit_stream_span(
                    SpanKind::Retire,
                    &self.req.kernel,
                    self.seq,
                    self.stream_id(),
                    timeline::now_ns(),
                    0,
                    self.cta_count,
                );
            }
            if let Some(gauge) = &self.gauge {
                gauge.dec();
            }
            if let Some(stream) = &self.stream {
                stream.on_job_retired(&self.req.kernel, pool);
            }
        }
    }

    fn wait_outcome(&self) -> Result<LaunchStats, CoreError> {
        let guard = self.state.lock();
        let guard = self.state.wait_while(guard, |st| st.outcome.is_none());
        guard.outcome.clone().expect("job finalized before wakeup")
    }

    fn try_outcome(&self) -> Option<Result<LaunchStats, CoreError>> {
        self.state.lock().outcome.clone()
    }
}

/// Merge per-chunk outcomes into the launch result, replicating the
/// spawn-per-launch semantics: stats from every chunk count (even failed
/// ones, so Figure-9-style breakdowns stay honest under degradation),
/// and the winning error is the first in chunk order, with genuine
/// faults preferred over the secondary cancellations they caused.
fn finalize(kernel: &str, st: &mut JobInner) -> Result<LaunchStats, CoreError> {
    let mut first_error: Option<CoreError> = None;
    let mut interrupted = false;
    for i in 0..st.errors.len() {
        interrupted |= st.stopped[i].is_some();
        match (&first_error, &st.errors[i]) {
            (None, Some(e)) => first_error = Some(e.clone()),
            (Some(prev), Some(e)) if prev.is_cancelled() && !e.is_cancelled() => {
                first_error = Some(e.clone());
            }
            _ => {}
        }
    }
    let total = &st.stats;
    dpvk_trace::add(dpvk_trace::Counter::SpillBytes, total.exec.spill_bytes);
    dpvk_trace::add(dpvk_trace::Counter::RestoreBytes, total.exec.restore_bytes);
    if total.exec.downgraded_warps > 0 {
        dpvk_trace::add(dpvk_trace::Counter::DowngradedWarps, total.exec.downgraded_warps);
    }
    if total.exec.cancelled_warps > 0 {
        dpvk_trace::add(dpvk_trace::Counter::CancelledWarps, total.exec.cancelled_warps);
    }
    if first_error.is_none() && interrupted {
        // The host cancelled the token and no chunk faulted: surface the
        // cancellation with the first interrupted CTA as provenance.
        let cta = st.stopped.iter().flatten().copied().min().unwrap_or(0);
        first_error = Some(boundary_fault(kernel, cta, VmError::Cancelled));
    }
    match first_error {
        Some(e) => {
            // Lead with the stable error code so trace consumers classify
            // faults without parsing the human-readable rendering.
            dpvk_trace::record_fault(kernel, &format!("[{}] {e}", e.code()));
            Err(e)
        }
        None => Ok(st.stats.clone()),
    }
}

/// A handle to one asynchronous launch: wait on it, poll it, or cancel
/// it — each launch independently, so cancelling one in-flight launch
/// (or a worker panic inside it) cannot poison its siblings.
///
/// Dropping the handle does *not* cancel the launch; it keeps running to
/// completion (its memory effects land either way).
#[derive(Clone)]
pub struct LaunchHandle {
    pub(crate) job: Arc<LaunchJob>,
}

impl LaunchHandle {
    /// Block until the launch completes and return its result. Repeat
    /// waits return the same result.
    ///
    /// # Errors
    ///
    /// The first error raised by any worker chunk, with genuine faults
    /// preferred over secondary cancellations — identical to the
    /// blocking launch path.
    pub fn wait(&self) -> Result<LaunchStats, CoreError> {
        self.job.wait_outcome()
    }

    /// The result if the launch has completed, `None` while it is still
    /// queued or running. Never blocks.
    pub fn try_wait(&self) -> Option<Result<LaunchStats, CoreError>> {
        self.job.try_outcome()
    }

    /// Whether the launch has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.job.try_outcome().is_some()
    }

    /// Trip this launch's cancellation token. Cooperative: chunks stop
    /// at their next poll (warp boundaries and every
    /// [`dpvk_vm::ExecLimits::check_interval`] guest instructions), and
    /// [`LaunchHandle::wait`] then reports a cancellation fault. Other
    /// launches — including later launches on the same stream — are
    /// unaffected.
    pub fn cancel(&self) {
        self.job.req.token.cancel();
    }

    /// The kernel this launch runs.
    pub fn kernel(&self) -> &str {
        &self.job.req.kernel
    }
}

impl std::fmt::Debug for LaunchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaunchHandle")
            .field("kernel", &self.job.req.kernel)
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Shared state of one stream: a FIFO of jobs not yet released to the
/// pool, plus the in-order gate. At most one job of a stream is ever in
/// the pool ("active"); the worker that retires it promotes the next —
/// workers never *block* on another job, so stream ordering cannot
/// deadlock the pool however many streams share however few workers.
pub(crate) struct StreamShared {
    pub id: u64,
    queue: Monitor<StreamQueue>,
}

#[derive(Default)]
struct StreamQueue {
    pending: VecDeque<Arc<LaunchJob>>,
    /// Whether a job of this stream is currently released to the pool.
    active: bool,
}

impl StreamShared {
    pub(crate) fn new(id: u64) -> Self {
        StreamShared { id, queue: Monitor::new(StreamQueue::default()) }
    }

    /// Enqueue `job` in stream order: release it to the pool immediately
    /// if the stream is idle, otherwise hold it until its predecessor
    /// retires.
    fn submit_ordered(&self, job: Arc<LaunchJob>, pool: &PoolShared) {
        let release = {
            let mut q = self.queue.lock();
            if q.active {
                q.pending.push_back(Arc::clone(&job));
                if dpvk_trace::enabled() {
                    dpvk_trace::record_peak(
                        dpvk_trace::Counter::StreamQueuePeak,
                        q.pending.len() as u64,
                    );
                    dpvk_trace::record_stream_event(
                        &job.req.kernel,
                        self.id,
                        q.pending.len() as u32,
                        true,
                    );
                }
                false
            } else {
                q.active = true;
                if dpvk_trace::enabled() {
                    dpvk_trace::record_stream_event(&job.req.kernel, self.id, 0, true);
                }
                true
            }
        };
        if release {
            pool.enqueue(job);
        }
    }

    /// Called by the pool worker that retired this stream's active job:
    /// release the next held job, or mark the stream idle.
    fn on_job_retired(&self, kernel: &str, pool: &PoolShared) {
        let next = {
            let mut q = self.queue.lock();
            let next = q.pending.pop_front();
            if next.is_none() {
                q.active = false;
            }
            if dpvk_trace::enabled() {
                dpvk_trace::record_stream_event(kernel, self.id, q.pending.len() as u32, false);
            }
            next
        };
        self.queue.notify_all();
        if let Some(job) = next {
            pool.enqueue(job);
        }
    }

    /// Launches accepted but not yet released to the pool.
    pub(crate) fn held(&self) -> usize {
        self.queue.lock().pending.len()
    }

    /// Block until every launch submitted to this stream has retired.
    pub(crate) fn wait_idle(&self) {
        let guard = self.queue.lock();
        drop(self.queue.wait_while(guard, |q| q.active || !q.pending.is_empty()));
    }
}

/// Count of launches in flight on one device, so
/// [`Device::synchronize`](crate::runtime::Device::synchronize) can park
/// until the device drains without polling.
pub(crate) struct InflightGauge {
    count: Monitor<usize>,
}

impl InflightGauge {
    pub(crate) fn new() -> Self {
        InflightGauge { count: Monitor::new(0) }
    }

    fn inc(&self) {
        *self.count.lock() += 1;
    }

    fn dec(&self) {
        let mut n = self.count.lock();
        *n -= 1;
        if *n == 0 {
            drop(n);
            self.count.notify_all();
        }
    }

    /// Block until no launches are in flight.
    pub(crate) fn wait_idle(&self) {
        let guard = self.count.lock();
        drop(self.count.wait_while(guard, |n| *n != 0));
    }
}

/// Validate, translate, and enqueue one launch on `pool`, returning its
/// handle. This is the single submission path: the blocking
/// [`run_grid`](super::run_grid) compatibility API, `Device::launch`,
/// `Device::launch_async` and `Stream::launch` all come through here.
///
/// # Errors
///
/// Launch-geometry and translation errors are reported synchronously
/// (nothing is enqueued). Eager pre-translation failures are recorded in
/// [`CacheStats::spec_failures`](crate::cache::CacheStats) and emitted
/// as a dpvk-trace fault event, exactly like worker-side translation
/// failures, so the async path reports compile errors consistently.
pub(crate) fn submit(
    pool: &WorkerPool,
    req: LaunchRequest,
    stream: Option<Arc<StreamShared>>,
    gauge: Option<Arc<InflightGauge>>,
) -> Result<LaunchHandle, CoreError> {
    let cta_count = (req.grid[0] as u64) * (req.grid[1] as u64) * (req.grid[2] as u64);
    let cta_size = (req.block[0] as u64) * (req.block[1] as u64) * (req.block[2] as u64);
    if cta_count == 0 || cta_size == 0 {
        return Err(CoreError::BadLaunch("grid and block dimensions must be positive".into()));
    }
    if cta_size > 4096 {
        return Err(CoreError::BadLaunch(format!("CTA size {cta_size} exceeds the 4096 limit")));
    }
    // Flight-recorder identity: a nonzero sequence number marks this
    // launch as recorded; everything downstream keys off it, so a
    // launch submitted with tracing off stays off the timeline even if
    // tracing turns on mid-flight.
    let tracing = dpvk_trace::enabled();
    let seq = if tracing { timeline::next_launch_seq() } else { 0 };
    let stream_id = stream.as_ref().map_or(0, |s| s.id);
    let submit_ns = if tracing { timeline::now_ns() } else { 0 };
    // Force translation at submission so errors surface eagerly (and
    // chunks skip the per-CTA cache lookup). The launch scope attributes
    // any cold translate span to this launch.
    let tk = {
        let _scope = tracing.then(|| timeline::launch_scope(seq, stream_id));
        match req.cache.translated(&req.kernel) {
            Ok(tk) => tk,
            Err(e) => {
                req.cache.note_spec_failure(&req.kernel, &e);
                return Err(e);
            }
        }
    };

    let chunks =
        if req.config.workers == 0 { req.cache.model().cores as usize } else { req.config.workers }
            .min(cta_count as usize)
            .max(1);

    let max_warp = req.config.max_warp;
    let job = Arc::new(LaunchJob {
        tk,
        cta_count,
        chunks,
        stream,
        gauge,
        state: Monitor::new(JobInner {
            remaining: chunks,
            stats: LaunchStats::new(max_warp),
            errors: vec![None; chunks],
            stopped: vec![None; chunks],
            outcome: None,
        }),
        req,
        seq,
        submit_ns,
        queue_wait_done: AtomicBool::new(false),
    });
    if let Some(gauge) = &job.gauge {
        gauge.inc();
    }
    dpvk_trace::add(dpvk_trace::Counter::LaunchesSubmitted, 1);
    match &job.stream {
        Some(stream) => stream.submit_ordered(Arc::clone(&job), pool.shared()),
        None => pool.shared().enqueue(Arc::clone(&job)),
    }
    Ok(LaunchHandle { job })
}
