//! The persistent worker pool: the paper's resident execution managers.
//!
//! Workers are spawned once — with the device, or lazily for the free
//! [`run_grid`](super::run_grid) path — and park on a condition variable
//! when the queue is empty, so the launch hot path performs no thread
//! spawn or join. Each worker owns a [`WorkerScratch`]: warp-formation
//! buffers, an interpreter register frame, and a [`DispatchMemo`] of
//! resolved specializations that now lives as long as the worker does
//! (flushing its statistics tallies at every chunk boundary, so cache
//! stats stay exact and fault-safe, and rebinding when a job arrives
//! from a different cache).
//!
//! Fault isolation: each CTA runs under `catch_unwind` (plus a
//! chunk-level net around the glue), so a panic becomes
//! [`CoreError::WorkerPanic`] on that launch's handle, the launch's own
//! token is tripped, and the worker thread survives to serve the next
//! job — one launch's failure cannot poison its siblings or the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use dpvk_ir::ResumeStatus;
use dpvk_trace::timeline::{self, SpanKind};
use dpvk_vm::{
    execute_warp_bytecode, execute_warp_framed, execute_warp_jit, GlobalMem, MemAccess, RegFrame,
    ThreadContext, VmError,
};

use crate::cache::{CompiledKernel, TranslationCache, Variant};
use crate::error::CoreError;
use crate::flight;
use crate::sync::Monitor;
use crate::translate::TranslatedKernel;

use super::gather::{gather_timed, GatherTally};
use super::job::LaunchJob;
use super::stats::LaunchStats;
use super::{boundary_fault, panic_payload, warp_fault, Engine, FormationPolicy};

/// One unit of pool work: the `index`-th chunk of `job` (CTAs
/// `index, index + chunks, …`).
struct Chunk {
    job: Arc<LaunchJob>,
    index: usize,
}

/// A queued unit of pool work: a launch chunk, or a detached background
/// task (the adaptive width policy compiles candidate specializations
/// this way, so re-specialization never runs on a launch's critical
/// path).
enum PoolItem {
    Chunk(Chunk),
    Task(Box<dyn FnOnce() + Send>),
}

#[derive(Default)]
struct PoolQueue {
    items: VecDeque<PoolItem>,
    shutdown: bool,
    /// Workers currently executing an item (pool occupancy).
    busy: usize,
}

/// State shared between the pool handle and its worker threads.
pub(crate) struct PoolShared {
    queue: Monitor<PoolQueue>,
    size: usize,
}

impl PoolShared {
    /// Enqueue every chunk of `job` and wake workers. Called at submit
    /// for unordered jobs, and by the retiring worker for the next job
    /// of a stream.
    pub(crate) fn enqueue(&self, job: Arc<LaunchJob>) {
        let n = job.chunks;
        {
            let mut q = self.queue.lock();
            for index in 0..n {
                q.items.push_back(PoolItem::Chunk(Chunk { job: Arc::clone(&job), index }));
            }
        }
        if n == 1 {
            self.queue.notify_one();
        } else {
            self.queue.notify_all();
        }
    }

    /// Enqueue a detached background task; it runs on a pool worker when
    /// one frees up, behind any queued chunks. The pool's drain-on-drop
    /// contract covers tasks too.
    pub(crate) fn submit_task(&self, task: Box<dyn FnOnce() + Send>) {
        {
            let mut q = self.queue.lock();
            q.items.push_back(PoolItem::Task(task));
        }
        self.queue.notify_one();
    }
}

/// A persistent pool of execution-manager threads.
///
/// Dropping the pool is a drain, not an abort: the queue is marked shut
/// down, workers finish every queued chunk (including stream successors
/// promoted along the way), and the threads are joined — so every
/// [`LaunchHandle`](super::LaunchHandle) issued against the pool
/// completes.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `size` parked workers.
    pub(crate) fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(PoolShared { queue: Monitor::new(PoolQueue::default()), size });
        let threads = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dpvk-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    pub(crate) fn shared(&self) -> &PoolShared {
        &self.shared
    }

    /// Number of worker threads.
    pub(crate) fn size(&self) -> usize {
        self.shared.size
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            self.shared.queue.lock().shutdown = true;
        }
        self.shared.queue.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Worker count for a new pool: `DPVK_POOL_WORKERS` when set, otherwise
/// the host's available parallelism, but never below `min_workers` (a
/// device passes its model's core count so modeled-default launches
/// always have a chunk's worth of workers to land on).
pub(crate) fn pool_size(min_workers: usize) -> usize {
    // An unparsable value is a startup configuration bug and panics
    // (same contract as `DPVK_ENGINE`), it is never silently ignored.
    if let Some(n) = crate::error::env_u64("DPVK_POOL_WORKERS", "a worker count (1..=256)") {
        return usize::try_from(n).unwrap_or(usize::MAX).clamp(1, 256);
    }
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    host.max(min_workers).max(1)
}

/// The process-wide pool backing the free [`run_grid`](super::run_grid)
/// functions (a `Device` owns its own). Created on first use, sized for
/// the host, and never torn down.
pub(crate) fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(pool_size(4)))
}

/// One worker thread: park until a chunk is available, run it, flush
/// memo tallies, report completion, repeat until shutdown *and* the
/// queue is drained.
fn worker_loop(shared: &Arc<PoolShared>) {
    // Claim a timeline track up front (one atomic increment per worker
    // thread lifetime) so spans emitted on this thread — including
    // compile spans from deep inside the cache — carry its identity.
    timeline::register_worker();
    let mut scratch = WorkerScratch::new();
    loop {
        let item = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(item) = q.items.pop_front() {
                    q.busy += 1;
                    if dpvk_trace::enabled() {
                        dpvk_trace::record_peak(dpvk_trace::Counter::PoolBusyPeak, q.busy as u64);
                    }
                    break item;
                }
                if q.shutdown {
                    return;
                }
                q = shared.queue.wait(q);
            }
        };
        let Chunk { job, index } = match item {
            PoolItem::Chunk(c) => c,
            PoolItem::Task(task) => {
                // Background work is panic-contained like a chunk: a bad
                // candidate compile must not kill the worker thread.
                let _ = catch_unwind(AssertUnwindSafe(task));
                let mut q = shared.queue.lock();
                q.busy -= 1;
                continue;
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_chunk(&job, index, &mut scratch)));
        let (stats, error, stopped_at) = outcome.unwrap_or_else(|payload| {
            // A panic that escaped the per-CTA net (inter-CTA glue).
            // Contain it exactly like a CTA panic; this chunk's partial
            // stats are lost, as they were under spawn-per-launch.
            job.req.token.cancel();
            (
                LaunchStats::new(job.req.config.max_warp),
                Some(CoreError::WorkerPanic {
                    worker: index,
                    cta: 0,
                    payload: panic_payload(payload.as_ref()),
                }),
                Some(0),
            )
        });
        // Flush memo tallies *before* completion is observable, so cache
        // stats are exact the moment a waiter wakes — and flushed even
        // when the chunk panicked or faulted.
        scratch.dispatch.flush();
        {
            let mut q = shared.queue.lock();
            q.busy -= 1;
        }
        job.complete_chunk(index, stats, error, stopped_at, shared);
    }
}

/// Run one chunk of a launch: CTAs `index, index + chunks, …` — the same
/// striding the spawn-per-launch workers used, so statistics and modeled
/// outputs are unchanged.
fn run_chunk(
    job: &Arc<LaunchJob>,
    index: usize,
    scratch: &mut WorkerScratch,
) -> (LaunchStats, Option<CoreError>, Option<u32>) {
    let req = &job.req;
    scratch.dispatch.rebind(&req.cache);
    job.note_chunk_start();
    // Flight recorder: only launches that drew a sequence number at
    // submission are recorded, and only while tracing is still on.
    let recording = job.seq != 0 && dpvk_trace::enabled();
    let _scope = recording.then(|| timeline::launch_scope(job.seq, job.stream_id()));
    let exec_start = recording.then(timeline::now_ns);
    scratch.gather = GatherTally::default();
    let mut stats = LaunchStats::new(req.config.max_warp);
    let mut error = None;
    let mut stopped_at = None;
    let mut cta = index as u64;
    while cta < job.cta_count {
        let flat = cta as u32;
        if req.token.is_cancelled() {
            stopped_at = Some(flat);
            break;
        }
        if let Some(deadline) = req.config.limits.deadline {
            if Instant::now() >= deadline {
                error = Some(boundary_fault(&req.kernel, flat, VmError::Deadline));
                stopped_at = Some(flat);
                req.token.cancel();
                break;
            }
        }
        let run = catch_unwind(AssertUnwindSafe(|| run_cta(job, flat, &mut stats, scratch)));
        match run {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                // Secondary cancellations are not faults: the first
                // failure already tripped the token.
                if !e.is_cancelled() {
                    req.token.cancel();
                }
                error = Some(e);
                stopped_at = Some(flat);
                break;
            }
            Err(payload) => {
                req.token.cancel();
                error = Some(CoreError::WorkerPanic {
                    worker: index,
                    cta: flat,
                    payload: panic_payload(payload.as_ref()),
                });
                stopped_at = Some(flat);
                break;
            }
        }
        cta += job.chunks as u64;
    }
    if let Some(start) = exec_start {
        // The chunk's gather work as one coalesced child span at the
        // head of the execute span (its duration is the sum of the
        // chunk's gather calls, so it always nests).
        if scratch.gather.calls != 0 {
            flight::emit_span_at(
                SpanKind::Gather,
                &req.kernel,
                start,
                scratch.gather.ns,
                scratch.gather.calls,
            );
        }
        flight::emit_span(SpanKind::Execute, &req.kernel, start, stats.exec.warp_entries);
    }
    (stats, error, stopped_at)
}

/// Worker-local memo of resolved specializations. A launch requests the
/// same few `(width, variant)` pairs for every warp, so after the first
/// shared-cache query per pair the steady state is answered from this
/// table: a linear scan over a handful of entries, no lock, no
/// allocation. With the persistent pool the memo is long-lived — entries
/// survive across launches (keyed by the translated kernel's identity,
/// so back-to-back launches of the same kernel skip the shared cache
/// entirely) and are invalidated only when a job arrives from a
/// different cache. Hit and downgrade tallies accumulate locally and
/// flush to the cache's atomic counters at every chunk boundary — which
/// runs even when a CTA panics or faults, because the flush sits outside
/// `catch_unwind` in the worker loop — so
/// [`TranslationCache::stats`] totals are identical to per-query
/// counting by the time any waiter observes the launch complete.
pub(crate) struct DispatchMemo {
    cache: Option<TranslationCache>,
    entries: Vec<MemoEntry>,
    hits: u64,
    downgrades: u64,
}

struct MemoEntry {
    /// Identity key: the translated kernel this entry resolves for. The
    /// held `Arc` keeps the allocation alive, so pointer equality cannot
    /// alias a recycled address.
    tk: Arc<TranslatedKernel>,
    width: u32,
    variant: Variant,
    compiled: Arc<CompiledKernel>,
    downgraded: bool,
    /// Memo hits since the last flush, folded into the cache entry's
    /// per-width hit counter at chunk boundaries.
    pending_hits: u64,
    /// Warps resolved through this entry since the last flush (memo hits
    /// plus the initial shared-cache resolution), folded into the cache
    /// entry's per-width dispatched-warp counter.
    pending_warps: u64,
}

/// Memo entries are a linear scan; past this the scan (and the held
/// kernels) would outweigh the saved cache query, so start over.
const MEMO_CAPACITY: usize = 64;

impl DispatchMemo {
    fn new() -> Self {
        DispatchMemo { cache: None, entries: Vec::new(), hits: 0, downgrades: 0 }
    }

    /// Point the memo at `cache`, flushing tallies and dropping entries
    /// when it differs from the currently bound cache.
    fn rebind(&mut self, cache: &TranslationCache) {
        if self.cache.as_ref().is_some_and(|c| c.same_cache(cache)) {
            return;
        }
        self.flush();
        self.entries.clear();
        self.cache = Some(cache.clone());
    }

    /// Resolve a specialization plus its downgrade flag, consulting the
    /// shared cache only on the first request per `(kernel, width,
    /// variant)` this worker has seen since binding to the cache.
    fn resolve(
        &mut self,
        kernel: &str,
        tk: &Arc<TranslatedKernel>,
        w: u32,
        variant: Variant,
    ) -> Result<(Arc<CompiledKernel>, bool), CoreError> {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.width == w && e.variant == variant && Arc::ptr_eq(&e.tk, tk))
        {
            // Tally what the shared cache would have counted: one hit per
            // resolution, and for a downgraded entry a hit on the width-1
            // baseline plus one downgrade.
            self.hits += 1;
            e.pending_hits += 1;
            e.pending_warps += 1;
            let downgraded = e.downgraded;
            if downgraded {
                self.downgrades += 1;
            }
            let compiled = Arc::clone(&e.compiled);
            if dpvk_trace::enabled() {
                let (rw, rv) = if downgraded { (1, Variant::Baseline) } else { (w, variant) };
                dpvk_trace::record_cache_query(kernel, rw, rv.label(), true);
            }
            return Ok((compiled, downgraded));
        }
        let cache = self.cache.as_ref().expect("memo bound to a cache before resolving");
        let (compiled, downgraded) = cache.get_or_downgrade(kernel, w, variant)?;
        if self.entries.len() >= MEMO_CAPACITY {
            // Flush before discarding so no per-width tallies are lost.
            self.flush();
            self.entries.clear();
        }
        self.entries.push(MemoEntry {
            tk: Arc::clone(tk),
            width: w,
            variant,
            compiled: Arc::clone(&compiled),
            downgraded,
            pending_hits: 0,
            pending_warps: 1,
        });
        Ok((compiled, downgraded))
    }

    /// Flush accumulated hit/downgrade and per-width tallies to the
    /// bound cache. A downgraded entry's usage is attributed to the
    /// width-1 baseline it actually dispatched.
    pub(crate) fn flush(&mut self) {
        if self.hits != 0 || self.downgrades != 0 {
            if let Some(cache) = &self.cache {
                cache.add_resolved(self.hits, self.downgrades);
            }
            self.hits = 0;
            self.downgrades = 0;
        }
        if let Some(cache) = &self.cache {
            let tracing = dpvk_trace::enabled();
            for e in &mut self.entries {
                if e.pending_hits == 0 && e.pending_warps == 0 {
                    continue;
                }
                let hits = std::mem::take(&mut e.pending_hits);
                let warps = std::mem::take(&mut e.pending_warps);
                let (w, v) =
                    if e.downgraded { (1, Variant::Baseline) } else { (e.width, e.variant) };
                cache.note_width_use(&e.tk.name, w, v, hits, warps);
                if tracing {
                    dpvk_trace::record_width_use(&e.tk.name, w, warps);
                }
            }
        }
    }
}

/// Reusable per-worker execution state: the dispatch memo plus scratch
/// buffers for warp formation and the interpreter register frame, so the
/// steady-state CTA loop performs no heap allocation. Lives as long as
/// the worker thread.
pub(crate) struct WorkerScratch {
    pub(crate) dispatch: DispatchMemo,
    warp: Vec<ThreadContext>,
    kept: Vec<ThreadContext>,
    frame: RegFrame,
    /// Host gather time accumulated over the current chunk, flushed into
    /// one coalesced timeline span per chunk.
    gather: GatherTally,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            dispatch: DispatchMemo::new(),
            warp: Vec::new(),
            kept: Vec::new(),
            frame: RegFrame::new(),
            gather: GatherTally::default(),
        }
    }
}

/// Execute all threads of one CTA to completion.
fn run_cta(
    job: &LaunchJob,
    cta_flat: u32,
    stats: &mut LaunchStats,
    scratch: &mut WorkerScratch,
) -> Result<(), CoreError> {
    #[cfg(feature = "fault-inject")]
    crate::faults::maybe_panic(cta_flat);

    let req = &job.req;
    let kernel = req.kernel.as_str();
    let tk = &job.tk;
    let config = &req.config;
    let cancel = &req.token;
    let grid = req.grid;
    let block = req.block;
    let global: &GlobalMem = &req.global;

    let cta_size = (block[0] * block[1] * block[2]) as usize;
    let ctaid =
        [cta_flat % grid[0], (cta_flat / grid[0]) % grid[1], cta_flat / (grid[0] * grid[1])];

    // Build thread contexts.
    let mut ready: VecDeque<ThreadContext> = VecDeque::with_capacity(cta_size);
    for tz in 0..block[2] {
        for ty in 0..block[1] {
            for tx in 0..block[0] {
                let mut ctx = ThreadContext::new([tx, ty, tz], block, ctaid, grid);
                let flat = ctx.flat_tid() as usize;
                ctx.local_base = (flat * tk.local_bytes) as u64;
                ready.push_back(ctx);
            }
        }
    }

    let mut shared = vec![0u8; tk.shared_bytes.max(1)];
    let mut local = vec![0u8; (tk.local_bytes * cta_size).max(1)];
    let mut barrier_pool: Vec<ThreadContext> = Vec::new();
    let mut exited: usize = 0;
    let mut scan_total: u64 = 0;
    let tracing = dpvk_trace::enabled();
    // The interpreter polls on an instruction stride; this boundary check
    // covers short warp calls that retire before the first poll.
    let polling = config.limits.deadline.is_some();

    #[cfg(feature = "fault-inject")]
    let mut injected_fault_pending = crate::faults::injected_warp_fault(cta_flat);

    while let Some(front) = ready.front() {
        let rp = front.resume_point;
        if cancel.is_cancelled() {
            return Err(boundary_fault(kernel, cta_flat, VmError::Cancelled));
        }
        if polling {
            if let Some(deadline) = config.limits.deadline {
                if Instant::now() >= deadline {
                    return Err(boundary_fault(kernel, cta_flat, VmError::Deadline));
                }
            }
        }
        // Gather a warp (round-robin from the queue head, greedy collect of
        // matching resume points).
        let scanned = gather_timed(
            &mut ready,
            rp,
            config,
            &mut scratch.warp,
            &mut scratch.kept,
            &mut scratch.gather,
        );
        stats.exec.cycles_manager +=
            config.em_cost.formation_base + config.em_cost.per_thread_scanned * scanned as u64;
        scan_total += scanned as u64;

        // Pick the widest available specialization.
        let (w, variant) = match config.policy {
            FormationPolicy::ScalarBaseline => (1u32, Variant::Baseline),
            FormationPolicy::Dynamic => {
                let mut w = config.max_warp;
                while w as usize > scratch.warp.len() {
                    w /= 2;
                }
                (w.max(1), Variant::Dynamic)
            }
            FormationPolicy::Static => {
                if scratch.warp.len() == config.max_warp as usize && config.max_warp > 1 {
                    (config.max_warp, Variant::StaticTie)
                } else {
                    (1, Variant::StaticTie)
                }
            }
        };
        stats.exec.cycles_manager += config.em_cost.per_cache_query;
        // Degrade instead of failing: a specialization that cannot
        // compile falls back to the width-1 scalar baseline. Entry-point
        // numbering is shared across variants (assigned in `translate`),
        // so baseline warps resume mid-grid safely.
        let host_t = tracing.then(Instant::now);
        let (compiled, downgraded) = scratch.dispatch.resolve(kernel, tk, w, variant)?;
        if let Some(t) = host_t {
            dpvk_trace::add(dpvk_trace::Counter::HostDispatchNs, t.elapsed().as_nanos() as u64);
        }
        let w = if downgraded {
            stats.exec.downgraded_warps += 1;
            1
        } else {
            w
        };
        // Return surplus threads to the queue head (they keep priority).
        while scratch.warp.len() > w as usize {
            let ctx = scratch.warp.pop().expect("warp longer than w");
            ready.push_front(ctx);
        }

        #[cfg(feature = "fault-inject")]
        if let Some(vm_err) = injected_fault_pending.take() {
            return Err(warp_fault(kernel, cta_flat, rp, &scratch.warp, vm_err));
        }
        #[cfg(feature = "fault-inject")]
        crate::faults::maybe_slow_warp(cta_flat);

        // Resolve the native code for this specialization up front (the
        // first warp pays the emit; the rest hit the per-kernel cache).
        // `None` — unsupported host or no native lowering — degrades the
        // warp to the bytecode engine.
        let jit = match config.engine {
            Engine::Jit => compiled.jit(kernel),
            Engine::Bytecode | Engine::Tree => None,
        };
        // Count the dispatch before executing: a warp that faults or is
        // cancelled mid-body was still dispatched to its engine.
        if tracing {
            let engine_counter = match config.engine {
                Engine::Bytecode => dpvk_trace::Counter::WarpsBytecode,
                Engine::Tree => dpvk_trace::Counter::WarpsTree,
                Engine::Jit if jit.is_some() => dpvk_trace::Counter::WarpsJit,
                Engine::Jit => {
                    dpvk_trace::add(dpvk_trace::Counter::JitFallbackWarps, 1);
                    dpvk_trace::Counter::WarpsBytecode
                }
            };
            dpvk_trace::add(engine_counter, 1);
        }
        let mut mem = MemAccess {
            global,
            shared: &mut shared,
            local: &mut local,
            param: &req.param,
            cbank: &req.cbank,
        };
        let outcome = match (config.engine, jit) {
            (Engine::Jit, Some(jit)) => execute_warp_jit(
                jit,
                &compiled.bytecode,
                &mut scratch.frame,
                &mut scratch.warp,
                rp,
                &mut mem,
                &mut stats.exec,
                &config.limits,
                Some(cancel),
            ),
            (Engine::Bytecode | Engine::Jit, _) => execute_warp_bytecode(
                &compiled.bytecode,
                &mut scratch.frame,
                &mut scratch.warp,
                rp,
                &mut mem,
                &mut stats.exec,
                &config.limits,
                Some(cancel),
            ),
            (Engine::Tree, _) => execute_warp_framed(
                &compiled.function,
                &compiled.frame,
                &mut scratch.frame,
                &compiled.cost,
                req.cache.model(),
                &mut scratch.warp,
                rp,
                &mut mem,
                &mut stats.exec,
                &config.limits,
                Some(cancel),
            ),
        }
        .map_err(|e| {
            if matches!(e, VmError::Cancelled | VmError::Deadline) {
                stats.exec.cancelled_warps += 1;
            }
            warp_fault(kernel, cta_flat, rp, &scratch.warp, e)
        })?;
        if (w as usize) < stats.warp_hist.len() {
            stats.warp_hist[w as usize] += 1;
        }
        if tracing {
            dpvk_trace::record_warp_entry(w, std::mem::take(&mut scan_total));
            let reason = match outcome.status {
                ResumeStatus::Exit => dpvk_trace::YieldReason::Exit,
                ResumeStatus::Branch => dpvk_trace::YieldReason::Branch,
                ResumeStatus::Barrier => dpvk_trace::YieldReason::Barrier,
            };
            dpvk_trace::record_yield(kernel, rp.max(0) as u32, reason, w);
        }

        stats.exec.cycles_manager += config.em_cost.per_yield_thread * w as u64;
        match outcome.status {
            ResumeStatus::Exit => {
                exited += scratch.warp.len();
                scratch.warp.clear();
            }
            ResumeStatus::Branch => {
                for ctx in scratch.warp.drain(..) {
                    if ctx.is_terminated() {
                        exited += 1;
                    } else {
                        ready.push_back(ctx);
                    }
                }
            }
            ResumeStatus::Barrier => {
                stats.exec.cycles_manager += config.em_cost.per_barrier_thread * w as u64;
                barrier_pool.append(&mut scratch.warp);
            }
        }

        // Barrier release: when every live thread has arrived, everyone
        // resumes at the continuation entry point.
        let alive = cta_size - exited;
        if !barrier_pool.is_empty() && barrier_pool.len() == alive {
            stats.exec.cycles_manager +=
                config.em_cost.per_barrier_thread * barrier_pool.len() as u64;
            ready.extend(barrier_pool.drain(..));
        }
    }

    if !barrier_pool.is_empty() {
        return Err(CoreError::BadLaunch(format!(
            "barrier deadlock in kernel `{kernel}`: {} thread(s) waiting, {} exited",
            barrier_pool.len(),
            exited
        )));
    }
    Ok(())
}
