//! The dynamic execution manager (paper, Sections 3 and 5.2).
//!
//! The paper's execution managers are *resident* services: worker threads
//! live with the device, park when idle, and have kernels dispatched into
//! them — they are not spawned per launch. This module tree implements
//! that shape:
//!
//! * [`worker`] — the persistent [`worker::WorkerPool`]: threads created
//!   once (with the [`Device`](crate::runtime::Device), or lazily for the
//!   free [`run_grid`] path), parked on a condition variable when idle,
//!   each owning long-lived dispatch memos and warp-formation scratch;
//! * [`job`] — one launch as a [`job::LaunchJob`]: an owned, immutable
//!   description plus shared completion state, exposed to callers as a
//!   [`LaunchHandle`] that can be waited on, polled, or cancelled
//!   individually;
//! * [`gather`] — single-pass warp formation over a CTA's ready queue;
//! * [`stats`] — per-launch statistics ([`LaunchStats`]).
//!
//! Within a CTA the manager keeps a pool of ready thread contexts, forms
//! warps of threads waiting at the same entry point (round-robin pick,
//! then greedy gather), executes the matching specialization from the
//! translation cache, and routes yields: diverged threads re-enter the
//! ready pool at their recorded resume points, barrier arrivals wait in a
//! per-CTA pool until every live thread has arrived, and terminated
//! threads are discarded.
//!
//! A launch is split into `min(workers, cta_count)` *chunks*; chunk `i`
//! runs CTAs `i, i + chunks, i + 2·chunks, …` — exactly the striding the
//! spawn-per-launch implementation used per worker, so statistics and
//! modeled outputs are bit-identical. Chunks of one launch run on
//! whichever pool workers are free, so independent launches (and
//! different streams) overlap while launches queued on one
//! [`Stream`](crate::runtime::Stream) retain in-order semantics.

pub(crate) mod gather;
pub(crate) mod job;
pub(crate) mod stats;
pub(crate) mod worker;

use std::sync::Arc;

use dpvk_vm::{CancelToken, ExecLimits, GlobalMem, ThreadContext, VmError};

use crate::cache::TranslationCache;
use crate::error::{CoreError, FaultContext};

pub use job::LaunchHandle;
pub use stats::LaunchStats;

/// How warps are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormationPolicy {
    /// No warps: every thread runs the serialized scalar baseline
    /// (the comparison baseline of the paper's Figure 6).
    ScalarBaseline,
    /// Dynamic warp formation: any ready threads waiting at the same
    /// entry point may form a warp.
    Dynamic,
    /// Static warp formation: only the predetermined group of
    /// consecutively indexed threads may form a warp, enabling
    /// thread-invariant expression elimination (Section 6.2).
    Static,
}

/// Which guest engine runs warp bodies. All engines execute the same
/// compiled specialization and charge modeled cycles identically; they
/// differ only in host-side speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The pre-decoded linear-bytecode engine (default): operands
    /// resolved to frame slots at compile time, hot pairs fused, inner
    /// loop a flat `match` over µops.
    #[default]
    Bytecode,
    /// The tree-walking interpreter over the IR, kept as the
    /// differential oracle for the bytecode engine.
    Tree,
    /// The native tier: the µop stream copy-and-patch compiled to
    /// x86-64 in-process, cached per specialization in the translation
    /// cache. Falls back to the bytecode engine per warp when the host
    /// cannot emit native code.
    Jit,
}

impl Engine {
    /// Stable lowercase label used in benchmark output and reports.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Bytecode => "bytecode",
            Engine::Tree => "tree",
            Engine::Jit => "jit",
        }
    }

    /// Parse an engine name as accepted by `DPVK_ENGINE` and the
    /// benchmark `--engine` flags.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownEngineError`] (listing the valid names) for
    /// anything other than `bytecode`, `tree`, or `jit`.
    pub fn parse(name: &str) -> Result<Self, UnknownEngineError> {
        match name {
            "bytecode" => Ok(Engine::Bytecode),
            "tree" => Ok(Engine::Tree),
            "jit" => Ok(Engine::Jit),
            other => Err(UnknownEngineError { value: other.to_string() }),
        }
    }

    /// The session default: `Engine::default()` unless overridden by
    /// `DPVK_ENGINE={bytecode,tree,jit}`. The env hook lets CI rerun a
    /// whole reproduction binary on another engine and diff its output
    /// against the bytecode engine without per-binary flags. Read once;
    /// explicit `with_engine` calls are unaffected.
    ///
    /// # Panics
    ///
    /// Panics (fail-fast, with the [`UnknownEngineError`] message) when
    /// `DPVK_ENGINE` is set to an unrecognized name: a typo must surface
    /// at startup, not silently select the default engine.
    pub fn from_env() -> Self {
        static CHOICE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("DPVK_ENGINE") {
            Err(_) => Engine::default(),
            Ok(value) => match Engine::parse(&value) {
                Ok(engine) => engine,
                Err(e) => panic!("DPVK_ENGINE: {e}"),
            },
        })
    }
}

/// An engine name that is not one of the recognized engines; see
/// [`Engine::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngineError {
    value: String,
}

impl std::fmt::Display for UnknownEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown engine `{}`: expected `bytecode`, `tree`, or `jit`", self.value)
    }
}

impl std::error::Error for UnknownEngineError {}

/// How the adaptive width policy treats a launch; see
/// [`AdaptConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptMode {
    /// Adaptation disabled: launches run at their requested width.
    #[default]
    Off,
    /// Record per-width profiles (visible in trace reports and
    /// [`Device::width_policy`](crate::Device::width_policy) snapshots)
    /// but never change a launch's width.
    Observe,
    /// Full adaptation: past the hotness threshold, candidate widths are
    /// compiled in the background and hot kernels are re-specialized to
    /// the best-measuring width.
    On,
}

impl AdaptMode {
    /// Stable lowercase label used in reports and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            AdaptMode::Off => "off",
            AdaptMode::Observe => "observe",
            AdaptMode::On => "on",
        }
    }

    /// Parse a mode name as accepted by `DPVK_ADAPT`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAdaptModeError`] (listing the valid names) for
    /// anything other than `off`, `observe`, or `on`.
    pub fn parse(name: &str) -> Result<Self, UnknownAdaptModeError> {
        match name {
            "off" | "0" => Ok(AdaptMode::Off),
            "observe" => Ok(AdaptMode::Observe),
            "on" | "1" => Ok(AdaptMode::On),
            other => Err(UnknownAdaptModeError { value: other.to_string() }),
        }
    }
}

/// An adaptation mode name that is not one of the recognized modes; see
/// [`AdaptMode::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAdaptModeError {
    value: String,
}

impl std::fmt::Display for UnknownAdaptModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown adaptation mode `{}`: expected `off`, `observe`, or `on`", self.value)
    }
}

impl std::error::Error for UnknownAdaptModeError {}

/// Default launches a kernel must accumulate at a width before the
/// policy trusts its measurement and moves on.
pub const DEFAULT_HOTNESS_THRESHOLD: u32 = 8;

/// Widest candidate width the policy can represent (candidate sets are
/// a 64-bit width bitmask).
pub const MAX_ADAPT_WIDTH: u32 = 63;

/// The adaptive warp-width policy knobs, carried per launch inside
/// [`ExecConfig`] and read from the environment by
/// [`AdaptConfig::from_env`]: `DPVK_ADAPT=off|observe|on`,
/// `DPVK_ADAPT_THRESHOLD=<launches>`, `DPVK_ADAPT_WIDTHS=<w,w,…>`.
///
/// Adaptation only ever changes *which width* a dynamic-formation launch
/// specializes for — never the kernel's semantics — so modeled outputs
/// stay bit-identical across every mode and width (proven by the width ×
/// engine differential matrix in the test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptConfig {
    /// Whether the policy observes and/or steers launches.
    pub mode: AdaptMode,
    /// Launches a kernel must accumulate at a width before the policy
    /// trusts its measurement.
    pub hotness_threshold: u32,
    /// Candidate widths as a bitmask (bit `w` set → width `w` is a
    /// candidate). Built with [`AdaptConfig::with_candidates`].
    candidates: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig::off()
    }
}

impl AdaptConfig {
    const DEFAULT_CANDIDATES: [u32; 4] = [1, 2, 4, 8];

    /// Adaptation disabled (the default for explicitly built configs).
    pub fn off() -> Self {
        AdaptConfig {
            mode: AdaptMode::Off,
            hotness_threshold: DEFAULT_HOTNESS_THRESHOLD,
            candidates: 0,
        }
        .with_candidates(&Self::DEFAULT_CANDIDATES)
    }

    /// Observe-only: profile per-width behavior, never steer.
    pub fn observe() -> Self {
        AdaptConfig { mode: AdaptMode::Observe, ..Self::off() }
    }

    /// Full adaptation with the default threshold and candidate set.
    pub fn on() -> Self {
        AdaptConfig { mode: AdaptMode::On, ..Self::off() }
    }

    /// Override the hotness threshold (launches per width measurement;
    /// clamped to at least 1).
    #[must_use]
    pub fn with_threshold(mut self, launches: u32) -> Self {
        self.hotness_threshold = launches.max(1);
        self
    }

    /// Replace the candidate width set. Widths outside
    /// `1..=`[`MAX_ADAPT_WIDTH`] are ignored.
    #[must_use]
    pub fn with_candidates(mut self, widths: &[u32]) -> Self {
        self.candidates = 0;
        for &w in widths {
            if (1..=MAX_ADAPT_WIDTH).contains(&w) {
                self.candidates |= 1u64 << w;
            }
        }
        self
    }

    /// Whether `width` is in the candidate set.
    pub fn is_candidate(&self, width: u32) -> bool {
        width <= MAX_ADAPT_WIDTH && self.candidates & (1u64 << width) != 0
    }

    /// The candidate widths, ascending.
    pub fn candidate_widths(&self) -> Vec<u32> {
        (1..=MAX_ADAPT_WIDTH).filter(|&w| self.is_candidate(w)).collect()
    }

    /// The session default, read once from the environment (the same
    /// contract as [`Engine::from_env`]): `DPVK_ADAPT` selects the mode,
    /// `DPVK_ADAPT_THRESHOLD` the hotness threshold, and
    /// `DPVK_ADAPT_WIDTHS` a comma-separated candidate set.
    ///
    /// # Panics
    ///
    /// Panics at startup when any of the three variables is set to an
    /// unparsable value — a typo must surface immediately, not silently
    /// disable adaptation.
    pub fn from_env() -> Self {
        static CHOICE: std::sync::OnceLock<AdaptConfig> = std::sync::OnceLock::new();
        *CHOICE.get_or_init(|| {
            let mut cfg = AdaptConfig::off();
            if let Ok(value) = std::env::var("DPVK_ADAPT") {
                match AdaptMode::parse(&value) {
                    Ok(mode) => cfg.mode = mode,
                    Err(e) => panic!("DPVK_ADAPT: {e}"),
                }
            }
            if let Some(t) = crate::error::env_u64("DPVK_ADAPT_THRESHOLD", "a launch count") {
                cfg = cfg.with_threshold(u32::try_from(t).unwrap_or(u32::MAX));
            }
            if let Ok(value) = std::env::var("DPVK_ADAPT_WIDTHS") {
                let widths: Vec<u32> = value
                    .split(',')
                    .map(|s| match s.trim().parse::<u32>() {
                        Ok(w) if (1..=MAX_ADAPT_WIDTH).contains(&w) => w,
                        _ => panic!(
                            "DPVK_ADAPT_WIDTHS: invalid width `{s}`: expected integers in \
                             1..={MAX_ADAPT_WIDTH}, comma-separated"
                        ),
                    })
                    .collect();
                cfg = cfg.with_candidates(&widths);
            }
            cfg
        })
    }
}

/// Modeled cycle charges for execution-manager work (the "EM" bars of the
/// paper's Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmCostModel {
    /// Base cost of forming one warp.
    pub formation_base: u64,
    /// Cost per ready-pool entry examined while gathering.
    pub per_thread_scanned: u64,
    /// Cost per thread of processing a yield (status dispatch, re-queue).
    pub per_yield_thread: u64,
    /// Cost per thread of barrier bookkeeping.
    pub per_barrier_thread: u64,
    /// Cost of one translation-cache query.
    pub per_cache_query: u64,
}

impl Default for EmCostModel {
    fn default() -> Self {
        EmCostModel {
            formation_base: 20,
            per_thread_scanned: 2,
            per_yield_thread: 6,
            per_barrier_thread: 4,
            per_cache_query: 25,
        }
    }
}

/// Execution configuration for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Warp-formation policy.
    pub policy: FormationPolicy,
    /// Maximum warp width (the machine vector width in the paper's
    /// evaluation: 4).
    pub max_warp: u32,
    /// Chunks the launch is split into for parallel execution; 0 means
    /// one per modeled core. (Before the persistent pool this was the
    /// number of threads spawned per launch; the CTA striding is
    /// unchanged.)
    pub workers: usize,
    /// Interpreter limits.
    pub limits: ExecLimits,
    /// Execution-manager cycle charges.
    pub em_cost: EmCostModel,
    /// Which guest interpreter runs warp bodies.
    pub engine: Engine,
    /// Adaptive width-policy knobs. Constructed configs inherit the
    /// environment (`DPVK_ADAPT`, off unless set); adaptation applies
    /// only to [`FormationPolicy::Dynamic`] launches through a
    /// [`Device`](crate::Device).
    pub adapt: AdaptConfig,
}

impl ExecConfig {
    /// Dynamic warp formation at the given maximum width.
    pub fn dynamic(max_warp: u32) -> Self {
        ExecConfig {
            policy: FormationPolicy::Dynamic,
            max_warp,
            workers: 0,
            limits: ExecLimits::default(),
            em_cost: EmCostModel::default(),
            engine: Engine::from_env(),
            adapt: AdaptConfig::from_env(),
        }
    }

    /// The serialized scalar baseline.
    pub fn baseline() -> Self {
        ExecConfig { policy: FormationPolicy::ScalarBaseline, max_warp: 1, ..Self::dynamic(1) }
    }

    /// Static warp formation with thread-invariant elimination.
    pub fn static_tie(max_warp: u32) -> Self {
        ExecConfig { policy: FormationPolicy::Static, ..Self::dynamic(max_warp) }
    }

    /// Use exactly `n` worker threads.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Run warp bodies on the given guest engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the adaptive width-policy knobs for this launch.
    pub fn with_adapt(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = adapt;
        self
    }
}

/// Run a full kernel grid, partitioning CTAs across the shared worker
/// pool and blocking until the launch completes.
///
/// # Errors
///
/// Returns the first error raised by any worker (bad launch geometry,
/// compilation failure, memory fault, barrier deadlock).
#[allow(clippy::too_many_arguments)]
pub fn run_grid(
    cache: &TranslationCache,
    kernel: &str,
    grid: [u32; 3],
    block: [u32; 3],
    param: &[u8],
    cbank: &[u8],
    global: &Arc<GlobalMem>,
    config: &ExecConfig,
) -> Result<LaunchStats, CoreError> {
    run_grid_cancellable(cache, kernel, grid, block, param, cbank, global, config, None)
}

/// [`run_grid`] with cooperative cancellation.
///
/// The launch is submitted to a process-wide persistent worker pool (a
/// device-less equivalent of the pool each [`crate::runtime::Device`]
/// owns) and waited on; no threads are spawned per launch. Every chunk's
/// CTA loop runs under `catch_unwind`: a panic in one CTA becomes
/// [`CoreError::WorkerPanic`] instead of tearing down the process or the
/// pool, and the launch's cancellation token is tripped so sibling chunks
/// stop at their next poll instead of burning CPU on a doomed launch.
/// The caller's `cancel` token (when given) *is* the launch token —
/// cancelling it from another thread stops the launch, and the runtime
/// cancels it itself on an internal fault, so a token is good for one
/// launch only.
///
/// # Errors
///
/// The first error raised by any worker, with genuine faults preferred
/// over secondary cancellations. VM faults arrive as
/// [`CoreError::Fault`] carrying kernel/CTA/warp provenance.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_cancellable(
    cache: &TranslationCache,
    kernel: &str,
    grid: [u32; 3],
    block: [u32; 3],
    param: &[u8],
    cbank: &[u8],
    global: &Arc<GlobalMem>,
    config: &ExecConfig,
    cancel: Option<&CancelToken>,
) -> Result<LaunchStats, CoreError> {
    let req = job::LaunchRequest {
        cache: cache.clone(),
        kernel: kernel.to_string(),
        grid,
        block,
        param: param.to_vec(),
        cbank: cbank.to_vec(),
        global: Arc::clone(global),
        config: *config,
        token: cancel.cloned().unwrap_or_default(),
        policy: None,
    };
    job::submit(worker::global_pool(), req, None, None)?.wait()
}

/// Provenance for a fault detected between warps (no warp was formed, so
/// the thread list is empty and the entry point is the kernel start).
pub(crate) fn boundary_fault(kernel: &str, cta: u32, source: VmError) -> CoreError {
    CoreError::Fault {
        context: FaultContext {
            kernel: kernel.to_string(),
            cta,
            warp_entry: 0,
            thread_ids: Vec::new(),
        },
        source,
    }
}

/// Provenance for a fault raised while a formed warp was executing.
pub(crate) fn warp_fault(
    kernel: &str,
    cta: u32,
    warp_entry: i64,
    warp: &[ThreadContext],
    source: VmError,
) -> CoreError {
    CoreError::Fault {
        context: FaultContext {
            kernel: kernel.to_string(),
            cta,
            warp_entry,
            thread_ids: warp.iter().map(|c| c.flat_tid()).collect(),
        },
        source,
    }
}

/// Best-effort stringification of a panic payload.
pub(crate) fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_ptx::parse_module;
    use dpvk_vm::MachineModel;

    const VECADD: &str = r#"
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  mad.lo.u32 %r3, %ctaid.x, %ntid.x, %r1;
  ld.param.u32 %r4, [n];
  setp.ge.u32 %p1, %r3, %r4;
  @%p1 bra done;
  cvt.u64.u32 %rd1, %r3;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [a];
  add.u64 %rd2, %rd2, %rd1;
  ld.global.f32 %f1, [%rd2];
  ld.param.u64 %rd3, [b];
  add.u64 %rd3, %rd3, %rd1;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f3, %f1, %f2;
  ld.param.u64 %rd4, [c];
  add.u64 %rd4, %rd4, %rd1;
  st.global.f32 [%rd4], %f3;
done:
  ret;
}
"#;

    fn setup(src: &str) -> TranslationCache {
        let cache = TranslationCache::new(MachineModel::sandybridge_sse());
        cache.register_module(&parse_module(src).unwrap());
        cache
    }

    fn pack_params(items: &[(usize, &[u8])]) -> Vec<u8> {
        let size = items.iter().map(|(off, b)| off + b.len()).max().unwrap_or(0);
        let mut buf = vec![0u8; size];
        for (off, bytes) in items {
            buf[*off..*off + bytes.len()].copy_from_slice(bytes);
        }
        buf
    }

    fn run_vecadd(config: &ExecConfig) -> (Vec<f32>, LaunchStats) {
        let cache = setup(VECADD);
        let n: u32 = 100; // not a multiple of the CTA size: tests divergence
        let global = GlobalMem::new(4096);
        let (a_ptr, b_ptr, c_ptr) = (0u64, 1024u64, 2048u64);
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        for (i, v) in a.iter().enumerate() {
            global.write::<4>(a_ptr + 4 * i as u64, v.to_le_bytes()).unwrap();
        }
        for (i, v) in b.iter().enumerate() {
            global.write::<4>(b_ptr + 4 * i as u64, v.to_le_bytes()).unwrap();
        }
        let param = pack_params(&[
            (0, &a_ptr.to_le_bytes()),
            (8, &b_ptr.to_le_bytes()),
            (16, &c_ptr.to_le_bytes()),
            (24, &n.to_le_bytes()),
        ]);
        let stats = run_grid(&cache, "vecadd", [4, 1, 1], [32, 1, 1], &param, &[], &global, config)
            .unwrap();
        let mut out = vec![0f32; n as usize];
        for (i, v) in out.iter_mut().enumerate() {
            *v = f32::from_le_bytes(global.read::<4>(c_ptr + 4 * i as u64).unwrap());
        }
        (out, stats)
    }

    #[test]
    fn vecadd_baseline_is_correct() {
        let (out, stats) = run_vecadd(&ExecConfig::baseline().with_workers(1));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        assert!(stats.exec.cycles_body > 0);
    }

    #[test]
    fn vecadd_dynamic_matches_baseline_and_forms_warps() {
        let (out, stats) = run_vecadd(&ExecConfig::dynamic(4).with_workers(2));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        // Most entries are full 4-wide warps.
        assert!(stats.warp_hist[4] > 0, "{:?}", stats.warp_hist);
        assert!(stats.exec.average_warp_size() > 2.0);
    }

    #[test]
    fn vecadd_static_matches() {
        let (out, stats) = run_vecadd(&ExecConfig::static_tie(4).with_workers(1));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        assert!(stats.warp_hist[4] > 0);
    }

    #[test]
    fn vectorization_speeds_up_vecadd() {
        let (_, scalar) = run_vecadd(&ExecConfig::baseline().with_workers(1));
        let (_, vec4) = run_vecadd(&ExecConfig::dynamic(4).with_workers(1));
        let s = scalar.exec.total_cycles() as f64 / vec4.exec.total_cycles() as f64;
        // Memory-bound kernel: modest speedup, but not a slowdown.
        assert!(s > 0.9, "speedup {s}");
    }

    const REDUCTION: &str = r#"
.kernel reduce_sum (.param .u64 data, .param .u64 out) {
  .shared .f32 tile[32];
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  cvt.u64.u32 %rd1, %r1;
  shl.u64 %rd2, %rd1, 2;
  ld.param.u64 %rd3, [data];
  add.u64 %rd3, %rd3, %rd2;
  ld.global.f32 %f1, [%rd3];
  mov.u64 %rd4, tile;
  add.u64 %rd4, %rd4, %rd2;
  st.shared.f32 [%rd4], %f1;
  mov.u32 %r2, 16;
loop:
  bar.sync 0;
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra skip;
  add.u32 %r3, %r1, %r2;
  cvt.u64.u32 %rd5, %r3;
  shl.u64 %rd5, %rd5, 2;
  mov.u64 %rd6, tile;
  add.u64 %rd6, %rd6, %rd5;
  ld.shared.f32 %f2, [%rd6];
  ld.shared.f32 %f3, [%rd4];
  add.f32 %f3, %f3, %f2;
  st.shared.f32 [%rd4], %f3;
skip:
  shr.u32 %r2, %r2, 1;
  setp.gt.u32 %p1, %r2, 0;
  @%p1 bra loop;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra done;
  ld.shared.f32 %f3, [tile];
  ld.param.u64 %rd7, [out];
  st.global.f32 [%rd7], %f3;
done:
  ret;
}
"#;

    fn run_reduction(config: &ExecConfig) -> f32 {
        let cache = setup(REDUCTION);
        let global = GlobalMem::new(1024);
        for i in 0..32u64 {
            global.write::<4>(4 * i, ((i + 1) as f32).to_le_bytes()).unwrap();
        }
        let out_ptr = 512u64;
        let param = pack_params(&[(0, &0u64.to_le_bytes()), (8, &out_ptr.to_le_bytes())]);
        run_grid(&cache, "reduce_sum", [1, 1, 1], [32, 1, 1], &param, &[], &global, config)
            .unwrap();
        f32::from_le_bytes(global.read::<4>(out_ptr).unwrap())
    }

    #[test]
    fn barrier_reduction_all_policies() {
        // sum(1..=32) = 528.
        assert_eq!(run_reduction(&ExecConfig::baseline().with_workers(1)), 528.0);
        assert_eq!(run_reduction(&ExecConfig::dynamic(4).with_workers(1)), 528.0);
        assert_eq!(run_reduction(&ExecConfig::static_tie(4).with_workers(1)), 528.0);
        assert_eq!(run_reduction(&ExecConfig::dynamic(2).with_workers(1)), 528.0);
    }

    #[test]
    fn zero_grid_is_rejected() {
        let cache = setup(VECADD);
        let global = GlobalMem::new(64);
        let err = run_grid(
            &cache,
            "vecadd",
            [0, 1, 1],
            [32, 1, 1],
            &[0u8; 28],
            &[],
            &global,
            &ExecConfig::baseline(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadLaunch(_)));
    }

    #[test]
    fn eager_translation_failure_is_counted_per_submission() {
        // Guarded stores parse and validate but are outside the
        // translatable subset, so registration succeeds and the failure
        // surfaces at launch submission (eager pre-translation).
        const GUARDED: &str = r#"
.kernel guarded (.param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  ld.param.u32 %r1, [n];
  setp.lt.u32 %p1, %r1, 10;
  @%p1 st.global.u32 [0], %r1;
  ret;
}
"#;
        let cache = setup(GUARDED);
        let global = GlobalMem::new(64);
        for attempt in 1..=2u64 {
            let err = run_grid(
                &cache,
                "guarded",
                [1, 1, 1],
                [1, 1, 1],
                &[0u8; 4],
                &[],
                &global,
                &ExecConfig::baseline(),
            )
            .unwrap_err();
            assert!(matches!(err, CoreError::Unsupported { .. }), "{err:?}");
            assert_eq!(
                cache.stats().spec_failures,
                attempt,
                "each failed submission must be counted"
            );
        }
    }

    #[test]
    fn adapt_config_candidates_and_mode_parse() {
        let c = AdaptConfig::on().with_candidates(&[4, 8, 16, 99]);
        assert_eq!(c.mode, AdaptMode::On);
        assert!(c.is_candidate(4) && c.is_candidate(16));
        assert!(!c.is_candidate(99) && !c.is_candidate(2));
        assert_eq!(c.candidate_widths(), vec![4, 8, 16]);
        assert_eq!(AdaptMode::parse("observe"), Ok(AdaptMode::Observe));
        assert_eq!(AdaptMode::parse("on"), Ok(AdaptMode::On));
        let err = AdaptMode::parse("sometimes").unwrap_err();
        assert!(err.to_string().contains("sometimes"), "{err}");
        assert_eq!(AdaptConfig::default().mode, AdaptMode::Off);
        assert_eq!(AdaptConfig::off().with_threshold(0).hotness_threshold, 1);
    }

    #[test]
    fn warp_fractions_sum_to_one() {
        let (_, stats) = run_vecadd(&ExecConfig::dynamic(4).with_workers(1));
        let total: f64 = stats.warp_size_fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
