//! Per-launch statistics.

use dpvk_vm::ExecStats;

/// Statistics of one launch: VM counters plus the warp-size histogram
/// (the paper's Figure 7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Cycle/instruction counters.
    pub exec: ExecStats,
    /// `warp_hist[w]` = number of kernel entries with warp size `w`.
    pub warp_hist: Vec<u64>,
}

impl LaunchStats {
    pub(crate) fn new(max_warp: u32) -> Self {
        LaunchStats { exec: ExecStats::default(), warp_hist: vec![0; max_warp as usize + 1] }
    }

    /// Merge another stats block into this one. Every field is a
    /// monotonic sum, so merging is commutative — chunk completion order
    /// (which varies with pool scheduling) cannot change launch totals.
    pub fn merge(&mut self, other: &LaunchStats) {
        self.exec.merge(&other.exec);
        if self.warp_hist.len() < other.warp_hist.len() {
            self.warp_hist.resize(other.warp_hist.len(), 0);
        }
        for (i, v) in other.warp_hist.iter().enumerate() {
            self.warp_hist[i] += v;
        }
    }

    /// Fraction of kernel entries at each warp size (index = warp size).
    pub fn warp_size_fractions(&self) -> Vec<f64> {
        let total: u64 = self.warp_hist.iter().sum();
        if total == 0 {
            return vec![0.0; self.warp_hist.len()];
        }
        self.warp_hist.iter().map(|&c| c as f64 / total as f64).collect()
    }
}
