//! Single-pass warp formation over a CTA's ready queue.

use std::collections::VecDeque;
use std::time::Instant;

use dpvk_vm::ThreadContext;

use super::{ExecConfig, FormationPolicy};

/// Per-chunk tally of host warp-formation work. The worker resets it at
/// every chunk start and flushes it into one coalesced gather span at
/// chunk end (per-call spans would be nanoseconds wide and drown the
/// timeline).
#[derive(Default)]
pub(crate) struct GatherTally {
    /// Host nanoseconds spent inside [`gather`] this chunk.
    pub ns: u64,
    /// Number of gather calls this chunk.
    pub calls: u64,
}

/// [`gather`], timed when the trace layer is on: host nanoseconds feed
/// the `HostFormationNs` counter and accumulate in `tally` for the
/// chunk's coalesced gather span. When tracing is off this adds one
/// relaxed atomic load to the plain gather.
pub(crate) fn gather_timed(
    ready: &mut VecDeque<ThreadContext>,
    rp: i64,
    config: &ExecConfig,
    warp: &mut Vec<ThreadContext>,
    kept: &mut Vec<ThreadContext>,
    tally: &mut GatherTally,
) -> usize {
    let t = dpvk_trace::enabled().then(Instant::now);
    let scanned = gather(ready, rp, config, warp, kept);
    if let Some(t) = t {
        let ns = t.elapsed().as_nanos() as u64;
        dpvk_trace::add(dpvk_trace::Counter::HostFormationNs, ns);
        tally.ns += ns;
        tally.calls += 1;
    }
    scanned
}

/// Collect up to `max_warp` contexts with resume point `rp` from the
/// queue into `warp`, scanning from the front in one pass: non-matching
/// contexts are parked in `kept` and restored to the queue head in their
/// original order. For static formation only contexts of the front
/// thread's group are eligible, and the result is sorted by thread index
/// (lane order). Returns the number of queue entries examined.
///
/// Host time is O(entries examined) — the previous implementation
/// removed each picked context by index, which shifts the whole deque
/// per removal (O(n) per thread, O(n²) per warp on fragmented pools).
/// The modeled formation charge is unchanged: `scanned` counts exactly
/// the entries the indexed scan inspected, and both the warp and the
/// residual queue end up in the same order.
pub(crate) fn gather(
    ready: &mut VecDeque<ThreadContext>,
    rp: i64,
    config: &ExecConfig,
    warp: &mut Vec<ThreadContext>,
    kept: &mut Vec<ThreadContext>,
) -> usize {
    let max = config.max_warp as usize;
    let is_static = config.policy == FormationPolicy::Static;
    let group_of =
        |ctx: &ThreadContext| -> u32 { ctx.flat_tid().checked_div(config.max_warp).unwrap_or(0) };
    let front_group = ready.front().map(group_of).unwrap_or(0);

    warp.clear();
    kept.clear();
    let mut scanned = 0usize;
    while let Some(ctx) = ready.pop_front() {
        scanned += 1;
        if ctx.resume_point == rp && (!is_static || group_of(&ctx) == front_group) {
            warp.push(ctx);
            if warp.len() == max {
                break;
            }
        } else {
            kept.push(ctx);
        }
    }
    for ctx in kept.drain(..).rev() {
        ready.push_front(ctx);
    }
    if is_static {
        warp.sort_by_key(|c| c.flat_tid());
    }
    scanned
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The indexed-removal gather PR 3 replaced, kept verbatim as the
    /// behavioral reference: warp contents and order, residual queue
    /// order, and the scanned count must all match the single-pass
    /// implementation.
    fn gather_reference(
        ready: &mut VecDeque<ThreadContext>,
        rp: i64,
        config: &ExecConfig,
    ) -> (Vec<ThreadContext>, usize) {
        let max = config.max_warp as usize;
        let is_static = config.policy == FormationPolicy::Static;
        let group_of = |ctx: &ThreadContext| -> u32 {
            ctx.flat_tid().checked_div(config.max_warp).unwrap_or(0)
        };
        let front_group = ready.front().map(group_of).unwrap_or(0);

        let mut picked: Vec<usize> = Vec::with_capacity(max);
        let mut scanned = 0usize;
        for (i, ctx) in ready.iter().enumerate() {
            scanned += 1;
            if ctx.resume_point == rp && (!is_static || group_of(ctx) == front_group) {
                picked.push(i);
                if picked.len() == max {
                    break;
                }
            }
        }
        let mut warp: Vec<ThreadContext> = Vec::with_capacity(picked.len());
        for &i in picked.iter().rev() {
            warp.push(ready.remove(i).expect("picked index valid"));
        }
        warp.reverse();
        if is_static {
            warp.sort_by_key(|c| c.flat_tid());
        }
        (warp, scanned)
    }

    #[test]
    fn gather_matches_reference_formation() {
        // Seeded LCG so failures reproduce.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let configs = [ExecConfig::dynamic(4), ExecConfig::static_tie(4), ExecConfig::dynamic(2)];
        for config in &configs {
            for _ in 0..100 {
                // A fragmented ready pool: random permutation of thread
                // ids with random resume points.
                let n = 1 + (next() % 64) as usize;
                let mut order: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    order.swap(i, (next() % (i as u64 + 1)) as usize);
                }
                let mut queue: VecDeque<ThreadContext> = VecDeque::new();
                for &tid in &order {
                    let mut ctx = ThreadContext::new([tid, 0, 0], [64, 1, 1], [0; 3], [1; 3]);
                    ctx.resume_point = (next() % 4) as i64;
                    queue.push_back(ctx);
                }
                let rp = queue.front().unwrap().resume_point;

                let mut ref_queue = queue.clone();
                let (ref_warp, ref_scanned) = gather_reference(&mut ref_queue, rp, config);

                let (mut warp, mut kept) = (Vec::new(), Vec::new());
                let scanned = gather(&mut queue, rp, config, &mut warp, &mut kept);

                assert_eq!(warp, ref_warp, "warp contents/order diverged");
                assert_eq!(scanned, ref_scanned, "scanned count diverged");
                assert_eq!(queue, ref_queue, "residual queue order diverged");
                assert!(kept.is_empty(), "kept scratch must drain back into the queue");
            }
        }
    }
}
