//! Disk-backed persistent translation cache.
//!
//! The in-memory [`TranslationCache`](crate::cache::TranslationCache)
//! dies with the process; every restart re-pays PTX parsing, translation
//! and specialization for each kernel. This module persists the two
//! expensive artifacts — the translated scalar kernel and each compiled
//! specialization (specialized function + validated bytecode) — to a
//! content-addressed directory so a cold process rehydrates them and
//! skips the translate/specialize/decode pipeline entirely.
//!
//! **Content addressing.** Artifact keys are FNV-1a64 hashes over the
//! container format version, the machine-model name, the kernel's
//! printed source text, and (for specializations) the warp width and
//! variant label. A changed kernel body therefore produces a different
//! key — stale artifacts are never returned, they just age out.
//!
//! **Container format.** Every file is `MAGIC ∥ version ∥ kind ∥
//! payload-length ∥ payload-checksum ∥ payload`. Loads verify all five;
//! any mismatch (torn write, bit rot, format drift) deletes the file and
//! reports a miss, so the worst case for a corrupt cache is a
//! recompile. `FORMAT_VERSION` **must be bumped whenever any layer of
//! the encoding changes** — the IR codec, the bytecode codec, or the
//! layouts in this file (see DESIGN.md).
//!
//! **Atomicity.** Stores write a unique temp file in the cache
//! directory and `rename(2)` it into place, so concurrent processes
//! (e.g. parallel test binaries sharing `target/dpvk-cache/`) never
//! observe partial artifacts.
//!
//! **Bounded size.** After each store the directory is trimmed to
//! `DPVK_CACHE_CAP` bytes (default 256 MiB), evicting oldest-modified
//! files first and counting `persist_evictions`.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dpvk_ir::serial::{self as irs, Reader, SerialError, SerialResult};
use dpvk_ir::{BlockId, VReg};
use dpvk_trace::Counter;
use dpvk_vm::serial as vms;
use dpvk_vm::BytecodeProgram;

use crate::translate::TranslatedKernel;

/// Bump whenever the on-disk encoding changes at *any* layer (this
/// container, [`dpvk_ir::serial`], or [`dpvk_vm::serial`]). Old
/// artifacts then hash to different keys and are evicted by the size
/// cap instead of being misread.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"DPVKART\x01";

/// Artifact kind byte: a translated scalar kernel.
const KIND_TRANSLATION: u8 = 1;
/// Artifact kind byte: a compiled specialization.
const KIND_SPEC: u8 = 2;
/// Artifact kind byte: a translation's width manifest — the list of
/// `(width, variant)` specializations observed for it, so a restart
/// rehydrates the whole `WidthSet`, not just the first width asked for.
/// Old readers never look for this kind or its extension, so adding it
/// needs no `FORMAT_VERSION` bump.
const KIND_WIDTHS: u8 = 3;

/// Default directory size cap: 256 MiB.
const DEFAULT_CAP_BYTES: u64 = 256 << 20;

/// Where and how large the persistent cache is.
///
/// [`Device::new`](crate::Device::new) builds one from the environment:
/// `DPVK_CACHE=0` disables persistence, `DPVK_CACHE_DIR` overrides the
/// directory (default: `dpvk-cache/` under the build's target
/// directory), `DPVK_CACHE_CAP` sets the size cap in bytes. Tests and
/// services that want hermetic control use [`PersistConfig::at`] with
/// [`Device::with_persist`](crate::Device::with_persist).
#[derive(Debug, Clone)]
pub struct PersistConfig {
    dir: PathBuf,
    cap_bytes: u64,
}

impl PersistConfig {
    /// A cache rooted at `dir` with the default size cap.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistConfig { dir: dir.into(), cap_bytes: DEFAULT_CAP_BYTES }
    }

    /// Override the directory size cap (bytes).
    #[must_use]
    pub fn with_cap_bytes(mut self, cap_bytes: u64) -> Self {
        self.cap_bytes = cap_bytes;
        self
    }

    /// The environment-derived configuration, or `None` when persistence
    /// is disabled with `DPVK_CACHE=0`/`off`.
    pub fn from_env() -> Option<Self> {
        if std::env::var("DPVK_CACHE").is_ok_and(|v| v == "0" || v.eq_ignore_ascii_case("off")) {
            return None;
        }
        let dir =
            std::env::var_os("DPVK_CACHE_DIR").map(PathBuf::from).unwrap_or_else(default_cache_dir);
        let cap_bytes = crate::error::env_u64("DPVK_CACHE_CAP", "a size cap in bytes")
            .unwrap_or(DEFAULT_CAP_BYTES);
        Some(PersistConfig { dir, cap_bytes })
    }
}

/// Default cache directory, resolved at compile time so it does not
/// depend on the process working directory: `dpvk-cache/` under
/// `CARGO_TARGET_DIR` when that was set for the build, else under the
/// workspace `target/` next to this crate.
fn default_cache_dir() -> PathBuf {
    match option_env!("CARGO_TARGET_DIR") {
        Some(target) => Path::new(target).join("dpvk-cache"),
        None => Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")).join("dpvk-cache"),
    }
}

/// A rehydrated specialization artifact: everything
/// [`TranslationCache::get`](crate::cache::TranslationCache::get) needs
/// to rebuild a `CompiledKernel` without specializing or decoding.
pub(crate) struct SpecArtifact {
    /// The specialized (vectorized) function.
    pub function: dpvk_ir::Function,
    /// The validated bytecode program (no profile tag attached yet).
    pub bytecode: BytecodeProgram,
    /// Static instruction count before optimization.
    pub pre_opt_instructions: usize,
    /// Static instruction count after optimization.
    pub post_opt_instructions: usize,
    /// Advisory: native code bytes the JIT emitted for this program in
    /// the storing process (0 = not emitted). Machine code itself is
    /// not relocatable across processes, so this is metadata only —
    /// the loader still re-emits lazily and does not consult it.
    #[allow(dead_code)]
    pub jit_code_bytes: u64,
}

/// The scalar counters stored alongside a specialization artifact
/// (everything in [`SpecArtifact`] that is not the code itself).
#[derive(Clone, Copy)]
pub(crate) struct SpecMeta {
    pub pre_opt_instructions: usize,
    pub post_opt_instructions: usize,
    pub jit_code_bytes: u64,
}

/// Handle to an opened cache directory.
pub(crate) struct PersistStore {
    dir: PathBuf,
    cap_bytes: u64,
    /// Distinguishes temp files written concurrently by this process.
    tmp_seq: AtomicU64,
}

impl PersistStore {
    /// Open (creating if needed) the cache directory. Returns `None` —
    /// persistence off — when the directory cannot be created.
    pub(crate) fn open(cfg: PersistConfig) -> Option<Self> {
        fs::create_dir_all(&cfg.dir).ok()?;
        Some(PersistStore { dir: cfg.dir, cap_bytes: cfg.cap_bytes, tmp_seq: AtomicU64::new(0) })
    }

    /// Content key of a kernel's translation artifact.
    pub(crate) fn translation_key(model_name: &str, source: &str) -> u64 {
        let mut h = Fnv::new();
        h.update(&FORMAT_VERSION.to_le_bytes());
        h.update(model_name.as_bytes());
        h.update(&[0]);
        h.update(source.as_bytes());
        h.finish()
    }

    /// Content key of a specialization artifact: derived from the
    /// kernel's translation key (version × model × source) plus the
    /// warp width and variant label.
    pub(crate) fn spec_key(translation_key: u64, width: u32, variant: &str) -> u64 {
        let mut h = Fnv::new();
        h.update(&translation_key.to_le_bytes());
        h.update(&width.to_le_bytes());
        h.update(variant.as_bytes());
        h.finish()
    }

    fn artifact_path(&self, kernel: &str, key: u64, ext: &str) -> PathBuf {
        let mut safe: String = kernel
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
            .take(48)
            .collect();
        if safe.is_empty() {
            safe.push('k');
        }
        self.dir.join(format!("{safe}-{key:016x}.{ext}"))
    }

    /// Load a translation artifact, or `None` on miss/corruption
    /// (corrupt files are deleted).
    pub(crate) fn load_translation(&self, kernel: &str, key: u64) -> Option<TranslatedKernel> {
        let path = self.artifact_path(kernel, key, "tk");
        let payload = self.read_artifact(&path, KIND_TRANSLATION)?;
        match decode_translation(&payload) {
            Ok(tk) => Some(tk),
            Err(_) => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store a translation artifact (best effort: IO errors drop the
    /// artifact, they never fail the caller). Returns the number of
    /// artifacts evicted enforcing the size cap.
    pub(crate) fn store_translation(&self, kernel: &str, key: u64, tk: &TranslatedKernel) -> u64 {
        let mut payload = Vec::with_capacity(1 << 12);
        encode_translation(tk, &mut payload);
        self.write_artifact(&self.artifact_path(kernel, key, "tk"), KIND_TRANSLATION, &payload)
    }

    /// Load a specialization artifact, or `None` on miss/corruption.
    /// The decoded function is re-verified and the bytecode re-validated
    /// (inside [`dpvk_vm::serial::program_from_bytes`]); either failing
    /// is treated as corruption.
    pub(crate) fn load_spec(&self, kernel: &str, key: u64) -> Option<SpecArtifact> {
        let path = self.artifact_path(kernel, key, "spec");
        let payload = self.read_artifact(&path, KIND_SPEC)?;
        match decode_spec(&payload) {
            Ok(art) if dpvk_ir::verify(&art.function).is_ok() => Some(art),
            _ => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store a specialization artifact (best effort). Returns the
    /// number of artifacts evicted enforcing the size cap.
    pub(crate) fn store_spec(
        &self,
        kernel: &str,
        key: u64,
        function: &dpvk_ir::Function,
        bytecode: &BytecodeProgram,
        meta: SpecMeta,
    ) -> u64 {
        let mut payload = Vec::with_capacity(1 << 14);
        irs::put_u64(&mut payload, meta.pre_opt_instructions as u64);
        irs::put_u64(&mut payload, meta.post_opt_instructions as u64);
        irs::put_u64(&mut payload, meta.jit_code_bytes);
        let fbytes = irs::function_to_bytes(function);
        irs::put_u64(&mut payload, fbytes.len() as u64);
        payload.extend_from_slice(&fbytes);
        let pbytes = vms::program_to_bytes(bytecode);
        irs::put_u64(&mut payload, pbytes.len() as u64);
        payload.extend_from_slice(&pbytes);
        self.write_artifact(&self.artifact_path(kernel, key, "spec"), KIND_SPEC, &payload)
    }

    /// The `(width, variant-label)` pairs recorded for a translation's
    /// width manifest, or empty on miss/corruption (corrupt manifests
    /// are deleted; the cost is re-observing widths, never wrong code).
    pub(crate) fn load_widths(&self, kernel: &str, translation_key: u64) -> Vec<(u32, String)> {
        let path = self.artifact_path(kernel, translation_key, "widths");
        let Some(payload) = self.read_artifact(&path, KIND_WIDTHS) else { return Vec::new() };
        match decode_widths(&payload) {
            Ok(widths) => widths,
            Err(_) => {
                let _ = fs::remove_file(&path);
                Vec::new()
            }
        }
    }

    /// Merge `(width, variant)` into the translation's width manifest.
    /// Best-effort read-modify-write: concurrent writers may drop one
    /// another's entry for a run, which only delays rehydration of that
    /// width — it never produces wrong code.
    pub(crate) fn record_width(
        &self,
        kernel: &str,
        translation_key: u64,
        width: u32,
        variant: &str,
    ) {
        let mut widths = self.load_widths(kernel, translation_key);
        if widths.iter().any(|(w, v)| *w == width && v == variant) {
            return;
        }
        widths.push((width, variant.to_string()));
        widths.sort();
        let mut payload = Vec::with_capacity(16 * widths.len());
        irs::put_u32(&mut payload, widths.len() as u32);
        for (w, v) in &widths {
            irs::put_u32(&mut payload, *w);
            irs::put_str(&mut payload, v);
        }
        let path = self.artifact_path(kernel, translation_key, "widths");
        self.write_artifact(&path, KIND_WIDTHS, &payload);
    }

    /// Read and unwrap a container file: magic, version, kind, length
    /// and checksum must all match or the file is deleted and `None`
    /// returned.
    fn read_artifact(&self, path: &Path, kind: u8) -> Option<Vec<u8>> {
        let bytes = fs::read(path).ok()?;
        let ok = (|| -> Option<Vec<u8>> {
            let mut r = Reader::new(&bytes);
            let mut magic = [0u8; 8];
            for m in &mut magic {
                *m = r.take_u8().ok()?;
            }
            if &magic != MAGIC || r.take_u32().ok()? != FORMAT_VERSION || r.take_u8().ok()? != kind
            {
                return None;
            }
            let len = r.take_u64().ok()? as usize;
            let checksum = r.take_u64().ok()?;
            if r.remaining() != len {
                return None;
            }
            let payload = bytes[bytes.len() - len..].to_vec();
            let mut h = Fnv::new();
            h.update(&payload);
            (h.finish() == checksum).then_some(payload)
        })();
        if ok.is_none() {
            // Torn write or bit rot: scrub it so the next run does not
            // re-pay the read.
            let _ = fs::remove_file(path);
        }
        ok
    }

    /// Wrap `payload` in the container format and publish it atomically
    /// (unique temp file + rename). Best effort; returns the number of
    /// artifacts evicted enforcing the size cap afterwards.
    fn write_artifact(&self, path: &Path, kind: u8, payload: &[u8]) -> u64 {
        let mut buf = Vec::with_capacity(payload.len() + 32);
        buf.extend_from_slice(MAGIC);
        irs::put_u32(&mut buf, FORMAT_VERSION);
        irs::put_u8(&mut buf, kind);
        irs::put_u64(&mut buf, payload.len() as u64);
        let mut h = Fnv::new();
        h.update(payload);
        irs::put_u64(&mut buf, h.finish());
        buf.extend_from_slice(payload);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, &buf).is_ok() && fs::rename(&tmp, path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
        self.enforce_cap()
    }

    /// Trim the directory to the configured byte cap, deleting
    /// oldest-modified artifacts first. Returns how many were deleted.
    fn enforce_cap(&self) -> u64 {
        let Ok(entries) = fs::read_dir(&self.dir) else { return 0 };
        let mut files: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        let mut total = 0u64;
        for e in entries.flatten() {
            let Ok(meta) = e.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let name = e.file_name();
            if name.to_string_lossy().starts_with(".tmp-") {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            total += meta.len();
            files.push((e.path(), meta.len(), mtime));
        }
        if total <= self.cap_bytes {
            return 0;
        }
        files.sort_by_key(|&(_, _, mtime)| mtime);
        let mut evicted = 0;
        for (path, len, _) in files {
            if total <= self.cap_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
                dpvk_trace::add(Counter::PersistEvictions, 1);
            }
        }
        evicted
    }
}

impl std::fmt::Debug for PersistStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistStore")
            .field("dir", &self.dir)
            .field("cap_bytes", &self.cap_bytes)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// FNV-1a 64 (both the artifact checksum and the content key hash)
// ---------------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// TranslatedKernel payload codec
// ---------------------------------------------------------------------------

/// Encode a [`TranslatedKernel`]. Map/set fields are written in sorted
/// order so identical kernels always produce identical bytes;
/// `entry_id_of` is derivable from `entry_points` and not stored.
fn encode_translation(tk: &TranslatedKernel, buf: &mut Vec<u8>) {
    irs::put_str(buf, &tk.name);
    irs::encode_function(&tk.scalar, buf);
    irs::put_u32(buf, tk.entry_points.len() as u32);
    for b in &tk.entry_points {
        irs::put_u32(buf, b.0);
    }
    let mut barriers: Vec<(BlockId, BlockId)> =
        tk.barrier_edges.iter().map(|(k, v)| (*k, *v)).collect();
    barriers.sort_by_key(|&(k, _)| k.0);
    irs::put_u32(buf, barriers.len() as u32);
    for (from, to) in barriers {
        irs::put_u32(buf, from.0);
        irs::put_u32(buf, to.0);
    }
    let mut exits: Vec<BlockId> = tk.pure_exit_blocks.iter().copied().collect();
    exits.sort_by_key(|b| b.0);
    irs::put_u32(buf, exits.len() as u32);
    for b in exits {
        irs::put_u32(buf, b.0);
    }
    let mut spills: Vec<(VReg, u64)> = tk.spill_slots.iter().map(|(k, v)| (*k, *v)).collect();
    spills.sort_by_key(|&(r, _)| r.0);
    irs::put_u32(buf, spills.len() as u32);
    for (r, off) in spills {
        irs::put_u32(buf, r.0);
        irs::put_u64(buf, off);
    }
    irs::put_u64(buf, tk.user_local_bytes as u64);
    irs::put_u64(buf, tk.local_bytes as u64);
    irs::put_u64(buf, tk.shared_bytes as u64);
    irs::put_u64(buf, tk.param_bytes as u64);
    irs::put_u32(buf, tk.live_in.len() as u32);
    for regs in &tk.live_in {
        irs::put_u32(buf, regs.len() as u32);
        for r in regs {
            irs::put_u32(buf, r.0);
        }
    }
}

fn take_usize(r: &mut Reader<'_>) -> SerialResult<usize> {
    let v = r.take_u64()?;
    usize::try_from(v).map_err(|_| SerialError::new(format!("usize field {v} out of range")))
}

fn decode_translation(bytes: &[u8]) -> SerialResult<TranslatedKernel> {
    let mut r = Reader::new(bytes);
    let name = r.take_str()?;
    let scalar = irs::decode_function(&mut r)?;
    dpvk_ir::verify(&scalar)
        .map_err(|e| SerialError::new(format!("persisted scalar kernel fails verify: {e}")))?;
    let nentries = r.take_len(4)?;
    let mut entry_points = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        entry_points.push(BlockId(r.take_u32()?));
    }
    let entry_id_of: HashMap<BlockId, i64> =
        entry_points.iter().enumerate().map(|(i, b)| (*b, i as i64)).collect();
    if entry_id_of.len() != entry_points.len() {
        return Err(SerialError::new("duplicate entry points"));
    }
    let nbarriers = r.take_len(8)?;
    let mut barrier_edges = HashMap::with_capacity(nbarriers);
    for _ in 0..nbarriers {
        let from = BlockId(r.take_u32()?);
        let to = BlockId(r.take_u32()?);
        barrier_edges.insert(from, to);
    }
    let nexits = r.take_len(4)?;
    let mut pure_exit_blocks = HashSet::with_capacity(nexits);
    for _ in 0..nexits {
        pure_exit_blocks.insert(BlockId(r.take_u32()?));
    }
    let nspills = r.take_len(12)?;
    let mut spill_slots = HashMap::with_capacity(nspills);
    for _ in 0..nspills {
        let reg = VReg(r.take_u32()?);
        let off = r.take_u64()?;
        spill_slots.insert(reg, off);
    }
    let user_local_bytes = take_usize(&mut r)?;
    let local_bytes = take_usize(&mut r)?;
    let shared_bytes = take_usize(&mut r)?;
    let param_bytes = take_usize(&mut r)?;
    let nblocks = r.take_len(4)?;
    if nblocks != scalar.blocks.len() {
        return Err(SerialError::new(format!(
            "live-in sets cover {nblocks} blocks but the function has {}",
            scalar.blocks.len()
        )));
    }
    let mut live_in = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let nregs = r.take_len(4)?;
        let mut regs = Vec::with_capacity(nregs);
        for _ in 0..nregs {
            regs.push(VReg(r.take_u32()?));
        }
        live_in.push(regs);
    }
    if !r.is_done() {
        return Err(SerialError::new(format!(
            "{} trailing bytes after translation artifact",
            r.remaining()
        )));
    }
    for b in entry_points.iter().chain(barrier_edges.keys()).chain(barrier_edges.values()) {
        if b.0 as usize >= scalar.blocks.len() {
            return Err(SerialError::new(format!("block id {} out of range", b.0)));
        }
    }
    Ok(TranslatedKernel {
        name,
        scalar,
        entry_points,
        entry_id_of,
        barrier_edges,
        pure_exit_blocks,
        spill_slots,
        user_local_bytes,
        local_bytes,
        shared_bytes,
        param_bytes,
        live_in,
    })
}

// ---------------------------------------------------------------------------
// Specialization payload codec
// ---------------------------------------------------------------------------

fn decode_spec(bytes: &[u8]) -> SerialResult<SpecArtifact> {
    let mut r = Reader::new(bytes);
    let pre_opt_instructions = take_usize(&mut r)?;
    let post_opt_instructions = take_usize(&mut r)?;
    let jit_code_bytes = r.take_u64()?;
    let flen = take_usize(&mut r)?;
    if flen > r.remaining() {
        return Err(SerialError::new("function length exceeds payload"));
    }
    let fstart = bytes.len() - r.remaining();
    let function = irs::function_from_bytes(&bytes[fstart..fstart + flen])?;
    let tail = &bytes[fstart + flen..];
    let mut r = Reader::new(tail);
    let plen = take_usize(&mut r)?;
    if plen != r.remaining() {
        return Err(SerialError::new("program length does not match payload"));
    }
    let bytecode = vms::program_from_bytes(&tail[tail.len() - plen..])?;
    Ok(SpecArtifact {
        function,
        bytecode,
        pre_opt_instructions,
        post_opt_instructions,
        jit_code_bytes,
    })
}

/// Decode a width manifest payload: count, then `(u32 width, str
/// variant-label)` pairs.
fn decode_widths(bytes: &[u8]) -> SerialResult<Vec<(u32, String)>> {
    let mut r = Reader::new(bytes);
    let n = r.take_len(5)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let width = r.take_u32()?;
        let variant = r.take_str()?;
        out.push((width, variant));
    }
    if !r.is_done() {
        return Err(SerialError::new(format!(
            "{} trailing bytes after width manifest",
            r.remaining()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use dpvk_ptx as ptx;

    const SRC: &str = r#"
.kernel pk (.param .u64 p, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [n];
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra done;
  add.u32 %r1, %r1, 1;
  bar.sync 0;
  sub.u32 %r1, %r1, 1;
done:
  ret;
}
"#;

    fn sample_tk() -> TranslatedKernel {
        let module = ptx::parse_module(SRC).unwrap();
        translate(&module.kernels[0]).unwrap()
    }

    fn tmp_store(tag: &str) -> PersistStore {
        let dir =
            std::env::temp_dir().join(format!("dpvk-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PersistStore::open(PersistConfig::at(&dir)).expect("open store")
    }

    #[test]
    fn translation_round_trips_through_disk() {
        let store = tmp_store("tk");
        let tk = sample_tk();
        let key = PersistStore::translation_key("model", SRC);
        assert!(store.load_translation("pk", key).is_none(), "cold cache must miss");
        store.store_translation("pk", key, &tk);
        let back = store.load_translation("pk", key).expect("warm cache must hit");
        assert_eq!(back.name, tk.name);
        assert_eq!(back.scalar, tk.scalar);
        assert_eq!(back.entry_points, tk.entry_points);
        assert_eq!(back.entry_id_of, tk.entry_id_of);
        assert_eq!(back.barrier_edges, tk.barrier_edges);
        assert_eq!(back.pure_exit_blocks, tk.pure_exit_blocks);
        assert_eq!(back.spill_slots, tk.spill_slots);
        assert_eq!(back.local_bytes, tk.local_bytes);
        assert_eq!(back.param_bytes, tk.param_bytes);
        assert_eq!(back.live_in, tk.live_in);
    }

    #[test]
    fn spec_round_trips_through_disk() {
        use dpvk_vm::{CostInfo, FrameLayout, MachineModel};

        let store = tmp_store("spec");
        let tk = sample_tk();
        let spec =
            crate::vectorize::specialize(&tk, &crate::vectorize::SpecializeOptions::dynamic(4))
                .unwrap();
        let model = MachineModel::sandybridge_sse();
        let cost = CostInfo::analyze(&spec.function, &model);
        let frame = FrameLayout::of(&spec.function);
        let program = BytecodeProgram::decode(&spec.function, &frame, &model, &cost);
        let key = PersistStore::spec_key(PersistStore::translation_key("m", SRC), 4, "dynamic");
        assert!(store.load_spec("pk", key).is_none(), "cold cache must miss");
        store.store_spec(
            "pk",
            key,
            &spec.function,
            &program,
            SpecMeta {
                pre_opt_instructions: spec.pre_opt_instructions,
                post_opt_instructions: spec.post_opt_instructions,
                jit_code_bytes: 123,
            },
        );
        let art = store.load_spec("pk", key).expect("warm cache must hit");
        assert_eq!(art.function, spec.function);
        assert_eq!(art.pre_opt_instructions, spec.pre_opt_instructions);
        assert_eq!(art.post_opt_instructions, spec.post_opt_instructions);
        assert_eq!(art.jit_code_bytes, 123, "advisory JIT metadata must round-trip");
        assert_eq!(art.bytecode.slots(), program.slots());
        assert_eq!(format!("{:?}", art.bytecode), format!("{program:?}"));
    }

    #[test]
    fn width_manifest_merges_and_round_trips() {
        let store = tmp_store("widths");
        let tkey = PersistStore::translation_key("model", SRC);
        assert!(store.load_widths("pk", tkey).is_empty(), "cold manifest must be empty");
        store.record_width("pk", tkey, 4, "dynamic");
        store.record_width("pk", tkey, 8, "dynamic");
        store.record_width("pk", tkey, 4, "dynamic"); // idempotent
        store.record_width("pk", tkey, 1, "baseline");
        assert_eq!(
            store.load_widths("pk", tkey),
            vec![
                (1, "baseline".to_string()),
                (4, "dynamic".to_string()),
                (8, "dynamic".to_string())
            ]
        );
        // A corrupt manifest misses cleanly and is scrubbed.
        let path = store.artifact_path("pk", tkey, "widths");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_widths("pk", tkey).is_empty());
        assert!(!path.exists(), "corrupt manifest must be scrubbed");
    }

    #[test]
    fn encoding_is_deterministic_despite_hash_maps() {
        let tk = sample_tk();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_translation(&tk, &mut a);
        encode_translation(&tk, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_artifact_is_deleted_and_misses() {
        let store = tmp_store("corrupt");
        let tk = sample_tk();
        let key = PersistStore::translation_key("model", SRC);
        store.store_translation("pk", key, &tk);
        let path = store.artifact_path("pk", key, "tk");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_translation("pk", key).is_none(), "corrupt load must miss");
        assert!(!path.exists(), "corrupt artifact must be scrubbed");
    }

    #[test]
    fn truncated_artifact_misses_cleanly() {
        let store = tmp_store("trunc");
        let tk = sample_tk();
        let key = PersistStore::translation_key("model", SRC);
        store.store_translation("pk", key, &tk);
        let path = store.artifact_path("pk", key, "tk");
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 4, 12, 21, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(store.load_translation("pk", key).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn keys_separate_model_source_width_and_variant() {
        let t1 = PersistStore::translation_key("m1", "src");
        let t2 = PersistStore::translation_key("m2", "src");
        let t3 = PersistStore::translation_key("m1", "src2");
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        let s1 = PersistStore::spec_key(t1, 4, "dynamic");
        let s2 = PersistStore::spec_key(t1, 8, "dynamic");
        let s3 = PersistStore::spec_key(t1, 4, "static_tie");
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s1, t1);
    }

    #[test]
    fn size_cap_evicts_oldest_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("dpvk-persist-test-cap-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = PersistStore::open(PersistConfig::at(&dir).with_cap_bytes(4096)).expect("open");
        let tk = sample_tk();
        for i in 0..32 {
            let key = PersistStore::translation_key("model", &format!("src{i}"));
            store.store_translation("pk", key, &tk);
        }
        let total: u64 = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        assert!(total <= 4096, "cap not enforced: {total} bytes on disk");
    }
}
