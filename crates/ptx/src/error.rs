//! Error types for parsing and validating virtual-ISA kernels.

use std::fmt;

/// Error produced while lexing, parsing or validating a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum PtxError {
    /// A type suffix that the ISA does not define.
    UnknownType(String),
    /// A state-space token that the ISA does not define.
    UnknownAddressSpace(String),
    /// An opcode mnemonic that the ISA does not define.
    UnknownOpcode(String),
    /// A special-register name (`%tid.x`, ...) that does not exist.
    UnknownSpecialRegister(String),
    /// Lexical error with line/column position.
    Lex {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        col: u32,
        /// Explanation of what went wrong.
        message: String,
    },
    /// Syntactic error with line position.
    Parse {
        /// 1-based line number.
        line: u32,
        /// Explanation of what went wrong.
        message: String,
    },
    /// A register was referenced but never declared.
    UndeclaredRegister(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A kernel parameter was referenced but never declared.
    UndeclaredParam(String),
    /// Semantic validation failure (type mismatch, malformed block, ...).
    Validation {
        /// Kernel in which the problem occurred.
        kernel: String,
        /// Explanation of what went wrong.
        message: String,
    },
}

impl fmt::Display for PtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtxError::UnknownType(t) => write!(f, "unknown type suffix `{t}`"),
            PtxError::UnknownAddressSpace(s) => write!(f, "unknown address space `{s}`"),
            PtxError::UnknownOpcode(o) => write!(f, "unknown opcode `{o}`"),
            PtxError::UnknownSpecialRegister(r) => write!(f, "unknown special register `{r}`"),
            PtxError::Lex { line, col, message } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            PtxError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            PtxError::UndeclaredRegister(r) => write!(f, "undeclared register `{r}`"),
            PtxError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            PtxError::UndeclaredParam(p) => write!(f, "undeclared parameter `{p}`"),
            PtxError::Validation { kernel, message } => {
                write!(f, "validation error in kernel `{kernel}`: {message}")
            }
        }
    }
}

impl std::error::Error for PtxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PtxError::Parse { line: 3, message: "expected operand".into() };
        assert_eq!(e.to_string(), "parse error at line 3: expected operand");
        let e = PtxError::Validation { kernel: "k".into(), message: "bad".into() };
        assert!(e.to_string().contains("kernel `k`"));
    }
}
