//! Kernels, basic blocks and modules of the virtual ISA.

use std::collections::HashMap;
use std::fmt;

use crate::instruction::{Instruction, Opcode};
use crate::operand::RegId;
use crate::types::{AddressSpace, ScalarType};

/// Index of a basic block within one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The dense index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A kernel parameter (`.param .u32 n`).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name as written in the kernel signature.
    pub name: String,
    /// Scalar type of the parameter (pointers are `.u64`).
    pub ty: ScalarType,
    /// Byte offset within the parameter buffer, assigned on construction.
    pub offset: usize,
}

/// Declared register metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RegInfo {
    /// Name as written in the kernel (`%r1`).
    pub name: String,
    /// Declared type.
    pub ty: ScalarType,
}

/// A statically declared `.shared` or `.local` array variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Element count.
    pub len: usize,
    /// Address space (`Shared` or `Local`).
    pub space: AddressSpace,
    /// Byte offset within the space, assigned on construction.
    pub offset: usize,
}

impl VarDecl {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.ty.size_bytes() * self.len
    }
}

/// A straight-line sequence of instructions ending in (at most) one
/// terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Label of the block (unique within the kernel).
    pub label: String,
    /// Instructions, in order. If the last instruction is not a terminator
    /// the block falls through to the next block in kernel order.
    pub instructions: Vec<Instruction>,
}

impl BasicBlock {
    /// Create an empty block with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        BasicBlock { label: label.into(), instructions: Vec::new() }
    }

    /// The terminator instruction, when the block ends in one.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.instructions.last().filter(|i| i.opcode.is_terminator())
    }
}

/// A data-parallel kernel: signature, register file, declared variables and
/// a list of basic blocks (the first is the entry).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Parameters in declaration order, with assigned buffer offsets.
    pub params: Vec<Param>,
    /// Declared registers; `RegId(i)` indexes this table.
    pub registers: Vec<RegInfo>,
    /// `.shared` variables with assigned offsets.
    pub shared_vars: Vec<VarDecl>,
    /// `.local` variables with assigned offsets.
    pub local_vars: Vec<VarDecl>,
    /// Basic blocks; index 0 is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Kernel {
    /// Create an empty kernel.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            params: Vec::new(),
            registers: Vec::new(),
            shared_vars: Vec::new(),
            local_vars: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Append a parameter, assigning its naturally aligned buffer offset.
    /// Returns the assigned offset.
    pub fn add_param(&mut self, name: impl Into<String>, ty: ScalarType) -> usize {
        let size = ty.size_bytes();
        let end = self.params.last().map(|p| p.offset + p.ty.size_bytes()).unwrap_or(0);
        let offset = end.div_ceil(size) * size;
        self.params.push(Param { name: name.into(), ty, offset });
        offset
    }

    /// Total parameter buffer size in bytes.
    pub fn param_buffer_size(&self) -> usize {
        self.params.last().map(|p| p.offset + p.ty.size_bytes()).unwrap_or(0)
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Append a register declaration, returning its id.
    pub fn add_register(&mut self, name: impl Into<String>, ty: ScalarType) -> RegId {
        let id = RegId(self.registers.len() as u32);
        self.registers.push(RegInfo { name: name.into(), ty });
        id
    }

    /// Type of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register id is out of range.
    pub fn reg_type(&self, r: RegId) -> ScalarType {
        self.registers[r.index()].ty
    }

    /// Append a `.shared` or `.local` variable, assigning an 8-byte-aligned
    /// offset within its space. Returns the assigned offset.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        ty: ScalarType,
        len: usize,
        space: AddressSpace,
    ) -> usize {
        let vars = match space {
            AddressSpace::Shared => &mut self.shared_vars,
            AddressSpace::Local => &mut self.local_vars,
            _ => panic!("add_var: only shared/local variables may be declared"),
        };
        let end = vars.last().map(|v| v.offset + v.size_bytes()).unwrap_or(0);
        let offset = end.div_ceil(8) * 8;
        vars.push(VarDecl { name: name.into(), ty, len, space, offset });
        offset
    }

    /// Look up a declared variable by name in either space.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.shared_vars.iter().chain(self.local_vars.iter()).find(|v| v.name == name)
    }

    /// Total declared shared memory in bytes.
    pub fn shared_size(&self) -> usize {
        self.shared_vars.last().map(|v| v.offset + v.size_bytes()).unwrap_or(0)
    }

    /// Total declared (user) local memory in bytes, before spill slots.
    pub fn local_size(&self) -> usize {
        self.local_vars.last().map(|v| v.offset + v.size_bytes()).unwrap_or(0)
    }

    /// Append a block, returning its id.
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Find a block id by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.label == label).map(|i| BlockId(i as u32))
    }

    /// Successor block ids of `b` in control-flow order
    /// `[taken..., fallthrough...]`.
    ///
    /// An unguarded `bra` yields one successor; a guarded `bra` yields the
    /// target and the fallthrough; `ret`/`exit` yield none; any other ending
    /// falls through to the next block in kernel order.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        let block = &self.blocks[b.index()];
        let next = if b.index() + 1 < self.blocks.len() { Some(BlockId(b.0 + 1)) } else { None };
        match block.terminator() {
            Some(term) => match &term.opcode {
                Opcode::Bra(label) => {
                    let target = self
                        .block_by_label(label)
                        .unwrap_or_else(|| panic!("undefined label `{label}`"));
                    if term.guard.is_some() {
                        let mut v = vec![target];
                        v.extend(next);
                        v
                    } else {
                        vec![target]
                    }
                }
                Opcode::Ret | Opcode::Exit => {
                    // A guarded `ret`/`exit` falls through when the guard
                    // is false.
                    if term.guard.is_some() {
                        next.into_iter().collect()
                    } else {
                        vec![]
                    }
                }
                _ => unreachable!("terminator() only returns bra/ret/exit"),
            },
            None => next.into_iter().collect(),
        }
    }

    /// Predecessor map: for each block, the blocks that branch or fall
    /// through to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for i in 0..self.blocks.len() {
            let b = BlockId(i as u32);
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Total static instruction count across all blocks.
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instructions.len()).sum()
    }

    /// Whether any block contains a barrier.
    pub fn has_barrier(&self) -> bool {
        self.blocks.iter().any(|b| b.instructions.iter().any(|i| matches!(i.opcode, Opcode::Bar)))
    }
}

/// A module: a named collection of kernels, as registered with the runtime.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Kernels by declaration order.
    pub kernels: Vec<Kernel>,
    index: HashMap<String, usize>,
}

impl Module {
    /// Create an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Add a kernel. Later kernels shadow earlier ones with the same name.
    pub fn add_kernel(&mut self, kernel: Kernel) {
        self.index.insert(kernel.name.clone(), self.kernels.len());
        self.kernels.push(kernel);
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.index.get(name).map(|&i| &self.kernels[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{Instruction, Opcode};
    use crate::types::ScalarType;

    fn branchy_kernel() -> Kernel {
        let mut k = Kernel::new("k");
        let p = k.add_register("%p1", ScalarType::Pred);
        let mut b0 = BasicBlock::new("entry");
        b0.instructions.push(
            Instruction::new(Opcode::Bra("exit".into()), ScalarType::Pred, None, vec![])
                .with_guard(p, false),
        );
        let b1 = BasicBlock::new("body");
        let mut b2 = BasicBlock::new("exit");
        b2.instructions.push(Instruction::new(Opcode::Ret, ScalarType::Pred, None, vec![]));
        k.add_block(b0);
        k.add_block(b1);
        k.add_block(b2);
        k
    }

    #[test]
    fn param_offsets_are_aligned() {
        let mut k = Kernel::new("k");
        assert_eq!(k.add_param("a", ScalarType::U32), 0);
        assert_eq!(k.add_param("b", ScalarType::U64), 8);
        assert_eq!(k.add_param("c", ScalarType::U8), 16);
        assert_eq!(k.add_param("d", ScalarType::U32), 20);
        assert_eq!(k.param_buffer_size(), 24);
    }

    #[test]
    fn successors_of_guarded_branch() {
        let k = branchy_kernel();
        assert_eq!(k.successors(BlockId(0)), vec![BlockId(2), BlockId(1)]);
        assert_eq!(k.successors(BlockId(1)), vec![BlockId(2)]);
        assert_eq!(k.successors(BlockId(2)), vec![]);
    }

    #[test]
    fn predecessors_invert_successors() {
        let k = branchy_kernel();
        let preds = k.predecessors();
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn var_declaration_offsets() {
        let mut k = Kernel::new("k");
        assert_eq!(k.add_var("tile", ScalarType::F32, 3, AddressSpace::Shared), 0);
        assert_eq!(k.add_var("tile2", ScalarType::F32, 4, AddressSpace::Shared), 16);
        assert_eq!(k.shared_size(), 32);
        assert!(k.var("tile").is_some());
        assert!(k.var("absent").is_none());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.add_kernel(Kernel::new("a"));
        m.add_kernel(Kernel::new("b"));
        assert_eq!(m.kernel("b").unwrap().name, "b");
        assert!(m.kernel("c").is_none());
    }
}
