//! Control-flow and data-flow analyses over kernels: reverse postorder,
//! dominator tree, and per-block register liveness.

use std::collections::HashSet;

use crate::kernel::{BlockId, Kernel};
use crate::operand::RegId;

/// Blocks of `kernel` in reverse postorder from the entry block.
///
/// Unreachable blocks are appended after the reachable ones in kernel
/// order, so every block appears exactly once.
pub fn reverse_postorder(kernel: &Kernel) -> Vec<BlockId> {
    let n = kernel.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    if n > 0 {
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = kernel.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
    }
    post.reverse();
    for (i, seen) in visited.iter().enumerate() {
        if !seen {
            post.push(BlockId(i as u32));
        }
    }
    post
}

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// iterative algorithm.
#[derive(Debug, Clone)]
pub struct DominatorTree {
    /// `idom[b]` is the immediate dominator of block `b`; the entry block
    /// is its own idom; unreachable blocks have `None`.
    pub idom: Vec<Option<BlockId>>,
}

impl DominatorTree {
    /// Compute the dominator tree of `kernel`.
    pub fn compute(kernel: &Kernel) -> Self {
        let n = kernel.blocks.len();
        let rpo = reverse_postorder(kernel);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = kernel.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DominatorTree { idom };
        }
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DominatorTree { idom }
    }

    /// Whether block `a` dominates block `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

/// Per-block register liveness.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<HashSet<RegId>>,
    /// Registers live on exit from each block.
    pub live_out: Vec<HashSet<RegId>>,
}

impl Liveness {
    /// Compute liveness with the standard backward data-flow iteration.
    ///
    /// A register is live-in at a block if it is read before being written
    /// within the block, or live-out and not written.
    pub fn compute(kernel: &Kernel) -> Self {
        let n = kernel.blocks.len();
        let mut gen: Vec<HashSet<RegId>> = Vec::with_capacity(n);
        let mut kill: Vec<HashSet<RegId>> = Vec::with_capacity(n);
        for b in &kernel.blocks {
            let mut g = HashSet::new();
            let mut k = HashSet::new();
            for inst in &b.instructions {
                for r in inst.regs_read() {
                    if !k.contains(&r) {
                        g.insert(r);
                    }
                }
                if let Some(d) = inst.reg_written() {
                    if inst.guard.is_none() {
                        k.insert(d);
                    } else if !k.contains(&d) {
                        // A guarded write merges with the incoming value:
                        // it reads-and-writes rather than fully defining,
                        // so it neither kills nor (if already defined in
                        // this block) generates.
                        g.insert(d);
                    }
                }
            }
            gen.push(g);
            kill.push(k);
        }
        let mut live_in: Vec<HashSet<RegId>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<RegId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let b = BlockId(i as u32);
                let mut out = HashSet::new();
                for s in kernel.successors(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<RegId> = gen[i].clone();
                for &r in &out {
                    if !kill[i].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    const DIAMOND: &str = r#"
.kernel diamond (.param .u32 n) {
  .reg .u32 %r<6>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [n];
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra left;
  add.u32 %r3, %r1, 1;
  bra join;
left:
  add.u32 %r3, %r1, 2;
join:
  add.u32 %r4, %r3, %r1;
  ret;
}
"#;

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let k = parse_kernel(DIAMOND).unwrap();
        let rpo = reverse_postorder(&k);
        assert_eq!(rpo.len(), k.blocks.len());
        assert_eq!(rpo[0], BlockId(0));
        let set: HashSet<_> = rpo.iter().collect();
        assert_eq!(set.len(), rpo.len());
    }

    #[test]
    fn dominators_of_diamond() {
        let k = parse_kernel(DIAMOND).unwrap();
        let dt = DominatorTree::compute(&k);
        let entry = BlockId(0);
        let join = k.block_by_label("join").unwrap();
        let left = k.block_by_label("left").unwrap();
        assert!(dt.dominates(entry, join));
        assert!(dt.dominates(entry, left));
        assert!(!dt.dominates(left, join));
        assert_eq!(dt.idom[join.index()], Some(entry));
    }

    #[test]
    fn liveness_at_join() {
        let k = parse_kernel(DIAMOND).unwrap();
        let lv = Liveness::compute(&k);
        let join = k.block_by_label("join").unwrap();
        // %r3 (value merged from both arms) and %r1 are live into join.
        let names: Vec<&str> =
            lv.live_in[join.index()].iter().map(|r| k.registers[r.index()].name.as_str()).collect();
        assert!(names.contains(&"%r3"), "{names:?}");
        assert!(names.contains(&"%r1"), "{names:?}");
        assert!(!names.contains(&"%r4"), "{names:?}");
    }

    #[test]
    fn guarded_write_keeps_value_live() {
        let k = parse_kernel(
            ".kernel k (.param .u32 n) { .reg .u32 %r<3>; .reg .pred %p<2>; \
             entry: mov.u32 %r1, 5; ld.param.u32 %r2, [n]; setp.lt.u32 %p1, %r2, 3; \
             @%p1 mov.u32 %r1, 7; st.global.u32 [8], %r1; ret; }",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        // %r1's initial value must stay live across the guarded overwrite,
        // i.e. the block's gen set includes it even though it is written.
        // Since everything is one block, check live_in of the entry: %r1 is
        // defined before the guarded write, so live_in should NOT contain it.
        assert!(lv.live_in[0].is_empty(), "{:?}", lv.live_in[0]);
    }

    #[test]
    fn loop_liveness_converges() {
        let k = parse_kernel(
            ".kernel k (.param .u32 n) { .reg .u32 %r<4>; .reg .pred %p<2>; \
             entry: mov.u32 %r1, 0; ld.param.u32 %r2, [n]; \
             head: add.u32 %r1, %r1, 1; setp.lt.u32 %p1, %r1, %r2; @%p1 bra head; \
             exit: ret; }",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        let head = k.block_by_label("head").unwrap();
        let names: Vec<&str> =
            lv.live_in[head.index()].iter().map(|r| k.registers[r.index()].name.as_str()).collect();
        assert!(names.contains(&"%r1"));
        assert!(names.contains(&"%r2"));
    }
}
