//! Instructions of the virtual ISA.

use std::fmt;

use crate::error::PtxError;
use crate::operand::{Operand, RegId};
use crate::types::{AddressSpace, ScalarType};

/// Comparison operator of `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Parse a comparison token (`eq`, `lt`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`PtxError::UnknownOpcode`] for unknown tokens.
    pub fn from_token(s: &str) -> Result<Self, PtxError> {
        Ok(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            other => return Err(PtxError::UnknownOpcode(format!("setp.{other}"))),
        })
    }

    /// The token used in the textual form.
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Evaluate on a signed-integer interpretation.
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluate on an unsigned-integer interpretation.
    pub fn eval_u64(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluate on a floating-point interpretation (ordered comparison).
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Which half of a full-width integer multiply is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulHalf {
    /// Low half (`mul.lo`).
    Lo,
    /// High half (`mul.hi`).
    Hi,
}

/// Atomic read-modify-write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Atomic add; returns the old value.
    Add,
    /// Atomic minimum; returns the old value.
    Min,
    /// Atomic maximum; returns the old value.
    Max,
    /// Atomic exchange; returns the old value.
    Exch,
    /// Atomic compare-and-swap; returns the old value.
    Cas,
}

impl AtomOp {
    /// The token used in the textual form.
    pub fn token(self) -> &'static str {
        match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
        }
    }
}

/// Warp-wide vote mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteMode {
    /// True when every active lane's predicate is true.
    All,
    /// True when any active lane's predicate is true.
    Any,
    /// True when all lanes agree (all true or all false).
    Uni,
}

impl VoteMode {
    /// The token used in the textual form.
    pub fn token(self) -> &'static str {
        match self {
            VoteMode::All => "all",
            VoteMode::Any => "any",
            VoteMode::Uni => "uni",
        }
    }
}

/// Operation performed by an [`Instruction`].
#[derive(Debug, Clone, PartialEq)]
pub enum Opcode {
    /// Integer or floating-point addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication; integers keep the selected half.
    Mul(MulHalf),
    /// Multiply-add `d = a*b + c`; integers keep the low half.
    Mad,
    /// Fused multiply-add on floats.
    Fma,
    /// Division.
    Div,
    /// Remainder (integers only).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Bitwise and (also defined on predicates).
    And,
    /// Bitwise or (also defined on predicates).
    Or,
    /// Bitwise xor (also defined on predicates).
    Xor,
    /// Bitwise not (also defined on predicates).
    Not,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic for signed types, logical otherwise).
    Shr,
    /// Compare and set predicate: `setp.<cmp>.<ty> %p, a, b`.
    Setp(CmpOp),
    /// Select between two values by a predicate: `selp.<ty> d, a, b, %p`.
    Selp,
    /// Register/immediate/special-register move.
    Mov,
    /// Convert from the given source type to the instruction type.
    Cvt(ScalarType),
    /// Load from the given space: `ld.<space>.<ty> d, [addr]`.
    Ld(AddressSpace),
    /// Store to the given space: `st.<space>.<ty> [addr], a`.
    St(AddressSpace),
    /// Atomic RMW in the given space: `atom.<space>.<op>.<ty> d, [addr], a`.
    Atom(AddressSpace, AtomOp),
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Reciprocal.
    Rcp,
    /// Sine (radians).
    Sin,
    /// Cosine (radians).
    Cos,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
    /// Warp-wide vote producing a predicate.
    Vote(VoteMode),
    /// Unconditional (or guarded) branch to a label.
    Bra(String),
    /// CTA-wide barrier.
    Bar,
    /// Return from the kernel (thread terminates).
    Ret,
    /// Terminate the thread (alias of `ret` for kernels).
    Exit,
}

impl Opcode {
    /// Whether this opcode ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Opcode::Bra(_) | Opcode::Ret | Opcode::Exit)
    }

    /// Whether this opcode may touch memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Opcode::Ld(_) | Opcode::St(_) | Opcode::Atom(..))
    }

    /// Mnemonic without type suffixes, for diagnostics.
    pub fn mnemonic(&self) -> String {
        match self {
            Opcode::Add => "add".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Mul(MulHalf::Lo) => "mul.lo".into(),
            Opcode::Mul(MulHalf::Hi) => "mul.hi".into(),
            Opcode::Mad => "mad.lo".into(),
            Opcode::Fma => "fma.rn".into(),
            Opcode::Div => "div".into(),
            Opcode::Rem => "rem".into(),
            Opcode::Min => "min".into(),
            Opcode::Max => "max".into(),
            Opcode::Abs => "abs".into(),
            Opcode::Neg => "neg".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Not => "not".into(),
            Opcode::Shl => "shl".into(),
            Opcode::Shr => "shr".into(),
            Opcode::Setp(c) => format!("setp.{}", c.token()),
            Opcode::Selp => "selp".into(),
            Opcode::Mov => "mov".into(),
            Opcode::Cvt(from) => format!("cvt.<to>.{from}"),
            Opcode::Ld(sp) => format!("ld.{sp}"),
            Opcode::St(sp) => format!("st.{sp}"),
            Opcode::Atom(sp, op) => format!("atom.{sp}.{}", op.token()),
            Opcode::Sqrt => "sqrt".into(),
            Opcode::Rsqrt => "rsqrt".into(),
            Opcode::Rcp => "rcp".into(),
            Opcode::Sin => "sin".into(),
            Opcode::Cos => "cos".into(),
            Opcode::Ex2 => "ex2".into(),
            Opcode::Lg2 => "lg2".into(),
            Opcode::Vote(m) => format!("vote.{}", m.token()),
            Opcode::Bra(_) => "bra".into(),
            Opcode::Bar => "bar.sync".into(),
            Opcode::Ret => "ret".into(),
            Opcode::Exit => "exit".into(),
        }
    }
}

/// Guard predicate attached to an instruction (`@%p` / `@!%p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register.
    pub pred: RegId,
    /// Whether the guard is negated (`@!%p`).
    pub negated: bool,
}

/// One instruction of the virtual ISA.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Optional guard predicate; when false, the instruction is a no-op
    /// (and a guarded `bra` falls through).
    pub guard: Option<Guard>,
    /// Operation.
    pub opcode: Opcode,
    /// Operation type (destination type for `cvt`).
    pub ty: ScalarType,
    /// Destination register, when the operation produces a value.
    pub dst: Option<RegId>,
    /// Source operands in instruction order.
    pub srcs: Vec<Operand>,
}

impl Instruction {
    /// Construct an unguarded instruction.
    pub fn new(opcode: Opcode, ty: ScalarType, dst: Option<RegId>, srcs: Vec<Operand>) -> Self {
        Instruction { guard: None, opcode, ty, dst, srcs }
    }

    /// Attach a guard predicate.
    pub fn with_guard(mut self, pred: RegId, negated: bool) -> Self {
        self.guard = Some(Guard { pred, negated });
        self
    }

    /// Registers read by this instruction, including the guard and address
    /// bases. Duplicates are possible when a register appears twice.
    pub fn regs_read(&self) -> Vec<RegId> {
        let mut out = Vec::with_capacity(self.srcs.len() + 1);
        if let Some(g) = self.guard {
            out.push(g.pred);
        }
        for s in &self.srcs {
            out.extend(s.regs_read());
        }
        out
    }

    /// The register written by this instruction, if any.
    pub fn reg_written(&self) -> Option<RegId> {
        self.dst
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "@{}%{} ", if g.negated { "!" } else { "" }, g.pred.0)?;
        }
        match &self.opcode {
            Opcode::Bra(label) => {
                write!(f, "bra {label};")?;
                return Ok(());
            }
            Opcode::Bar => {
                write!(f, "bar.sync 0;")?;
                return Ok(());
            }
            Opcode::Ret => {
                write!(f, "ret;")?;
                return Ok(());
            }
            Opcode::Exit => {
                write!(f, "exit;")?;
                return Ok(());
            }
            Opcode::Cvt(from) => {
                write!(f, "cvt.{}.{}", self.ty, from)?;
            }
            op => {
                write!(f, "{}.{}", op.mnemonic(), self.ty)?;
            }
        }
        let mut first = true;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
            first = false;
        }
        for s in &self.srcs {
            if first {
                write!(f, " {s}")?;
                first = false;
            } else {
                write!(f, ", {s}")?;
            }
        }
        write!(f, ";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval_i64(-1, 0));
        assert!(!CmpOp::Lt.eval_u64(u64::MAX, 0));
        assert!(CmpOp::Ge.eval_f64(1.5, 1.5));
        assert!(CmpOp::Ne.eval_f64(f64::NAN, f64::NAN));
        assert!(!CmpOp::Eq.eval_f64(f64::NAN, f64::NAN));
    }

    #[test]
    fn terminators() {
        assert!(Opcode::Bra("l".into()).is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Bar.is_terminator());
        assert!(!Opcode::Add.is_terminator());
    }

    #[test]
    fn regs_read_includes_guard() {
        let i = Instruction::new(
            Opcode::Add,
            ScalarType::U32,
            Some(RegId(0)),
            vec![Operand::Reg(RegId(1)), Operand::Imm(2)],
        )
        .with_guard(RegId(9), true);
        assert_eq!(i.regs_read(), vec![RegId(9), RegId(1)]);
        assert_eq!(i.reg_written(), Some(RegId(0)));
    }

    #[test]
    fn display_formats() {
        let i = Instruction::new(
            Opcode::Add,
            ScalarType::F32,
            Some(RegId(1)),
            vec![Operand::Reg(RegId(2)), Operand::ImmF(1.0)],
        );
        assert_eq!(i.to_string(), "add.f32 %1, %2, 1.0;");
        let b = Instruction::new(Opcode::Bra("head".into()), ScalarType::Pred, None, vec![])
            .with_guard(RegId(3), false);
        assert_eq!(b.to_string(), "@%3 bra head;");
    }
}
