//! Instruction operands: registers, immediates, special registers, addresses.

use std::fmt;

use crate::error::PtxError;

/// Index of a virtual register within one kernel.
///
/// Register names (`%r1`, `%f2`, ...) are interned by the parser; analyses
/// and transformations work with dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

impl RegId {
    /// The dense index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One of the three grid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// x dimension.
    X,
    /// y dimension.
    Y,
    /// z dimension.
    Z,
}

impl Dim {
    /// Suffix character used in the textual form.
    pub fn suffix(self) -> char {
        match self {
            Dim::X => 'x',
            Dim::Y => 'y',
            Dim::Z => 'z',
        }
    }
}

/// Read-only special registers exposing a thread's position in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within its CTA (`%tid.{x,y,z}`).
    Tid(Dim),
    /// CTA dimensions (`%ntid.{x,y,z}`).
    Ntid(Dim),
    /// CTA index within the grid (`%ctaid.{x,y,z}`).
    Ctaid(Dim),
    /// Grid dimensions in CTAs (`%nctaid.{x,y,z}`).
    Nctaid(Dim),
    /// Lane index within the executing warp (`%laneid`).
    LaneId,
    /// Width of the executing warp (`%warpsize`). Note this is the
    /// *dynamic* warp size chosen by the execution manager.
    WarpSize,
}

impl SpecialReg {
    /// Parse the body of a special-register token (without the `%`).
    ///
    /// # Errors
    ///
    /// Returns [`PtxError::UnknownSpecialRegister`] for unknown names.
    pub fn from_token(s: &str) -> Result<Self, PtxError> {
        let dim = |suffix: &str| -> Option<Dim> {
            match suffix {
                "x" => Some(Dim::X),
                "y" => Some(Dim::Y),
                "z" => Some(Dim::Z),
                _ => None,
            }
        };
        if let Some((base, suf)) = s.split_once('.') {
            let d = dim(suf).ok_or_else(|| PtxError::UnknownSpecialRegister(s.to_string()))?;
            return Ok(match base {
                "tid" => SpecialReg::Tid(d),
                "ntid" => SpecialReg::Ntid(d),
                "ctaid" => SpecialReg::Ctaid(d),
                "nctaid" => SpecialReg::Nctaid(d),
                _ => return Err(PtxError::UnknownSpecialRegister(s.to_string())),
            });
        }
        match s {
            "laneid" => Ok(SpecialReg::LaneId),
            "warpsize" => Ok(SpecialReg::WarpSize),
            _ => Err(PtxError::UnknownSpecialRegister(s.to_string())),
        }
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecialReg::Tid(d) => write!(f, "%tid.{}", d.suffix()),
            SpecialReg::Ntid(d) => write!(f, "%ntid.{}", d.suffix()),
            SpecialReg::Ctaid(d) => write!(f, "%ctaid.{}", d.suffix()),
            SpecialReg::Nctaid(d) => write!(f, "%nctaid.{}", d.suffix()),
            SpecialReg::LaneId => write!(f, "%laneid"),
            SpecialReg::WarpSize => write!(f, "%warpsize"),
        }
    }
}

/// Base of a memory address expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AddressBase {
    /// Address held in a register.
    Reg(RegId),
    /// Named kernel parameter (valid in the `.param` space).
    Param(String),
    /// Named `.shared` or `.local` variable declared in the kernel.
    Var(String),
    /// Absolute offset within the space.
    Absolute,
}

/// A memory address expression `[base + offset]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Address {
    /// Base of the address.
    pub base: AddressBase,
    /// Constant byte offset added to the base.
    pub offset: i64,
}

impl Address {
    /// Address held entirely in a register.
    pub fn reg(r: RegId) -> Self {
        Address { base: AddressBase::Reg(r), offset: 0 }
    }

    /// Address of a named parameter.
    pub fn param(name: impl Into<String>) -> Self {
        Address { base: AddressBase::Param(name.into()), offset: 0 }
    }

    /// Address of a named `.shared`/`.local` variable.
    pub fn var(name: impl Into<String>) -> Self {
        Address { base: AddressBase::Var(name.into()), offset: 0 }
    }

    /// Add a constant byte offset.
    pub fn with_offset(mut self, offset: i64) -> Self {
        self.offset = offset;
        self
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        match &self.base {
            AddressBase::Reg(r) => write!(f, "{r}")?,
            AddressBase::Param(p) => write!(f, "{p}")?,
            AddressBase::Var(v) => write!(f, "{v}")?,
            AddressBase::Absolute => {}
        }
        if self.offset != 0 || matches!(self.base, AddressBase::Absolute) {
            if matches!(self.base, AddressBase::Absolute) {
                write!(f, "{}", self.offset)?;
            } else {
                write!(f, "+{}", self.offset)?;
            }
        }
        write!(f, "]")
    }
}

/// A source operand of an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Virtual register.
    Reg(RegId),
    /// Integer immediate (bit pattern; interpretation depends on the
    /// instruction type).
    Imm(i64),
    /// Floating-point immediate.
    ImmF(f64),
    /// Special register.
    Special(SpecialReg),
    /// Memory address (loads, stores, atomics only).
    Addr(Address),
    /// Address-of a declared `.shared`/`.local` variable (valid in `mov`
    /// only), e.g. `mov.u64 %rd, tile;`.
    Sym(String),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(&self) -> Option<RegId> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// All registers read by this operand (including address bases).
    pub fn regs_read(&self) -> impl Iterator<Item = RegId> + '_ {
        let reg = match self {
            Operand::Reg(r) => Some(*r),
            Operand::Addr(Address { base: AddressBase::Reg(r), .. }) => Some(*r),
            _ => None,
        };
        reg.into_iter()
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::ImmF(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Operand::Special(s) => write!(f, "{s}"),
            Operand::Addr(a) => write!(f, "{a}"),
            Operand::Sym(name) => write!(f, "{name}"),
        }
    }
}

impl From<RegId> for Operand {
    fn from(r: RegId) -> Self {
        Operand::Reg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_reg_parsing() {
        assert_eq!(SpecialReg::from_token("tid.x").unwrap(), SpecialReg::Tid(Dim::X));
        assert_eq!(SpecialReg::from_token("nctaid.z").unwrap(), SpecialReg::Nctaid(Dim::Z));
        assert_eq!(SpecialReg::from_token("laneid").unwrap(), SpecialReg::LaneId);
        assert!(SpecialReg::from_token("tid.w").is_err());
        assert!(SpecialReg::from_token("pc").is_err());
    }

    #[test]
    fn special_reg_display_round_trip() {
        for s in [SpecialReg::Tid(Dim::Y), SpecialReg::Ctaid(Dim::X), SpecialReg::WarpSize] {
            let text = s.to_string();
            assert_eq!(SpecialReg::from_token(&text[1..]).unwrap(), s);
        }
    }

    #[test]
    fn address_display() {
        let a = Address::reg(RegId(3)).with_offset(8);
        assert_eq!(a.to_string(), "[%3+8]");
        assert_eq!(Address::param("n").to_string(), "[n]");
    }

    #[test]
    fn operand_regs_read_includes_address_base() {
        let op = Operand::Addr(Address::reg(RegId(7)));
        assert_eq!(op.regs_read().collect::<Vec<_>>(), vec![RegId(7)]);
        assert_eq!(Operand::Imm(4).regs_read().count(), 0);
    }
}
