//! Tokenizer for the textual kernel format.

use crate::error::PtxError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare word, possibly dotted: opcodes (`add.f32`), labels, names.
    Word(String),
    /// Directive starting with `.` (`.kernel`, `.reg`, `.param`, ...).
    Directive(String),
    /// Register reference starting with `%`, possibly dotted (`%tid.x`).
    Register(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// Floating-point literal (decimal, `0f`/`0d` raw-bits forms).
    Float(f64),
    /// Single punctuation character: `(){}[],;:@!+<>-`.
    Punct(char),
}

/// A token together with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

/// Tokenize kernel source text.
///
/// Comments (`// ...` and `/* ... */`) are skipped.
///
/// # Errors
///
/// Returns [`PtxError::Lex`] on malformed numeric literals or unexpected
/// characters.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, PtxError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    let lex_err = |line: u32, col: u32, message: &str| PtxError::Lex {
        line,
        col,
        message: message.to_string(),
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if bytes[i + 1] == '/' {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(lex_err(line, 0, "unterminated block comment"));
                }
                i += 2;
                continue;
            }
        }
        // Registers.
        if c == '%' {
            let start = i + 1;
            let mut j = start;
            while j < n && is_word_char(bytes[j]) {
                j += 1;
            }
            if j == start {
                return Err(lex_err(line, i as u32, "`%` not followed by a register name"));
            }
            let name: String = bytes[start..j].iter().collect();
            out.push(Spanned { token: Token::Register(name), line });
            i = j;
            continue;
        }
        // Directives.
        if c == '.' {
            let start = i + 1;
            let mut j = start;
            while j < n && is_word_char(bytes[j]) && bytes[j] != '.' {
                j += 1;
            }
            if j == start {
                return Err(lex_err(line, i as u32, "`.` not followed by a directive name"));
            }
            let name: String = bytes[start..j].iter().collect();
            out.push(Spanned { token: Token::Directive(name), line });
            i = j;
            continue;
        }
        // Numbers (optionally negative).
        if c.is_ascii_digit()
            || (c == '-' && i + 1 < n && (bytes[i + 1].is_ascii_digit() || bytes[i + 1] == '.'))
        {
            let start = i;
            let mut j = i;
            if bytes[j] == '-' {
                j += 1;
            }
            // Raw-bits float forms: 0fXXXXXXXX / 0dXXXXXXXXXXXXXXXX.
            if j + 1 < n && bytes[j] == '0' && (bytes[j + 1] == 'f' || bytes[j + 1] == 'd') {
                let is_f32 = bytes[j + 1] == 'f';
                let hex_start = j + 2;
                let mut k = hex_start;
                while k < n && bytes[k].is_ascii_hexdigit() {
                    k += 1;
                }
                let digits: String = bytes[hex_start..k].iter().collect();
                let expected = if is_f32 { 8 } else { 16 };
                if digits.len() == expected {
                    let neg = bytes[start] == '-';
                    let value = if is_f32 {
                        let bits = u32::from_str_radix(&digits, 16)
                            .map_err(|_| lex_err(line, start as u32, "bad 0f literal"))?;
                        f32::from_bits(bits) as f64
                    } else {
                        let bits = u64::from_str_radix(&digits, 16)
                            .map_err(|_| lex_err(line, start as u32, "bad 0d literal"))?;
                        f64::from_bits(bits)
                    };
                    out.push(Spanned {
                        token: Token::Float(if neg { -value } else { value }),
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            // Hexadecimal integers.
            if j + 1 < n && bytes[j] == '0' && (bytes[j + 1] == 'x' || bytes[j + 1] == 'X') {
                let hex_start = j + 2;
                let mut k = hex_start;
                while k < n && bytes[k].is_ascii_hexdigit() {
                    k += 1;
                }
                let digits: String = bytes[hex_start..k].iter().collect();
                if digits.is_empty() {
                    return Err(lex_err(line, start as u32, "empty hex literal"));
                }
                let mag = u64::from_str_radix(&digits, 16)
                    .map_err(|_| lex_err(line, start as u32, "hex literal out of range"))?
                    as i64;
                let value = if bytes[start] == '-' { -mag } else { mag };
                out.push(Spanned { token: Token::Int(value), line });
                i = k;
                continue;
            }
            // Decimal integer or float.
            let mut k = j;
            let mut is_float = false;
            while k < n {
                let ch = bytes[k];
                if ch.is_ascii_digit() {
                    k += 1;
                } else if ch == '.' && !is_float && k + 1 < n && bytes[k + 1].is_ascii_digit() {
                    is_float = true;
                    k += 1;
                } else if (ch == 'e' || ch == 'E')
                    && k + 1 < n
                    && (bytes[k + 1].is_ascii_digit()
                        || ((bytes[k + 1] == '+' || bytes[k + 1] == '-')
                            && k + 2 < n
                            && bytes[k + 2].is_ascii_digit()))
                {
                    is_float = true;
                    k += 1;
                    if bytes[k] == '+' || bytes[k] == '-' {
                        k += 1;
                    }
                } else {
                    break;
                }
            }
            let text: String = bytes[start..k].iter().collect();
            if is_float {
                let v: f64 =
                    text.parse().map_err(|_| lex_err(line, start as u32, "bad float literal"))?;
                out.push(Spanned { token: Token::Float(v), line });
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|_| lex_err(line, start as u32, "integer literal out of range"))?;
                out.push(Spanned { token: Token::Int(v), line });
            }
            i = k;
            continue;
        }
        // Words.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            let mut j = i;
            while j < n && is_word_char(bytes[j]) {
                j += 1;
            }
            let w: String = bytes[start..j].iter().collect();
            out.push(Spanned { token: Token::Word(w), line });
            i = j;
            continue;
        }
        // Punctuation.
        if "(){}[],;:@!+<>-".contains(c) {
            out.push(Spanned { token: Token::Punct(c), line });
            i += 1;
            continue;
        }
        return Err(lex_err(line, i as u32, &format!("unexpected character `{c}`")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn words_and_directives() {
        assert_eq!(
            toks(".kernel foo"),
            vec![Token::Directive("kernel".into()), Token::Word("foo".into())]
        );
    }

    #[test]
    fn dotted_mnemonics_are_one_word() {
        assert_eq!(toks("setp.ge.u32"), vec![Token::Word("setp.ge.u32".into())]);
    }

    #[test]
    fn registers_keep_dots() {
        assert_eq!(
            toks("%tid.x %r1"),
            vec![Token::Register("tid.x".into()), Token::Register("r1".into())]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("-7"), vec![Token::Int(-7)]);
        assert_eq!(toks("0x1F"), vec![Token::Int(31)]);
        assert_eq!(toks("1.5"), vec![Token::Float(1.5)]);
        assert_eq!(toks("2e3"), vec![Token::Float(2000.0)]);
        assert_eq!(toks("0f3F800000"), vec![Token::Float(1.0)]);
        assert_eq!(toks("-0f3F800000"), vec![Token::Float(-1.0)]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("add // comment\nsub"),
            vec![Token::Word("add".into()), Token::Word("sub".into())]
        );
        assert_eq!(toks("a /* x\ny */ b"), vec![Token::Word("a".into()), Token::Word("b".into())]);
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            toks("[%r1+8]"),
            vec![
                Token::Punct('['),
                Token::Register("r1".into()),
                Token::Punct('+'),
                Token::Int(8),
                Token::Punct(']'),
            ]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a\n  ?").unwrap_err();
        match err {
            PtxError::Lex { line, .. } => assert_eq!(line, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
    }
}
