//! Parser for the textual kernel format.
//!
//! The grammar is a compact PTX-like assembly:
//!
//! ```text
//! .kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n) {
//!   .reg .u32 %r<8>;
//!   .reg .f32 %f<4>;
//!   .reg .pred %p<2>;
//! entry:
//!   mov.u32 %r1, %tid.x;
//!   mad.lo.u32 %r3, %ctaid.x, %ntid.x, %r1;
//!   ld.param.u32 %r4, [n];
//!   setp.ge.u32 %p1, %r3, %r4;
//!   @%p1 bra done;
//!   ret;
//! done:
//!   ret;
//! }
//! ```

use std::collections::HashMap;

use crate::error::PtxError;
use crate::instruction::{AtomOp, CmpOp, Instruction, MulHalf, Opcode, VoteMode};
use crate::kernel::{BasicBlock, Kernel, Module};
use crate::lexer::{tokenize, Spanned, Token};
use crate::operand::{Address, AddressBase, Operand, RegId, SpecialReg};
use crate::types::{AddressSpace, ScalarType};

/// Parse a full module (one or more kernels) from source text.
///
/// # Errors
///
/// Returns a [`PtxError`] describing the first lexical, syntactic or
/// reference error encountered.
///
/// ```
/// let src = ".kernel noop () { entry: ret; }";
/// let module = dpvk_ptx::parse_module(src)?;
/// assert_eq!(module.kernels[0].name, "noop");
/// # Ok::<(), dpvk_ptx::PtxError>(())
/// ```
pub fn parse_module(src: &str) -> Result<Module, PtxError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut module = Module::new();
    while !parser.at_end() {
        module.add_kernel(parser.parse_kernel()?);
    }
    Ok(module)
}

/// Parse source text expected to contain exactly one kernel.
///
/// # Errors
///
/// Returns a [`PtxError`] on parse failure or when the module does not
/// contain exactly one kernel.
pub fn parse_kernel(src: &str) -> Result<Kernel, PtxError> {
    let module = parse_module(src)?;
    match module.kernels.len() {
        1 => Ok(module.kernels.into_iter().next().expect("length checked")),
        n => Err(PtxError::Parse {
            line: 1,
            message: format!("expected exactly one kernel, found {n}"),
        }),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> PtxError {
        PtxError::Parse { line: self.line(), message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn next(&mut self) -> Result<Token, PtxError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|s| s.token.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), PtxError> {
        match self.next()? {
            Token::Punct(p) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_directive(&mut self, name: &str) -> Result<(), PtxError> {
        match self.next()? {
            Token::Directive(d) if d == name => Ok(()),
            other => Err(self.err(format!("expected `.{name}`, found {other:?}"))),
        }
    }

    fn expect_word(&mut self) -> Result<String, PtxError> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_type_directive(&mut self) -> Result<ScalarType, PtxError> {
        match self.next()? {
            Token::Directive(d) => ScalarType::from_suffix(&d),
            other => Err(self.err(format!("expected type directive, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, PtxError> {
        match self.next()? {
            Token::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn parse_kernel(&mut self) -> Result<Kernel, PtxError> {
        self.expect_directive("kernel")?;
        let name = self.expect_word()?;
        let mut kernel = Kernel::new(name);
        self.expect_punct('(')?;
        if !self.eat_punct(')') {
            loop {
                self.expect_directive("param")?;
                let ty = self.expect_type_directive()?;
                let pname = self.expect_word()?;
                kernel.add_param(pname, ty);
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;
        self.parse_body(&mut kernel)?;
        Ok(kernel)
    }

    fn parse_body(&mut self, kernel: &mut Kernel) -> Result<(), PtxError> {
        let mut regs: HashMap<String, RegId> = HashMap::new();
        let mut current = BasicBlock::new("entry");
        let mut anon = 0u32;
        let mut open = true; // whether `current` accepts more instructions

        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input inside kernel body")),
                Some(Token::Punct('}')) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Directive(d)) => match d.as_str() {
                    "reg" => {
                        self.pos += 1;
                        self.parse_reg_decl(kernel, &mut regs)?;
                    }
                    "shared" | "local" => {
                        let space =
                            if d == "shared" { AddressSpace::Shared } else { AddressSpace::Local };
                        self.pos += 1;
                        self.parse_var_decl(kernel, space)?;
                    }
                    other => return Err(self.err(format!("unexpected directive `.{other}`"))),
                },
                Some(Token::Word(_)) if matches!(self.peek2(), Some(Token::Punct(':'))) => {
                    // Label: close the current block, open a new one.
                    let label = self.expect_word()?;
                    self.expect_punct(':')?;
                    if !current.instructions.is_empty() || !open {
                        kernel.add_block(current);
                    } else if kernel.blocks.is_empty() && current.label == "entry" {
                        // Leading label renames the implicit entry block
                        // rather than creating an empty one.
                    } else {
                        kernel.add_block(current);
                    }
                    current = BasicBlock::new(label);
                    open = true;
                }
                Some(_) => {
                    if !open {
                        // Instruction after a terminator without a label:
                        // begin an anonymous block.
                        kernel.add_block(current);
                        current = BasicBlock::new(format!("$anon{anon}"));
                        anon += 1;
                        open = true;
                    }
                    let inst = self.parse_instruction(kernel, &regs)?;
                    // Any terminator ends the block, guarded or not (a
                    // guarded `bra`/`ret` falls through to the next block).
                    let ends = inst.opcode.is_terminator();
                    current.instructions.push(inst);
                    if ends {
                        open = false;
                    }
                }
            }
        }
        kernel.add_block(current);
        // Validate branch targets.
        for b in &kernel.blocks {
            for i in &b.instructions {
                if let Opcode::Bra(target) = &i.opcode {
                    if kernel.block_by_label(target).is_none() {
                        return Err(PtxError::UndefinedLabel(target.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    fn parse_reg_decl(
        &mut self,
        kernel: &mut Kernel,
        regs: &mut HashMap<String, RegId>,
    ) -> Result<(), PtxError> {
        let ty = self.expect_type_directive()?;
        loop {
            let base = match self.next()? {
                Token::Register(name) => name,
                other => return Err(self.err(format!("expected register name, found {other:?}"))),
            };
            if self.eat_punct('<') {
                let count = self.expect_int()?;
                self.expect_punct('>')?;
                if count <= 0 {
                    return Err(self.err("register range count must be positive"));
                }
                for i in 0..count {
                    let name = format!("{base}{i}");
                    let id = kernel.add_register(format!("%{name}"), ty);
                    regs.insert(name, id);
                }
            } else {
                let id = kernel.add_register(format!("%{base}"), ty);
                regs.insert(base, id);
            }
            if self.eat_punct(',') {
                continue;
            }
            self.expect_punct(';')?;
            break;
        }
        Ok(())
    }

    fn parse_var_decl(&mut self, kernel: &mut Kernel, space: AddressSpace) -> Result<(), PtxError> {
        let ty = self.expect_type_directive()?;
        let name = self.expect_word()?;
        self.expect_punct('[')?;
        let len = self.expect_int()?;
        self.expect_punct(']')?;
        self.expect_punct(';')?;
        if len <= 0 {
            return Err(self.err("array length must be positive"));
        }
        kernel.add_var(name, ty, len as usize, space);
        Ok(())
    }

    fn parse_instruction(
        &mut self,
        kernel: &Kernel,
        regs: &HashMap<String, RegId>,
    ) -> Result<Instruction, PtxError> {
        // Optional guard.
        let mut guard = None;
        if self.eat_punct('@') {
            let negated = self.eat_punct('!');
            let pred = match self.next()? {
                Token::Register(name) => self.resolve_reg(&name, regs)?,
                other => return Err(self.err(format!("expected guard predicate, found {other:?}"))),
            };
            guard = Some((pred, negated));
        }
        let mnemonic = self.expect_word()?;
        let parts: Vec<&str> = mnemonic.split('.').collect();
        if parts[0] == "bra" {
            let mut inst = self.parse_bra()?;
            if let Some((pred, negated)) = guard {
                inst = inst.with_guard(pred, negated);
            }
            return Ok(inst);
        }
        let (opcode, ty) = self.decode_mnemonic(&parts)?;

        let mut inst = match &opcode {
            Opcode::Bar => {
                // Optional barrier id operand (ignored; only barrier 0 with
                // CTA scope is modeled).
                if matches!(self.peek(), Some(Token::Int(_))) {
                    self.pos += 1;
                }
                self.expect_punct(';')?;
                Instruction::new(Opcode::Bar, ScalarType::Pred, None, vec![])
            }
            Opcode::Ret | Opcode::Exit => {
                self.expect_punct(';')?;
                Instruction::new(opcode, ScalarType::Pred, None, vec![])
            }
            _ => {
                let operands = self.parse_operands(kernel, regs)?;
                self.build_instruction(opcode, ty, operands)?
            }
        };
        if let Some((pred, negated)) = guard {
            inst = inst.with_guard(pred, negated);
        }
        Ok(inst)
    }

    fn resolve_reg(&self, name: &str, regs: &HashMap<String, RegId>) -> Result<RegId, PtxError> {
        regs.get(name).copied().ok_or_else(|| PtxError::UndeclaredRegister(format!("%{name}")))
    }

    fn decode_mnemonic(&self, parts: &[&str]) -> Result<(Opcode, ScalarType), PtxError> {
        let full = parts.join(".");
        let base = parts[0];
        let last_ty = || -> Result<ScalarType, PtxError> {
            ScalarType::from_suffix(parts.last().expect("split produces at least one part"))
        };
        let simple =
            |op: Opcode| -> Result<(Opcode, ScalarType), PtxError> { Ok((op, last_ty()?)) };
        match base {
            "add" => simple(Opcode::Add),
            "sub" => simple(Opcode::Sub),
            "mul" => {
                let half = if parts.contains(&"hi") { MulHalf::Hi } else { MulHalf::Lo };
                simple(Opcode::Mul(half))
            }
            "mad" => simple(Opcode::Mad),
            "fma" => simple(Opcode::Fma),
            "div" => simple(Opcode::Div),
            "rem" => simple(Opcode::Rem),
            "min" => simple(Opcode::Min),
            "max" => simple(Opcode::Max),
            "abs" => simple(Opcode::Abs),
            "neg" => simple(Opcode::Neg),
            "and" => simple(Opcode::And),
            "or" => simple(Opcode::Or),
            "xor" => simple(Opcode::Xor),
            "not" => simple(Opcode::Not),
            "shl" => simple(Opcode::Shl),
            "shr" => simple(Opcode::Shr),
            "sqrt" => simple(Opcode::Sqrt),
            "rsqrt" => simple(Opcode::Rsqrt),
            "rcp" => simple(Opcode::Rcp),
            "sin" => simple(Opcode::Sin),
            "cos" => simple(Opcode::Cos),
            "ex2" => simple(Opcode::Ex2),
            "lg2" => simple(Opcode::Lg2),
            "mov" => simple(Opcode::Mov),
            "selp" => simple(Opcode::Selp),
            "setp" => {
                if parts.len() < 3 {
                    return Err(self.err(format!("malformed setp `{full}`")));
                }
                let cmp = CmpOp::from_token(parts[1])?;
                Ok((Opcode::Setp(cmp), last_ty()?))
            }
            "cvt" => {
                let types: Vec<ScalarType> =
                    parts[1..].iter().filter_map(|p| ScalarType::from_suffix(p).ok()).collect();
                if types.len() != 2 {
                    return Err(
                        self.err(format!("cvt `{full}` must name destination and source types"))
                    );
                }
                Ok((Opcode::Cvt(types[1]), types[0]))
            }
            "ld" | "ldu" => {
                if parts.len() < 3 {
                    return Err(self.err(format!("malformed ld `{full}`")));
                }
                let space = AddressSpace::from_token(parts[1])?;
                Ok((Opcode::Ld(space), last_ty()?))
            }
            "st" => {
                if parts.len() < 3 {
                    return Err(self.err(format!("malformed st `{full}`")));
                }
                let space = AddressSpace::from_token(parts[1])?;
                Ok((Opcode::St(space), last_ty()?))
            }
            "atom" => {
                if parts.len() < 4 {
                    return Err(self.err(format!("malformed atom `{full}`")));
                }
                let space = AddressSpace::from_token(parts[1])?;
                let op = match parts[2] {
                    "add" => AtomOp::Add,
                    "min" => AtomOp::Min,
                    "max" => AtomOp::Max,
                    "exch" => AtomOp::Exch,
                    "cas" => AtomOp::Cas,
                    other => return Err(PtxError::UnknownOpcode(format!("atom.{other}"))),
                };
                Ok((Opcode::Atom(space, op), last_ty()?))
            }
            "vote" => {
                if parts.len() < 2 {
                    return Err(self.err(format!("malformed vote `{full}`")));
                }
                let mode = match parts[1] {
                    "all" => VoteMode::All,
                    "any" => VoteMode::Any,
                    "uni" => VoteMode::Uni,
                    other => return Err(PtxError::UnknownOpcode(format!("vote.{other}"))),
                };
                Ok((Opcode::Vote(mode), ScalarType::Pred))
            }
            "bar" => Ok((Opcode::Bar, ScalarType::Pred)),
            "ret" => Ok((Opcode::Ret, ScalarType::Pred)),
            "exit" => Ok((Opcode::Exit, ScalarType::Pred)),
            other => Err(PtxError::UnknownOpcode(other.to_string())),
        }
    }

    fn parse_operands(
        &mut self,
        kernel: &Kernel,
        regs: &HashMap<String, RegId>,
    ) -> Result<Vec<Operand>, PtxError> {
        let mut out = Vec::new();
        loop {
            let op = self.parse_operand(kernel, regs)?;
            out.push(op);
            if self.eat_punct(',') {
                continue;
            }
            self.expect_punct(';')?;
            break;
        }
        Ok(out)
    }

    fn parse_operand(
        &mut self,
        kernel: &Kernel,
        regs: &HashMap<String, RegId>,
    ) -> Result<Operand, PtxError> {
        match self.next()? {
            Token::Register(name) => {
                if let Ok(sr) = SpecialReg::from_token(&name) {
                    return Ok(Operand::Special(sr));
                }
                Ok(Operand::Reg(self.resolve_reg(&name, regs)?))
            }
            Token::Int(v) => Ok(Operand::Imm(v)),
            Token::Float(v) => Ok(Operand::ImmF(v)),
            Token::Word(w) => {
                // Bare identifier: address-of a declared variable.
                if kernel.var(&w).is_some() {
                    Ok(Operand::Sym(w))
                } else {
                    Err(PtxError::UndeclaredParam(w))
                }
            }
            Token::Punct('[') => {
                let base_tok = self.next()?;
                let base = match base_tok {
                    Token::Register(name) => AddressBase::Reg(self.resolve_reg(&name, regs)?),
                    Token::Word(w) => {
                        if kernel.param(&w).is_some() {
                            AddressBase::Param(w)
                        } else if kernel.var(&w).is_some() {
                            AddressBase::Var(w)
                        } else {
                            return Err(PtxError::UndeclaredParam(w));
                        }
                    }
                    Token::Int(v) => {
                        self.expect_punct(']')?;
                        return Ok(Operand::Addr(Address {
                            base: AddressBase::Absolute,
                            offset: v,
                        }));
                    }
                    other => {
                        return Err(self.err(format!("expected address base, found {other:?}")))
                    }
                };
                let mut offset = 0i64;
                if self.eat_punct('+') {
                    offset = self.expect_int()?;
                } else if self.eat_punct('-') {
                    offset = -self.expect_int()?;
                } else if let Some(Token::Int(v)) = self.peek() {
                    // The lexer folds a leading minus into the literal, so
                    // `[%rd0-4]` arrives as Register, Int(-4).
                    offset = *v;
                    self.pos += 1;
                }
                self.expect_punct(']')?;
                Ok(Operand::Addr(Address { base, offset }))
            }
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }

    fn build_instruction(
        &self,
        opcode: Opcode,
        ty: ScalarType,
        mut operands: Vec<Operand>,
    ) -> Result<Instruction, PtxError> {
        let has_dst = !matches!(opcode, Opcode::St(_));
        let dst = if has_dst {
            if operands.is_empty() {
                return Err(self.err("missing destination operand"));
            }
            match operands.remove(0) {
                Operand::Reg(r) => Some(r),
                other => {
                    return Err(self.err(format!("destination must be a register, found {other}")))
                }
            }
        } else {
            None
        };
        // Integer immediates written in float-typed instructions become
        // float immediates (`mov.f32 %f1, 0;`).
        let value_ty_is_float = match &opcode {
            Opcode::Cvt(from) => from.is_float(),
            _ => ty.is_float(),
        };
        if value_ty_is_float {
            for op in &mut operands {
                if let Operand::Imm(v) = *op {
                    *op = Operand::ImmF(v as f64);
                }
            }
        }
        Ok(Instruction::new(opcode, ty, dst, operands))
    }
}

// `bra` needs the label *after* decode; handle it with a tiny wrapper on the
// main instruction path.
impl Parser {
    /// Decode + parse for `bra`, which embeds its target label in the opcode.
    fn parse_bra(&mut self) -> Result<Instruction, PtxError> {
        let label = self.expect_word()?;
        self.expect_punct(';')?;
        Ok(Instruction::new(Opcode::Bra(label), ScalarType::Pred, None, vec![]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Dim;

    const VECADD: &str = r#"
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  mad.lo.u32 %r3, %ctaid.x, %ntid.x, %r1;
  ld.param.u32 %r4, [n];
  setp.ge.u32 %p1, %r3, %r4;
  @%p1 bra done;
  cvt.u64.u32 %rd1, %r3;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [a];
  add.u64 %rd2, %rd2, %rd1;
  ld.global.f32 %f1, [%rd2];
  ld.param.u64 %rd3, [b];
  add.u64 %rd3, %rd3, %rd1;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f3, %f1, %f2;
  ld.param.u64 %rd4, [c];
  add.u64 %rd4, %rd4, %rd1;
  st.global.f32 [%rd4], %f3;
done:
  ret;
}
"#;

    #[test]
    fn parses_vecadd() {
        let k = parse_kernel(VECADD).unwrap();
        assert_eq!(k.name, "vecadd");
        assert_eq!(k.params.len(), 4);
        assert_eq!(k.param("n").unwrap().ty, ScalarType::U32);
        assert_eq!(k.blocks.len(), 3); // entry, fallthrough body, done
        assert_eq!(k.blocks[0].label, "entry");
        assert_eq!(k.blocks[2].label, "done");
        // 8 + 8 + 4 + 2 declared registers.
        assert_eq!(k.registers.len(), 22);
    }

    #[test]
    fn guarded_branch_creates_anonymous_fallthrough() {
        let k = parse_kernel(VECADD).unwrap();
        assert!(k.blocks[1].label.starts_with("$anon"));
        let succ0 = k.successors(crate::kernel::BlockId(0));
        assert_eq!(succ0.len(), 2);
    }

    #[test]
    fn special_registers_parse() {
        let k = parse_kernel(VECADD).unwrap();
        let mov = &k.blocks[0].instructions[0];
        assert_eq!(mov.srcs[0], Operand::Special(SpecialReg::Tid(Dim::X)));
    }

    #[test]
    fn float_immediate_coercion() {
        let k = parse_kernel(
            ".kernel k () { .reg .f32 %f<2>; entry: mov.f32 %f0, 0; add.f32 %f1, %f0, 1.5; ret; }",
        )
        .unwrap();
        assert_eq!(k.blocks[0].instructions[0].srcs[0], Operand::ImmF(0.0));
        assert_eq!(k.blocks[0].instructions[1].srcs[1], Operand::ImmF(1.5));
    }

    #[test]
    fn shared_declaration() {
        let k =
            parse_kernel(".kernel k () { .shared .f32 tile[64]; .reg .u64 %rd<2>; entry: ret; }")
                .unwrap();
        assert_eq!(k.shared_size(), 256);
    }

    #[test]
    fn undefined_label_is_rejected() {
        let err = parse_kernel(".kernel k () { entry: bra nowhere; }").unwrap_err();
        assert_eq!(err, PtxError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn undeclared_register_is_rejected() {
        let err = parse_kernel(".kernel k () { entry: add.u32 %r1, %r1, 1; ret; }").unwrap_err();
        assert_eq!(err, PtxError::UndeclaredRegister("%r1".into()));
    }

    #[test]
    fn atom_and_vote_decode() {
        let k = parse_kernel(
            ".kernel k (.param .u64 p) { .reg .u32 %r<2>; .reg .u64 %rd<2>; .reg .pred %p<2>; \
             entry: ld.param.u64 %rd0, [p]; atom.global.add.u32 %r0, [%rd0], 1; \
             vote.all.pred %p0, %p1; ret; }",
        )
        .unwrap();
        let atom = &k.blocks[0].instructions[1];
        assert!(matches!(atom.opcode, Opcode::Atom(AddressSpace::Global, AtomOp::Add)));
        let vote = &k.blocks[0].instructions[2];
        assert!(matches!(vote.opcode, Opcode::Vote(VoteMode::All)));
    }

    #[test]
    fn multiple_kernels_in_module() {
        let m = parse_module(".kernel a () { entry: ret; } .kernel b () { entry: ret; }").unwrap();
        assert_eq!(m.kernels.len(), 2);
        assert!(m.kernel("a").is_some());
        assert!(m.kernel("b").is_some());
    }

    #[test]
    fn bar_with_operand() {
        let k = parse_kernel(".kernel k () { entry: bar.sync 0; ret; }").unwrap();
        assert!(matches!(k.blocks[0].instructions[0].opcode, Opcode::Bar));
    }
}
