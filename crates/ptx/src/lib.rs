//! # dpvk-ptx
//!
//! A PTX-like data-parallel virtual ISA: in-memory representation, textual
//! parser and printer, programmatic builder, and the control-flow and
//! data-flow analyses the dynamic compiler needs.
//!
//! This crate is the front half of the CGO 2012 reproduction
//! ("Dynamic Compilation of Data-Parallel Kernels for Vector Processors"):
//! kernels are written against the SIMT execution model — thousands of
//! scalar threads grouped into cooperative thread arrays (CTAs) with
//! barrier synchronization — and handed to `dpvk-core` for translation and
//! vectorization.
//!
//! ## Quick example
//!
//! ```
//! let src = r#"
//! .kernel add_one (.param .u64 data, .param .u32 n) {
//!   .reg .u32 %r<4>;
//!   .reg .u64 %rd<3>;
//!   .reg .f32 %f<2>;
//!   .reg .pred %p<2>;
//! entry:
//!   mov.u32 %r1, %tid.x;
//!   mad.lo.u32 %r2, %ctaid.x, %ntid.x, %r1;
//!   ld.param.u32 %r3, [n];
//!   setp.ge.u32 %p1, %r2, %r3;
//!   @%p1 bra done;
//!   cvt.u64.u32 %rd1, %r2;
//!   shl.u64 %rd1, %rd1, 2;
//!   ld.param.u64 %rd2, [data];
//!   add.u64 %rd2, %rd2, %rd1;
//!   ld.global.f32 %f1, [%rd2];
//!   add.f32 %f1, %f1, 1.0;
//!   st.global.f32 [%rd2], %f1;
//! done:
//!   ret;
//! }
//! "#;
//! let module = dpvk_ptx::parse_module(src)?;
//! let kernel = module.kernel("add_one").expect("declared above");
//! dpvk_ptx::validate_kernel(kernel)?;
//! assert!(kernel.blocks.len() >= 2);
//! # Ok::<(), dpvk_ptx::PtxError>(())
//! ```

#![warn(missing_docs)]

mod analysis;
mod builder;
mod error;
mod instruction;
mod kernel;
mod lexer;
mod operand;
mod parser;
mod printer;
mod types;
mod validate;

pub use analysis::{reverse_postorder, DominatorTree, Liveness};
pub use builder::KernelBuilder;
pub use error::PtxError;
pub use instruction::{AtomOp, CmpOp, Guard, Instruction, MulHalf, Opcode, VoteMode};
pub use kernel::{BasicBlock, BlockId, Kernel, Module, Param, RegInfo, VarDecl};
pub use lexer::{tokenize, Spanned, Token};
pub use operand::{Address, AddressBase, Dim, Operand, RegId, SpecialReg};
pub use parser::{parse_kernel, parse_module};
pub use printer::{print_kernel, print_module};
pub use types::{AddressSpace, ScalarType};
pub use validate::validate_kernel;
