//! Textual printing of kernels and modules (inverse of the parser).

use std::fmt::Write as _;

use crate::instruction::{Instruction, Opcode};
use crate::kernel::{Kernel, Module};
use crate::operand::{Address, AddressBase, Operand, RegId};

/// Render a kernel back to parseable source text.
///
/// Register operands are printed with their declared names so the output
/// parses back to an equivalent kernel.
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut s = String::new();
    write!(s, ".kernel {} (", kernel.name).expect("string write");
    for (i, p) in kernel.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, ".param .{} {}", p.ty, p.name).expect("string write");
    }
    s.push_str(") {\n");
    for r in &kernel.registers {
        writeln!(s, "  .reg .{} {};", r.ty, r.name).expect("string write");
    }
    for v in kernel.shared_vars.iter().chain(kernel.local_vars.iter()) {
        writeln!(s, "  .{} .{} {}[{}];", v.space, v.ty, v.name, v.len).expect("string write");
    }
    for b in &kernel.blocks {
        writeln!(s, "{}:", b.label).expect("string write");
        for inst in &b.instructions {
            writeln!(s, "  {}", render_instruction(kernel, inst)).expect("string write");
        }
    }
    s.push_str("}\n");
    s
}

/// Render a module back to parseable source text.
pub fn print_module(module: &Module) -> String {
    module.kernels.iter().map(print_kernel).collect::<Vec<_>>().join("\n")
}

fn reg_name(kernel: &Kernel, r: RegId) -> String {
    kernel
        .registers
        .get(r.index())
        .map(|info| info.name.clone())
        .unwrap_or_else(|| format!("%?{}", r.0))
}

fn render_operand(kernel: &Kernel, op: &Operand) -> String {
    match op {
        Operand::Reg(r) => reg_name(kernel, *r),
        Operand::Addr(Address { base, offset }) => {
            let base_s = match base {
                AddressBase::Reg(r) => reg_name(kernel, *r),
                AddressBase::Param(p) => p.clone(),
                AddressBase::Var(v) => v.clone(),
                AddressBase::Absolute => String::new(),
            };
            if *offset == 0 && !base_s.is_empty() {
                format!("[{base_s}]")
            } else if base_s.is_empty() {
                format!("[{offset}]")
            } else if *offset < 0 {
                format!("[{base_s}-{}]", -offset)
            } else {
                format!("[{base_s}+{offset}]")
            }
        }
        other => other.to_string(),
    }
}

fn render_instruction(kernel: &Kernel, inst: &Instruction) -> String {
    let mut s = String::new();
    if let Some(g) = inst.guard {
        write!(s, "@{}{} ", if g.negated { "!" } else { "" }, reg_name(kernel, g.pred))
            .expect("string write");
    }
    match &inst.opcode {
        Opcode::Bra(label) => {
            write!(s, "bra {label};").expect("string write");
            return s;
        }
        Opcode::Bar => {
            s.push_str("bar.sync 0;");
            return s;
        }
        Opcode::Ret => {
            s.push_str("ret;");
            return s;
        }
        Opcode::Exit => {
            s.push_str("exit;");
            return s;
        }
        Opcode::Cvt(from) => {
            write!(s, "cvt.{}.{}", inst.ty, from).expect("string write");
        }
        Opcode::Vote(m) => {
            write!(s, "vote.{}.pred", m.token()).expect("string write");
        }
        Opcode::Atom(space, op) => {
            write!(s, "atom.{}.{}.{}", space, op.token(), inst.ty).expect("string write");
        }
        op => {
            write!(s, "{}.{}", op.mnemonic(), inst.ty).expect("string write");
        }
    }
    let mut parts = Vec::new();
    if let Some(d) = inst.dst {
        parts.push(reg_name(kernel, d));
    }
    for src in &inst.srcs {
        parts.push(render_operand(kernel, src));
    }
    if !parts.is_empty() {
        write!(s, " {}", parts.join(", ")).expect("string write");
    }
    s.push(';');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    const SRC: &str = r#"
.kernel saxpy (.param .u64 x, .param .u64 y, .param .f32 alpha, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  mad.lo.u32 %r2, %ctaid.x, %ntid.x, %r1;
  ld.param.u32 %r3, [n];
  setp.ge.u32 %p1, %r2, %r3;
  @%p1 bra done;
  cvt.u64.u32 %rd1, %r2;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [x];
  add.u64 %rd2, %rd2, %rd1;
  ld.global.f32 %f1, [%rd2];
  ld.param.f32 %f2, [alpha];
  fma.rn.f32 %f3, %f1, %f2, %f1;
  ld.param.u64 %rd3, [y];
  add.u64 %rd3, %rd3, %rd1;
  st.global.f32 [%rd3], %f3;
done:
  ret;
}
"#;

    #[test]
    fn print_parse_round_trip() {
        let k1 = parse_kernel(SRC).unwrap();
        let text = print_kernel(&k1);
        let k2 = parse_kernel(&text).unwrap();
        assert_eq!(k1.params, k2.params);
        assert_eq!(k1.registers.len(), k2.registers.len());
        assert_eq!(k1.blocks.len(), k2.blocks.len());
        for (b1, b2) in k1.blocks.iter().zip(&k2.blocks) {
            assert_eq!(b1.instructions, b2.instructions, "block {}", b1.label);
        }
    }

    #[test]
    fn renders_negative_offsets() {
        let k = parse_kernel(
            ".kernel k (.param .u64 p) { .reg .u64 %rd<2>; .reg .f32 %f<2>; \
             entry: ld.param.u64 %rd0, [p]; ld.global.f32 %f0, [%rd0-4]; ret; }",
        )
        .unwrap();
        let text = print_kernel(&k);
        assert!(text.contains("[%rd0-4]"), "{text}");
        // And it parses back.
        parse_kernel(&text).unwrap();
    }
}
