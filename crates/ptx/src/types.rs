//! Scalar value types and address spaces of the virtual ISA.

use std::fmt;

use crate::error::PtxError;

/// Scalar type of a register or of an instruction's operation.
///
/// Mirrors the PTX fundamental types that the evaluated workloads use.
/// `Pred` is the one-bit predicate type produced by `setp` and consumed by
/// guards and `selp`.
///
/// ```
/// use dpvk_ptx::ScalarType;
/// assert_eq!(ScalarType::F32.size_bytes(), 4);
/// assert!(ScalarType::S32.is_signed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// One-bit predicate.
    Pred,
    /// Unsigned 8-bit integer.
    U8,
    /// Signed 8-bit integer.
    S8,
    /// Unsigned 16-bit integer.
    U16,
    /// Signed 16-bit integer.
    S16,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 32-bit integer.
    S32,
    /// Unsigned 64-bit integer (also the pointer type).
    U64,
    /// Signed 64-bit integer.
    S64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Untyped 8-bit bits (used in `.b8` array declarations).
    B8,
    /// Untyped 32-bit bits.
    B32,
    /// Untyped 64-bit bits.
    B64,
}

impl ScalarType {
    /// Size of a value of this type in bytes. Predicates occupy one byte
    /// when stored to memory.
    pub fn size_bytes(self) -> usize {
        use ScalarType::*;
        match self {
            Pred | U8 | S8 | B8 => 1,
            U16 | S16 => 2,
            U32 | S32 | F32 | B32 => 4,
            U64 | S64 | F64 | B64 => 8,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether this is a signed integer type.
    pub fn is_signed(self) -> bool {
        matches!(self, ScalarType::S8 | ScalarType::S16 | ScalarType::S32 | ScalarType::S64)
    }

    /// Whether this is any integer (signed, unsigned or untyped-bits) type.
    pub fn is_integer(self) -> bool {
        !self.is_float() && self != ScalarType::Pred
    }

    /// Parse a PTX type suffix such as `u32`, `f64` or `pred`.
    ///
    /// # Errors
    ///
    /// Returns [`PtxError::UnknownType`] when the suffix is not recognized.
    pub fn from_suffix(s: &str) -> Result<Self, PtxError> {
        use ScalarType::*;
        Ok(match s {
            "pred" => Pred,
            "u8" => U8,
            "s8" => S8,
            "u16" => U16,
            "s16" => S16,
            "u32" => U32,
            "s32" => S32,
            "u64" => U64,
            "s64" => S64,
            "f32" => F32,
            "f64" => F64,
            "b8" => B8,
            "b32" => B32,
            "b64" => B64,
            other => return Err(PtxError::UnknownType(other.to_string())),
        })
    }

    /// The suffix string used in the textual form (`u32`, `pred`, ...).
    pub fn suffix(self) -> &'static str {
        use ScalarType::*;
        match self {
            Pred => "pred",
            U8 => "u8",
            S8 => "s8",
            U16 => "u16",
            S16 => "s16",
            U32 => "u32",
            S32 => "s32",
            U64 => "u64",
            S64 => "s64",
            F32 => "f32",
            F64 => "f64",
            B8 => "b8",
            B32 => "b32",
            B64 => "b64",
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Memory address space targeted by a load, store or atomic.
///
/// Matches the PTX state spaces used by the evaluated workloads. Generic
/// addressing is intentionally unsupported: kernels name the space they
/// access, which is what the translator relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// Off-chip, weakly consistent, shared by the whole grid.
    Global,
    /// On-chip, shared by one CTA, cleared at CTA start.
    Shared,
    /// Per-thread private memory (also holds spill slots).
    Local,
    /// Read-only kernel parameter buffer.
    Param,
    /// Read-only module-level constant bank.
    Const,
}

impl AddressSpace {
    /// Parse a state-space token such as `global` or `shared`.
    ///
    /// # Errors
    ///
    /// Returns [`PtxError::UnknownAddressSpace`] for unknown tokens.
    pub fn from_token(s: &str) -> Result<Self, PtxError> {
        Ok(match s {
            "global" => AddressSpace::Global,
            "shared" => AddressSpace::Shared,
            "local" => AddressSpace::Local,
            "param" => AddressSpace::Param,
            "const" => AddressSpace::Const,
            other => return Err(PtxError::UnknownAddressSpace(other.to_string())),
        })
    }

    /// The token used in the textual form.
    pub fn token(self) -> &'static str {
        match self {
            AddressSpace::Global => "global",
            AddressSpace::Shared => "shared",
            AddressSpace::Local => "local",
            AddressSpace::Param => "param",
            AddressSpace::Const => "const",
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_ptx() {
        assert_eq!(ScalarType::U8.size_bytes(), 1);
        assert_eq!(ScalarType::S16.size_bytes(), 2);
        assert_eq!(ScalarType::F32.size_bytes(), 4);
        assert_eq!(ScalarType::U64.size_bytes(), 8);
        assert_eq!(ScalarType::Pred.size_bytes(), 1);
    }

    #[test]
    fn suffix_round_trip() {
        for ty in [
            ScalarType::Pred,
            ScalarType::U8,
            ScalarType::S8,
            ScalarType::U16,
            ScalarType::S16,
            ScalarType::U32,
            ScalarType::S32,
            ScalarType::U64,
            ScalarType::S64,
            ScalarType::F32,
            ScalarType::F64,
            ScalarType::B8,
            ScalarType::B32,
            ScalarType::B64,
        ] {
            assert_eq!(ScalarType::from_suffix(ty.suffix()).unwrap(), ty);
        }
    }

    #[test]
    fn unknown_suffix_is_error() {
        assert!(ScalarType::from_suffix("u128").is_err());
    }

    #[test]
    fn classification() {
        assert!(ScalarType::F64.is_float());
        assert!(!ScalarType::F64.is_integer());
        assert!(ScalarType::U32.is_integer());
        assert!(!ScalarType::U32.is_signed());
        assert!(ScalarType::S64.is_signed());
        assert!(!ScalarType::Pred.is_integer());
    }

    #[test]
    fn address_space_round_trip() {
        for sp in [
            AddressSpace::Global,
            AddressSpace::Shared,
            AddressSpace::Local,
            AddressSpace::Param,
            AddressSpace::Const,
        ] {
            assert_eq!(AddressSpace::from_token(sp.token()).unwrap(), sp);
        }
        assert!(AddressSpace::from_token("generic").is_err());
    }
}
