//! Programmatic construction of kernels, as an alternative to the parser.

use crate::error::PtxError;
use crate::instruction::{CmpOp, Instruction, MulHalf, Opcode};
use crate::kernel::{BasicBlock, Kernel};
use crate::operand::{Address, Operand, RegId, SpecialReg};
use crate::types::{AddressSpace, ScalarType};
use crate::validate::validate_kernel;

/// Builder for assembling a [`Kernel`] in code.
///
/// ```
/// use dpvk_ptx::{KernelBuilder, ScalarType, AddressSpace, Operand, SpecialReg, Dim};
///
/// let mut b = KernelBuilder::new("scale");
/// let out = b.param("out", ScalarType::U64);
/// let tid = b.reg("tid", ScalarType::U32);
/// let addr = b.reg("addr", ScalarType::U64);
/// b.block("entry");
/// b.mov(tid, Operand::Special(SpecialReg::Tid(Dim::X)));
/// b.cvt(addr, ScalarType::U32, tid);
/// b.ld(ScalarType::U64, addr, AddressSpace::Param, dpvk_ptx::Address::param("out"));
/// b.ret();
/// let kernel = b.finish()?;
/// assert_eq!(kernel.name, "scale");
/// # let _ = out;
/// # Ok::<(), dpvk_ptx::PtxError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    kernel: Kernel,
    current: Option<BasicBlock>,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder { kernel: Kernel::new(name), current: None }
    }

    /// Declare a parameter; returns its buffer offset.
    pub fn param(&mut self, name: impl Into<String>, ty: ScalarType) -> usize {
        self.kernel.add_param(name, ty)
    }

    /// Declare a register.
    pub fn reg(&mut self, name: impl Into<String>, ty: ScalarType) -> RegId {
        let name = name.into();
        self.kernel.add_register(format!("%{name}"), ty)
    }

    /// Declare a `.shared` or `.local` array; returns its space offset.
    pub fn var(
        &mut self,
        name: impl Into<String>,
        ty: ScalarType,
        len: usize,
        space: AddressSpace,
    ) -> usize {
        self.kernel.add_var(name, ty, len, space)
    }

    /// Open a new basic block; the previous block (if any) is sealed.
    pub fn block(&mut self, label: impl Into<String>) {
        if let Some(b) = self.current.take() {
            self.kernel.add_block(b);
        }
        self.current = Some(BasicBlock::new(label));
    }

    /// Append a raw instruction to the open block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been opened.
    pub fn push(&mut self, inst: Instruction) {
        self.current
            .as_mut()
            .expect("open a block with `block()` before appending instructions")
            .instructions
            .push(inst);
    }

    fn ty_of(&self, r: RegId) -> ScalarType {
        self.kernel.reg_type(r)
    }

    /// `mov` into `dst`.
    pub fn mov(&mut self, dst: RegId, src: impl Into<Operand>) {
        let ty = self.ty_of(dst);
        self.push(Instruction::new(Opcode::Mov, ty, Some(dst), vec![src.into()]));
    }

    /// Binary operation typed by the destination register.
    pub fn binary(
        &mut self,
        opcode: Opcode,
        dst: RegId,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        let ty = self.ty_of(dst);
        self.push(Instruction::new(opcode, ty, Some(dst), vec![a.into(), b.into()]));
    }

    /// `add` typed by the destination register.
    pub fn add(&mut self, dst: RegId, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.binary(Opcode::Add, dst, a, b);
    }

    /// `sub` typed by the destination register.
    pub fn sub(&mut self, dst: RegId, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.binary(Opcode::Sub, dst, a, b);
    }

    /// `mul.lo` typed by the destination register.
    pub fn mul(&mut self, dst: RegId, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.binary(Opcode::Mul(MulHalf::Lo), dst, a, b);
    }

    /// `mad.lo d, a, b, c` typed by the destination register.
    pub fn mad(
        &mut self,
        dst: RegId,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        let ty = self.ty_of(dst);
        self.push(Instruction::new(Opcode::Mad, ty, Some(dst), vec![a.into(), b.into(), c.into()]));
    }

    /// `fma.rn d, a, b, c` typed by the destination register.
    pub fn fma(
        &mut self,
        dst: RegId,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        let ty = self.ty_of(dst);
        self.push(Instruction::new(Opcode::Fma, ty, Some(dst), vec![a.into(), b.into(), c.into()]));
    }

    /// `setp.<cmp>` typed by operand `a`'s register type.
    pub fn setp(&mut self, cmp: CmpOp, dst: RegId, a: RegId, b: impl Into<Operand>) {
        let ty = self.ty_of(a);
        self.push(Instruction::new(
            Opcode::Setp(cmp),
            ty,
            Some(dst),
            vec![Operand::Reg(a), b.into()],
        ));
    }

    /// `selp d, a, b, p` typed by the destination register.
    pub fn selp(&mut self, dst: RegId, a: impl Into<Operand>, b: impl Into<Operand>, pred: RegId) {
        let ty = self.ty_of(dst);
        self.push(Instruction::new(
            Opcode::Selp,
            ty,
            Some(dst),
            vec![a.into(), b.into(), Operand::Reg(pred)],
        ));
    }

    /// `cvt.<dst_ty>.<from>` where the destination type is the register's.
    pub fn cvt(&mut self, dst: RegId, from: ScalarType, src: RegId) {
        let ty = self.ty_of(dst);
        self.push(Instruction::new(Opcode::Cvt(from), ty, Some(dst), vec![Operand::Reg(src)]));
    }

    /// Load of the given type from `space` at `addr`.
    pub fn ld(&mut self, ty: ScalarType, dst: RegId, space: AddressSpace, addr: Address) {
        self.push(Instruction::new(Opcode::Ld(space), ty, Some(dst), vec![Operand::Addr(addr)]));
    }

    /// Store of the given type to `space` at `addr`.
    pub fn st(&mut self, ty: ScalarType, space: AddressSpace, addr: Address, value: RegId) {
        self.push(Instruction::new(
            Opcode::St(space),
            ty,
            None,
            vec![Operand::Addr(addr), Operand::Reg(value)],
        ));
    }

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: impl Into<String>) {
        self.push(Instruction::new(Opcode::Bra(label.into()), ScalarType::Pred, None, vec![]));
    }

    /// Branch to `label` when `pred` (optionally negated) holds.
    pub fn bra_if(&mut self, pred: RegId, negated: bool, label: impl Into<String>) {
        self.push(
            Instruction::new(Opcode::Bra(label.into()), ScalarType::Pred, None, vec![])
                .with_guard(pred, negated),
        );
    }

    /// CTA-wide barrier.
    pub fn bar(&mut self) {
        self.push(Instruction::new(Opcode::Bar, ScalarType::Pred, None, vec![]));
    }

    /// Return from the kernel.
    pub fn ret(&mut self) {
        self.push(Instruction::new(Opcode::Ret, ScalarType::Pred, None, vec![]));
    }

    /// Read a special register into `dst`.
    pub fn special(&mut self, dst: RegId, sr: SpecialReg) {
        self.mov(dst, Operand::Special(sr));
    }

    /// Seal the last block, validate, and return the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first validation error (see
    /// [`validate_kernel`](crate::validate_kernel)).
    pub fn finish(mut self) -> Result<Kernel, PtxError> {
        if let Some(b) = self.current.take() {
            self.kernel.add_block(b);
        }
        validate_kernel(&self.kernel)?;
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Dim;

    #[test]
    fn builds_a_valid_kernel() {
        let mut b = KernelBuilder::new("k");
        b.param("n", ScalarType::U32);
        let tid = b.reg("tid", ScalarType::U32);
        let n = b.reg("n", ScalarType::U32);
        let p = b.reg("p", ScalarType::Pred);
        b.block("entry");
        b.special(tid, SpecialReg::Tid(Dim::X));
        b.ld(ScalarType::U32, n, AddressSpace::Param, Address::param("n"));
        b.setp(CmpOp::Ge, p, tid, Operand::Reg(n));
        b.bra_if(p, false, "done");
        b.block("body");
        b.add(tid, Operand::Reg(tid), Operand::Imm(1));
        b.block("done");
        b.ret();
        let k = b.finish().unwrap();
        assert_eq!(k.blocks.len(), 3);
        assert_eq!(k.registers.len(), 3);
    }

    #[test]
    fn finish_rejects_invalid_kernel() {
        let mut b = KernelBuilder::new("k");
        let r = b.reg("r", ScalarType::U32);
        b.block("entry");
        b.add(r, Operand::Reg(r), Operand::Imm(1));
        // No terminator: validation must fail.
        assert!(b.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "open a block")]
    fn push_without_block_panics() {
        let mut b = KernelBuilder::new("k");
        b.ret();
    }
}
