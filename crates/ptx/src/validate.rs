//! Semantic validation of parsed or programmatically built kernels.

use crate::error::PtxError;
use crate::instruction::{AtomOp, Instruction, Opcode};
use crate::kernel::Kernel;
use crate::operand::{Address, AddressBase, Operand};
use crate::types::{AddressSpace, ScalarType};

/// Validate a kernel: block structure, operand arity, and type consistency.
///
/// Types are checked with bit-compatibility semantics: a register may be
/// used at any type of the same width (as in PTX's `.bN` types), but
/// predicates only unify with predicates.
///
/// # Errors
///
/// Returns [`PtxError::Validation`] describing the first problem found.
pub fn validate_kernel(kernel: &Kernel) -> Result<(), PtxError> {
    let fail = |message: String| -> PtxError {
        PtxError::Validation { kernel: kernel.name.clone(), message }
    };
    if kernel.blocks.is_empty() {
        return Err(fail("kernel has no basic blocks".into()));
    }
    // The final block must not fall off the end.
    let last = kernel.blocks.last().expect("non-empty checked above");
    if last.terminator().is_none() {
        return Err(fail(format!("final block `{}` does not end in a terminator", last.label)));
    }
    // Unique labels.
    for (i, b) in kernel.blocks.iter().enumerate() {
        for other in &kernel.blocks[i + 1..] {
            if b.label == other.label {
                return Err(fail(format!("duplicate block label `{}`", b.label)));
            }
        }
    }
    for b in &kernel.blocks {
        for (pos, inst) in b.instructions.iter().enumerate() {
            let is_last = pos + 1 == b.instructions.len();
            if inst.opcode.is_terminator() && !is_last {
                return Err(fail(format!(
                    "terminator `{}` in the middle of block `{}`",
                    inst.opcode.mnemonic(),
                    b.label
                )));
            }
            validate_instruction(kernel, inst)
                .map_err(|m| fail(format!("in block `{}`: {m}: `{inst}`", b.label)))?;
        }
    }
    Ok(())
}

fn compatible(reg: ScalarType, at: ScalarType) -> bool {
    if reg == ScalarType::Pred || at == ScalarType::Pred {
        return reg == at;
    }
    reg.size_bytes() == at.size_bytes()
}

fn validate_instruction(kernel: &Kernel, inst: &Instruction) -> Result<(), String> {
    // Guard must be a predicate register.
    if let Some(g) = inst.guard {
        if kernel.reg_type(g.pred) != ScalarType::Pred {
            return Err(format!("guard register {} is not a predicate", g.pred));
        }
    }
    let check_reg = |op: &Operand, at: ScalarType, what: &str| -> Result<(), String> {
        match op {
            Operand::Reg(r) => {
                let rt = kernel.reg_type(*r);
                if !compatible(rt, at) {
                    return Err(format!(
                        "{what} register has type {rt}, incompatible with operation type {at}"
                    ));
                }
                Ok(())
            }
            Operand::Imm(_) | Operand::ImmF(_) | Operand::Special(_) => Ok(()),
            Operand::Addr(_) => Err(format!("{what} may not be an address")),
            Operand::Sym(_) => Err(format!("{what} may not be an address-of symbol")),
        }
    };
    let check_dst = |at: ScalarType| -> Result<(), String> {
        let d = inst.dst.ok_or_else(|| "missing destination".to_string())?;
        let rt = kernel.reg_type(d);
        if !compatible(rt, at) {
            return Err(format!("destination register has type {rt}, incompatible with {at}"));
        }
        Ok(())
    };
    let arity = |n: usize| -> Result<(), String> {
        if inst.srcs.len() != n {
            return Err(format!("expected {n} source operands, found {}", inst.srcs.len()));
        }
        Ok(())
    };
    let check_addr = |op: &Operand, space: AddressSpace| -> Result<(), String> {
        let Operand::Addr(Address { base, .. }) = op else {
            return Err("memory operand must be an address".to_string());
        };
        match base {
            AddressBase::Reg(r) => {
                let rt = kernel.reg_type(*r);
                if !rt.is_integer() || rt.size_bytes() < 4 {
                    return Err(format!("address register has non-address type {rt}"));
                }
                Ok(())
            }
            AddressBase::Param(p) => {
                if space != AddressSpace::Param {
                    return Err(format!("parameter `{p}` addressed outside the .param space"));
                }
                kernel.param(p).map(|_| ()).ok_or_else(|| format!("unknown parameter `{p}`"))
            }
            AddressBase::Var(v) => {
                let var = kernel.var(v).ok_or_else(|| format!("unknown variable `{v}`"))?;
                if var.space != space {
                    return Err(format!(
                        "variable `{v}` lives in .{} but is addressed as .{}",
                        var.space, space
                    ));
                }
                Ok(())
            }
            AddressBase::Absolute => Ok(()),
        }
    };

    use Opcode::*;
    match &inst.opcode {
        Add | Sub | Mul(_) | Div | Rem | Min | Max | And | Or | Xor => {
            arity(2)?;
            check_dst(inst.ty)?;
            check_reg(&inst.srcs[0], inst.ty, "first source")?;
            check_reg(&inst.srcs[1], inst.ty, "second source")?;
            if matches!(inst.opcode, Rem) && inst.ty.is_float() {
                return Err("rem is not defined on floating-point types".into());
            }
            Ok(())
        }
        Shl | Shr => {
            arity(2)?;
            check_dst(inst.ty)?;
            check_reg(&inst.srcs[0], inst.ty, "first source")?;
            // Shift amounts are u32 in PTX.
            check_reg(&inst.srcs[1], ScalarType::U32, "shift amount")
        }
        Mad | Fma => {
            arity(3)?;
            check_dst(inst.ty)?;
            for (i, s) in inst.srcs.iter().enumerate() {
                check_reg(s, inst.ty, &format!("source {i}"))?;
            }
            if matches!(inst.opcode, Fma) && !inst.ty.is_float() {
                return Err("fma requires a floating-point type".into());
            }
            Ok(())
        }
        Abs | Neg | Not | Sqrt | Rsqrt | Rcp | Sin | Cos | Ex2 | Lg2 | Mov => {
            arity(1)?;
            check_dst(inst.ty)?;
            if let (Mov, Operand::Sym(name)) = (&inst.opcode, &inst.srcs[0]) {
                // Address-of: the destination must be an address-sized
                // integer and the variable must exist.
                kernel.var(name).ok_or_else(|| format!("unknown variable `{name}`"))?;
                if !inst.ty.is_integer() || inst.ty.size_bytes() < 4 {
                    return Err("address-of requires an integer destination".into());
                }
                return Ok(());
            }
            check_reg(&inst.srcs[0], inst.ty, "source")?;
            if matches!(inst.opcode, Sqrt | Rsqrt | Rcp | Sin | Cos | Ex2 | Lg2)
                && !inst.ty.is_float()
            {
                return Err(format!("{} requires a floating-point type", inst.opcode.mnemonic()));
            }
            Ok(())
        }
        Setp(_) => {
            arity(2)?;
            check_dst(ScalarType::Pred)?;
            check_reg(&inst.srcs[0], inst.ty, "first source")?;
            check_reg(&inst.srcs[1], inst.ty, "second source")
        }
        Selp => {
            arity(3)?;
            check_dst(inst.ty)?;
            check_reg(&inst.srcs[0], inst.ty, "first source")?;
            check_reg(&inst.srcs[1], inst.ty, "second source")?;
            check_reg(&inst.srcs[2], ScalarType::Pred, "condition")
        }
        Cvt(from) => {
            arity(1)?;
            check_dst(inst.ty)?;
            check_reg(&inst.srcs[0], *from, "source")
        }
        Ld(space) => {
            arity(1)?;
            check_dst(inst.ty)?;
            check_addr(&inst.srcs[0], *space)
        }
        St(space) => {
            arity(2)?;
            if inst.dst.is_some() {
                return Err("store must not have a destination".into());
            }
            if matches!(space, AddressSpace::Param | AddressSpace::Const) {
                return Err(format!("stores to the .{space} space are not allowed"));
            }
            check_addr(&inst.srcs[0], *space)?;
            check_reg(&inst.srcs[1], inst.ty, "stored value")
        }
        Atom(space, op) => {
            let n = if matches!(op, AtomOp::Cas) { 3 } else { 2 };
            arity(n)?;
            check_dst(inst.ty)?;
            if matches!(space, AddressSpace::Param | AddressSpace::Const) {
                return Err(format!("atomics in the .{space} space are not allowed"));
            }
            check_addr(&inst.srcs[0], *space)?;
            for s in &inst.srcs[1..] {
                check_reg(s, inst.ty, "atomic operand")?;
            }
            Ok(())
        }
        Vote(_) => {
            arity(1)?;
            check_dst(ScalarType::Pred)?;
            check_reg(&inst.srcs[0], ScalarType::Pred, "source")
        }
        Bra(_) | Bar | Ret | Exit => {
            if !inst.srcs.is_empty() || inst.dst.is_some() {
                return Err("control instruction takes no operands".into());
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn ok(src: &str) {
        let k = parse_kernel(src).unwrap();
        validate_kernel(&k).unwrap();
    }

    fn bad(src: &str) -> String {
        let k = parse_kernel(src).unwrap();
        validate_kernel(&k).unwrap_err().to_string()
    }

    #[test]
    fn accepts_well_typed_kernel() {
        ok(".kernel k (.param .u32 n) { .reg .u32 %r<3>; .reg .pred %p<2>; \
            entry: ld.param.u32 %r1, [n]; setp.lt.u32 %p1, %r1, 4; \
            @%p1 bra out; add.u32 %r2, %r1, 1; out: ret; }");
    }

    #[test]
    fn rejects_fallthrough_off_the_end() {
        let m = bad(".kernel k () { .reg .u32 %r<2>; entry: add.u32 %r1, %r1, 1; }");
        assert!(m.contains("terminator"), "{m}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let m = bad(".kernel k () { .reg .u32 %r<2>; .reg .f64 %d<2>; \
                     entry: add.f64 %d1, %r1, %r1; ret; }");
        assert!(m.contains("incompatible"), "{m}");
    }

    #[test]
    fn accepts_bitcompatible_types() {
        // f32 and u32 are both 4 bytes: mov.b32-style reuse is allowed.
        ok(".kernel k () { .reg .f32 %f<2>; entry: mov.b32 %f1, %f0; ret; }");
    }

    #[test]
    fn rejects_float_rem() {
        let m = bad(".kernel k () { .reg .f32 %f<3>; entry: rem.f32 %f2, %f0, %f1; ret; }");
        assert!(m.contains("rem"), "{m}");
    }

    #[test]
    fn rejects_store_to_param() {
        let m = bad(".kernel k (.param .u32 n) { .reg .u32 %r<2>; \
                     entry: st.param.u32 [n], %r1; ret; }");
        assert!(m.contains("param"), "{m}");
    }

    #[test]
    fn rejects_wrong_space_variable() {
        let m = bad(".kernel k () { .shared .f32 tile[4]; .reg .f32 %f<2>; \
                     entry: ld.local.f32 %f1, [tile]; ret; }");
        assert!(m.contains("tile"), "{m}");
    }

    #[test]
    fn rejects_integer_sin() {
        let m = bad(".kernel k () { .reg .u32 %r<2>; entry: sin.u32 %r1, %r0; ret; }");
        assert!(m.contains("floating-point"), "{m}");
    }

    #[test]
    fn rejects_non_pred_guard_via_types() {
        // Guards can only reference declared pred registers per the parser,
        // but a builder could construct one; simulate via selp condition.
        let m = bad(".kernel k () { .reg .f32 %f<3>; .reg .u32 %r<2>; \
                     entry: selp.f32 %f2, %f0, %f1, %r1; ret; }");
        assert!(m.contains("condition"), "{m}");
    }

    #[test]
    fn rejects_mid_block_terminator_via_builder() {
        use crate::instruction::{Instruction, Opcode};
        use crate::kernel::{BasicBlock, Kernel};
        let mut k = Kernel::new("k");
        let mut b = BasicBlock::new("entry");
        b.instructions.push(Instruction::new(Opcode::Ret, ScalarType::Pred, None, vec![]));
        b.instructions.push(Instruction::new(Opcode::Ret, ScalarType::Pred, None, vec![]));
        k.add_block(b);
        let m = validate_kernel(&k).unwrap_err().to_string();
        assert!(m.contains("middle"), "{m}");
    }

    #[test]
    fn rejects_duplicate_labels() {
        use crate::instruction::{Instruction, Opcode};
        use crate::kernel::{BasicBlock, Kernel};
        let mut k = Kernel::new("k");
        k.add_block(BasicBlock::new("a"));
        let mut b = BasicBlock::new("a");
        b.instructions.push(Instruction::new(Opcode::Ret, ScalarType::Pred, None, vec![]));
        k.add_block(b);
        let m = validate_kernel(&k).unwrap_err().to_string();
        assert!(m.contains("duplicate"), "{m}");
    }
}
