//! Robustness tests for the front end: the parser must reject malformed
//! input with errors (never panic), and accept the full documented
//! surface.

use dpvk_ptx::{parse_kernel, parse_module, tokenize, validate_kernel, PtxError};

/// Seeded SplitMix64 so the fuzz-style cases below are deterministic
/// without an external property-testing dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[test]
fn rejects_truncations_gracefully() {
    let src = r#"
.kernel k (.param .u64 p, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [n];
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra done;
  add.u32 %r1, %r1, 1;
done:
  ret;
}
"#;
    // Every prefix of the source must produce an error, not a panic.
    for end in 0..src.len() {
        if !src.is_char_boundary(end) {
            continue;
        }
        let prefix = &src[..end];
        let _ = parse_module(prefix); // must not panic
    }
    parse_kernel(src).unwrap();
}

#[test]
fn error_cases_name_the_problem() {
    let cases: Vec<(&str, &str)> = vec![
        (".kernel k () { entry: add.u32 %r1, %r1, 1; ret; }", "undeclared register"),
        (".kernel k () { entry: bra nowhere; }", "undefined label"),
        (".kernel k () { .reg .u128 %r<2>; entry: ret; }", "unknown type"),
        (".kernel k () { entry: frobnicate.u32 %r1; ret; }", "unknown"),
        (".kernel k (.param .u32 n) { .reg .u32 %r<2>; entry: ld.param.u32 %r1, [m]; ret; }", "m"),
    ];
    for (src, needle) in cases {
        let err = parse_kernel(src).expect_err(src);
        let msg = err.to_string().to_lowercase();
        assert!(
            msg.contains(&needle.to_lowercase()),
            "error `{msg}` should mention `{needle}` for {src}"
        );
    }
}

#[test]
fn full_surface_parses_and_validates() {
    // One kernel exercising every opcode family the ISA documents.
    let src = r#"
.kernel surface (.param .u64 p, .param .f32 alpha, .param .u32 n,
                 .param .f64 beta, .param .s32 signed_n) {
  .shared .f32 tile[16];
  .local .u32 scratch[8];
  .reg .u32 %r<10>;
  .reg .s32 %s<4>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<8>;
  .reg .f64 %d<4>;
  .reg .pred %p<6>;
entry:
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, %tid.y;
  mov.u32 %r2, %ctaid.z;
  mov.u32 %r3, %laneid;
  mov.u32 %r4, %warpsize;
  mad.lo.u32 %r5, %r0, %r1, %r2;
  mul.hi.u32 %r6, %r5, %r5;
  div.u32 %r6, %r6, 7;
  rem.u32 %r6, %r6, 5;
  min.u32 %r6, %r6, %r5;
  max.u32 %r6, %r6, %r0;
  and.b32 %r7, %r6, 255;
  or.b32 %r7, %r7, 1;
  xor.b32 %r7, %r7, %r5;
  not.b32 %r7, %r7;
  shl.u32 %r7, %r7, 2;
  shr.u32 %r7, %r7, 1;
  shr.s32 %s0, %s1, 3;
  abs.s32 %s2, %s0;
  neg.s32 %s3, %s2;
  cvt.u64.u32 %rd0, %r7;
  cvt.f32.u32 %f0, %r7;
  cvt.f64.f32 %d0, %f0;
  cvt.u32.f32 %r8, %f0;
  ld.param.f32 %f1, [alpha];
  ld.param.f64 %d1, [beta];
  add.f32 %f2, %f0, %f1;
  sub.f32 %f2, %f2, 1.5;
  mul.f32 %f2, %f2, %f2;
  div.rn.f32 %f2, %f2, 3.0;
  fma.rn.f32 %f3, %f0, %f1, %f2;
  sqrt.rn.f32 %f4, %f3;
  rsqrt.approx.f32 %f4, %f3;
  rcp.approx.f32 %f4, %f3;
  sin.approx.f32 %f5, %f4;
  cos.approx.f32 %f5, %f4;
  ex2.approx.f32 %f5, %f4;
  lg2.approx.f32 %f5, %f3;
  add.f64 %d2, %d0, %d1;
  setp.lt.f32 %p0, %f5, 0.0;
  selp.f32 %f6, %f5, %f4, %p0;
  setp.eq.u32 %p1, %r0, 0;
  vote.all.pred %p2, %p1;
  vote.any.pred %p3, %p1;
  vote.uni.pred %p4, %p1;
  and.pred %p2, %p2, %p3;
  or.pred %p2, %p2, %p4;
  xor.pred %p2, %p2, %p1;
  not.pred %p2, %p2;
  mov.u64 %rd1, tile;
  st.shared.f32 [%rd1+4], %f6;
  ld.shared.f32 %f7, [tile+4];
  mov.u64 %rd2, scratch;
  st.local.u32 [%rd2], %r7;
  ld.local.u32 %r9, [scratch];
  ld.param.u64 %rd3, [p];
  atom.global.add.u32 %r9, [%rd3], %r9;
  atom.global.cas.u32 %r9, [%rd3+8], %r9, %r0;
  atom.global.exch.u32 %r9, [%rd3+16], %r0;
  atom.global.min.s32 %s0, [%rd3+24], %s1;
  atom.global.max.u32 %r9, [%rd3+32], %r0;
  st.global.f32 [%rd3+36], %f7;
  bar.sync 0;
  setp.lt.u32 %p5, %r0, 1;
  @!%p5 bra done;
  st.global.f64 [%rd3+40], %d2;
done:
  ret;
}
"#;
    let k = parse_kernel(src).unwrap();
    validate_kernel(&k).unwrap();
    // It also survives a print/parse round trip.
    let printed = dpvk_ptx::print_kernel(&k);
    let k2 = parse_kernel(&printed).unwrap();
    validate_kernel(&k2).unwrap();
}

/// The lexer never panics on arbitrary input.
#[test]
fn lexer_total_on_arbitrary_bytes() {
    let mut rng = Rng(0x1e8e_5b17);
    for _ in 0..256 {
        let len = rng.below(200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let s = String::from_utf8_lossy(&bytes);
        let _ = tokenize(&s);
    }
}

/// The parser never panics on arbitrary token-ish input.
#[test]
fn parser_total_on_arbitrary_input() {
    let mut rng = Rng(0x9a55_e12b);
    for _ in 0..256 {
        let len = rng.below(200) as usize;
        let s: String = (0..len)
            .map(|_| {
                if rng.below(16) == 0 {
                    '\n'
                } else {
                    // Printable ASCII, ' ' ..= '~'.
                    (b' ' + rng.below(95) as u8) as char
                }
            })
            .collect();
        let _ = parse_module(&s);
    }
}

/// Register-range declarations expand exactly.
#[test]
fn register_ranges_expand() {
    for count in 1u32..50 {
        let src = format!(".kernel k () {{ .reg .u32 %x<{count}>; entry: ret; }}");
        let k = parse_kernel(&src).unwrap();
        assert_eq!(k.registers.len(), count as usize);
    }
}

/// Integer immediates round-trip through parse → print → parse.
#[test]
fn immediates_round_trip() {
    let mut rng = Rng(0x1111_0000);
    let mut values = vec![0i32, 1, -1, i32::MAX, i32::MIN, 42, -12345];
    values.extend((0..64).map(|_| rng.next() as i32));
    for v in values {
        let src = format!(".kernel k () {{ .reg .u32 %r<2>; entry: add.u32 %r1, %r0, {v}; ret; }}");
        let k1 = parse_kernel(&src).unwrap();
        let k2 = parse_kernel(&dpvk_ptx::print_kernel(&k1)).unwrap();
        assert_eq!(k1.blocks[0].instructions, k2.blocks[0].instructions, "value {v}");
    }
}

#[test]
fn module_with_duplicate_kernel_names_shadows() {
    let m = parse_module(".kernel a () { entry: ret; } .kernel a (.param .u32 x) { entry: ret; }")
        .unwrap();
    assert_eq!(m.kernel("a").unwrap().params.len(), 1);
}

#[test]
fn lex_error_type_is_stable() {
    match tokenize("добрый ?") {
        Err(PtxError::Lex { .. }) => {}
        other => panic!("expected lex error, got {other:?}"),
    }
}
