//! Scalar and vector types of the IR.

use std::fmt;

/// Scalar element kind. `I64` doubles as the pointer type; `I1` is the
/// boolean/predicate type produced by comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum STy {
    /// 1-bit boolean.
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer / pointer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl STy {
    /// Size in bytes when stored to memory (I1 stores as one byte).
    pub fn size_bytes(self) -> usize {
        match self {
            STy::I1 | STy::I8 => 1,
            STy::I16 => 2,
            STy::I32 | STy::F32 => 4,
            STy::I64 | STy::F64 => 8,
        }
    }

    /// Whether the kind is floating point.
    pub fn is_float(self) -> bool {
        matches!(self, STy::F32 | STy::F64)
    }

    /// Whether the kind is an integer (including `I1`).
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Bit width of the integer kinds (1, 8, 16, 32, 64); floats report
    /// their storage width.
    pub fn bits(self) -> u32 {
        match self {
            STy::I1 => 1,
            STy::I8 => 8,
            STy::I16 => 16,
            STy::I32 | STy::F32 => 32,
            STy::I64 | STy::F64 => 64,
        }
    }
}

impl fmt::Display for STy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            STy::I1 => "i1",
            STy::I8 => "i8",
            STy::I16 => "i16",
            STy::I32 => "i32",
            STy::I64 => "i64",
            STy::F32 => "f32",
            STy::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A possibly-vector type: `width` lanes of `scalar`. Width 1 is scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Type {
    /// Element kind.
    pub scalar: STy,
    /// Lane count; 1 for scalars.
    pub width: u32,
}

impl Type {
    /// A scalar type.
    pub const fn scalar(scalar: STy) -> Self {
        Type { scalar, width: 1 }
    }

    /// A vector type of `width` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn vector(scalar: STy, width: u32) -> Self {
        assert!(width > 0, "vector width must be positive");
        Type { scalar, width }
    }

    /// Whether this is a vector (width > 1).
    pub fn is_vector(self) -> bool {
        self.width > 1
    }

    /// The same element kind at scalar width.
    pub fn element(self) -> Type {
        Type::scalar(self.scalar)
    }

    /// The same element kind at the given width.
    pub fn with_width(self, width: u32) -> Type {
        Type { scalar: self.scalar, width }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 1 {
            write!(f, "{}", self.scalar)
        } else {
            write!(f, "<{} x {}>", self.width, self.scalar)
        }
    }
}

impl From<STy> for Type {
    fn from(s: STy) -> Self {
        Type::scalar(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Type::scalar(STy::F32).to_string(), "f32");
        assert_eq!(Type::vector(STy::I32, 4).to_string(), "<4 x i32>");
    }

    #[test]
    fn widths() {
        let t = Type::vector(STy::F32, 4);
        assert!(t.is_vector());
        assert_eq!(t.element(), Type::scalar(STy::F32));
        assert_eq!(t.with_width(2).width, 2);
        assert!(!Type::scalar(STy::I1).is_vector());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        Type::vector(STy::I32, 0);
    }

    #[test]
    fn sizes_and_kinds() {
        assert_eq!(STy::I1.size_bytes(), 1);
        assert_eq!(STy::F64.size_bytes(), 8);
        assert!(STy::F32.is_float());
        assert!(STy::I64.is_int());
        assert_eq!(STy::I1.bits(), 1);
    }
}
