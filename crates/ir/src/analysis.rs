//! Data-flow analyses over IR functions: liveness and def-use counts.

use std::collections::HashSet;

use crate::function::Function;
use crate::inst::BlockId;
use crate::value::VReg;

/// Per-block register liveness for an IR function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<HashSet<VReg>>,
    /// Registers live on exit from each block.
    pub live_out: Vec<HashSet<VReg>>,
}

impl Liveness {
    /// Compute liveness with the standard backward iteration.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut gen_set: Vec<HashSet<VReg>> = Vec::with_capacity(n);
        let mut kill: Vec<HashSet<VReg>> = Vec::with_capacity(n);
        for b in &f.blocks {
            let mut g = HashSet::new();
            let mut k = HashSet::new();
            for inst in &b.insts {
                for v in inst.uses() {
                    if let Some(r) = v.as_reg() {
                        if !k.contains(&r) {
                            g.insert(r);
                        }
                    }
                }
                if let Some(d) = inst.dst() {
                    k.insert(d);
                }
            }
            for v in b.term.uses() {
                if let Some(r) = v.as_reg() {
                    if !k.contains(&r) {
                        g.insert(r);
                    }
                }
            }
            gen_set.push(g);
            kill.push(k);
        }
        let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = HashSet::new();
                for s in f.blocks[i].term.successors() {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<VReg> = gen_set[i].clone();
                for &r in &out {
                    if !kill[i].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`, sorted for deterministic iteration.
    pub fn live_in_sorted(&self, b: BlockId) -> Vec<VReg> {
        let mut v: Vec<VReg> = self.live_in[b.index()].iter().copied().collect();
        v.sort();
        v
    }
}

/// Number of uses of each register across the whole function (including
/// terminators).
pub fn use_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.regs.len()];
    for b in &f.blocks {
        for inst in &b.insts {
            for v in inst.uses() {
                if let Some(r) = v.as_reg() {
                    counts[r.index()] += 1;
                }
            }
        }
        for v in b.term.uses() {
            if let Some(r) = v.as_reg() {
                counts[r.index()] += 1;
            }
        }
    }
    counts
}

/// Maximum number of simultaneously live *vector* registers anywhere in
/// the function, computed per instruction point. The machine model uses
/// this to estimate register pressure (the paper's Table 1 shows the
/// width-8 collapse caused by exceeding the architectural register file).
pub fn max_live_vector_regs(f: &Function) -> usize {
    let lv = Liveness::compute(f);
    let is_vec = |r: VReg| f.reg_type(r).is_vector();
    let mut max = 0usize;
    for (i, b) in f.blocks.iter().enumerate() {
        // Walk backwards from live-out.
        let mut live: HashSet<VReg> =
            lv.live_out[i].iter().copied().filter(|&r| is_vec(r)).collect();
        max = max.max(live.len());
        for inst in b.insts.iter().rev() {
            if let Some(d) = inst.dst() {
                live.remove(&d);
            }
            for v in inst.uses() {
                if let Some(r) = v.as_reg() {
                    if is_vec(r) {
                        live.insert(r);
                    }
                }
            }
            max = max.max(live.len());
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{BinOp, Inst, Term};
    use crate::types::{STy, Type};
    use crate::value::Value;

    fn straightline() -> Function {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let b = f.new_reg(Type::scalar(STy::I32));
        let c = f.new_reg(Type::scalar(STy::I32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Mov { ty: Type::scalar(STy::I32), dst: a, a: Value::ImmI(1) });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: b,
            a: Value::Reg(a),
            b: Value::ImmI(2),
        });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: c,
            a: Value::Reg(b),
            b: Value::Reg(a),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        f
    }

    #[test]
    fn straightline_has_empty_boundary_liveness() {
        let f = straightline();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in[0].is_empty());
        assert!(lv.live_out[0].is_empty());
    }

    #[test]
    fn use_counts_count_all_uses() {
        let f = straightline();
        let counts = use_counts(&f);
        assert_eq!(counts[0], 2); // a used twice
        assert_eq!(counts[1], 1); // b used once
        assert_eq!(counts[2], 0); // c never used
    }

    #[test]
    fn loop_keeps_carried_register_live() {
        let mut f = Function::new("t", 1);
        let i = f.new_reg(Type::scalar(STy::I32));
        let p = f.new_reg(Type::scalar(STy::I1));
        let mut entry = Block::new("entry");
        entry.insts.push(Inst::Mov { ty: Type::scalar(STy::I32), dst: i, a: Value::ImmI(0) });
        let mut head = Block::new("head");
        head.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: i,
            a: Value::Reg(i),
            b: Value::ImmI(1),
        });
        head.insts.push(Inst::Cmp {
            pred: crate::CmpPred::Lt,
            ty: Type::scalar(STy::I32),
            signed: true,
            dst: p,
            a: Value::Reg(i),
            b: Value::ImmI(10),
        });
        let e = f.add_block(entry);
        let h_placeholder = Block::new("placeholder");
        let h = f.add_block(h_placeholder);
        let mut done = Block::new("done");
        done.term = Term::Ret;
        let d = f.add_block(done);
        head.term = Term::CondBr { cond: Value::Reg(p), taken: h, fall: d };
        f.blocks[h.index()] = head;
        f.block_mut(e).term = Term::Br(h);

        let lv = Liveness::compute(&f);
        assert!(lv.live_in[h.index()].contains(&i));
        assert!(!lv.live_in[e.index()].contains(&i));
    }

    #[test]
    fn max_live_vectors_counts_only_vectors() {
        let mut f = Function::new("t", 4);
        let v1 = f.new_reg(Type::vector(STy::F32, 4));
        let v2 = f.new_reg(Type::vector(STy::F32, 4));
        let s = f.new_reg(Type::scalar(STy::F32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Splat { ty: Type::vector(STy::F32, 4), dst: v1, a: Value::ImmF(1.0) });
        blk.insts.push(Inst::Splat { ty: Type::vector(STy::F32, 4), dst: v2, a: Value::ImmF(2.0) });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::vector(STy::F32, 4),
            signed: false,
            dst: v1,
            a: Value::Reg(v1),
            b: Value::Reg(v2),
        });
        blk.insts.push(Inst::Extract {
            ty: Type::vector(STy::F32, 4),
            dst: s,
            vec: Value::Reg(v1),
            lane: 0,
        });
        blk.insts.push(Inst::Store {
            ty: STy::F32,
            space: crate::Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(s),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(max_live_vector_regs(&f), 2);
    }
}
