//! Optimization passes over IR functions.
//!
//! The dynamic translation cache runs [`standard_pipeline`] after
//! vectorization, mirroring the paper's use of LLVM's optimizer
//! ("traditional compiler optimizations such as basic block fusion and
//! common subexpression elimination", Section 5.1).

mod constfold;
mod cse;
mod dce;
mod fusion;

#[cfg(test)]
mod tests;

pub use constfold::const_fold;
pub use cse::local_cse;
pub use dce::dead_code_elimination;
pub use fusion::{fuse_blocks, remove_unreachable_blocks};

use crate::function::Function;

/// Statistics from one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
    /// Instructions replaced by common-subexpression elimination.
    pub cse_replaced: usize,
    /// Instructions folded to constants.
    pub folded: usize,
    /// Blocks merged by fusion.
    pub blocks_fused: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
}

impl OptStats {
    /// Sum of all instruction-level simplifications.
    pub fn total_simplifications(&self) -> usize {
        self.dce_removed + self.cse_replaced + self.folded
    }
}

/// Run the standard pipeline to a fixpoint (bounded):
/// constant folding → local CSE → DCE → block fusion.
pub fn standard_pipeline(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    // The passes interact (folding exposes CSE, CSE exposes DCE); iterate a
    // few rounds, stopping early when a round changes nothing.
    for _ in 0..4 {
        let folded = {
            let _p = dpvk_trace::phase(&f.name, "opt:const_fold");
            const_fold(f)
        };
        let replaced = {
            let _p = dpvk_trace::phase(&f.name, "opt:cse");
            local_cse(f)
        };
        let removed = {
            let _p = dpvk_trace::phase(&f.name, "opt:dce");
            dead_code_elimination(f)
        };
        stats.folded += folded;
        stats.cse_replaced += replaced;
        stats.dce_removed += removed;
        if folded + replaced + removed == 0 {
            break;
        }
    }
    {
        let _p = dpvk_trace::phase(&f.name, "opt:fusion");
        stats.blocks_fused = fuse_blocks(f);
        stats.blocks_removed = remove_unreachable_blocks(f);
    }
    stats
}
