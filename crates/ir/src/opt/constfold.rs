//! Block-local constant propagation and folding.

use std::collections::HashMap;

use crate::function::Function;
use crate::inst::{BinOp, CmpPred, Inst, UnOp};
use crate::types::{STy, Type};
use crate::value::{VReg, Value};

/// Propagate constants within each block and fold instructions whose
/// operands are all constants into `Mov` of an immediate. Returns the
/// number of instructions folded or operands substituted.
///
/// The analysis is block-local, which is sound without SSA form: a
/// register's constant binding is invalidated by any redefinition.
pub fn const_fold(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in &mut f.blocks {
        let mut env: HashMap<VReg, Value> = HashMap::new();
        for inst in &mut b.insts {
            // Substitute known-constant registers into operands.
            inst.map_uses(|v| {
                if let Value::Reg(r) = v {
                    if let Some(c) = env.get(r) {
                        *v = *c;
                        changed += 1;
                    }
                }
            });
            // Try to fold.
            if let Some((dst, folded)) = fold(inst) {
                let ty = match inst {
                    Inst::Bin { ty, .. }
                    | Inst::Un { ty, .. }
                    | Inst::Select { ty, .. }
                    | Inst::Mov { ty, .. } => *ty,
                    Inst::Cmp { ty, .. } => Type { scalar: STy::I1, width: ty.width },
                    Inst::Cvt { to, width, .. } => Type { scalar: *to, width: *width },
                    _ => Type::scalar(STy::I64),
                };
                if !ty.is_vector() {
                    *inst = Inst::Mov { ty, dst, a: folded };
                    changed += 1;
                }
            }
            // Update the environment.
            if let Some(d) = inst.dst() {
                match inst {
                    Inst::Mov { a, .. } if a.is_const() => {
                        env.insert(d, *a);
                    }
                    _ => {
                        env.remove(&d);
                    }
                }
            }
        }
        // Terminator operands.
        let term = &mut b.term;
        match term {
            crate::Term::CondBr { cond, .. } => {
                if let Value::Reg(r) = cond {
                    if let Some(c) = env.get(r) {
                        *cond = *c;
                        changed += 1;
                    }
                }
            }
            crate::Term::Switch { value, .. } => {
                if let Value::Reg(r) = value {
                    if let Some(c) = env.get(r) {
                        *value = *c;
                        changed += 1;
                    }
                }
            }
            _ => {}
        }
    }
    changed
}

fn as_i64(v: Value) -> Option<i64> {
    match v {
        Value::ImmI(x) => Some(x),
        _ => None,
    }
}

fn as_f64(v: Value) -> Option<f64> {
    match v {
        Value::ImmF(x) => Some(x),
        _ => None,
    }
}

/// Fold a single instruction with constant operands into `(dst, value)`.
fn fold(inst: &Inst) -> Option<(VReg, Value)> {
    match inst {
        Inst::Bin { op, ty, signed, dst, a, b } if ty.width == 1 => {
            if ty.scalar.is_float() {
                let (x, y) = (as_f64(*a)?, as_f64(*b)?);
                let r = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    _ => return None,
                };
                let r = if ty.scalar == STy::F32 { (r as f32) as f64 } else { r };
                Some((*dst, Value::ImmF(r)))
            } else {
                let (x, y) = (as_i64(*a)?, as_i64(*b)?);
                let bits = ty.scalar.bits();
                let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
                let r: i64 = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl(y as u32),
                    BinOp::Shr => {
                        if *signed {
                            x.wrapping_shr(y as u32)
                        } else {
                            ((x as u64 & mask).wrapping_shr(y as u32)) as i64
                        }
                    }
                    BinOp::Div => {
                        if y == 0 {
                            return None;
                        }
                        if *signed {
                            x.wrapping_div(y)
                        } else {
                            ((x as u64) / (y as u64)) as i64
                        }
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return None;
                        }
                        if *signed {
                            x.wrapping_rem(y)
                        } else {
                            ((x as u64) % (y as u64)) as i64
                        }
                    }
                    BinOp::Min => {
                        if *signed {
                            x.min(y)
                        } else {
                            ((x as u64).min(y as u64)) as i64
                        }
                    }
                    BinOp::Max => {
                        if *signed {
                            x.max(y)
                        } else {
                            ((x as u64).max(y as u64)) as i64
                        }
                    }
                    BinOp::MulHi => return None,
                };
                Some((*dst, Value::ImmI(r)))
            }
        }
        Inst::Un { op, ty, dst, a } if ty.width == 1 => {
            if ty.scalar.is_float() {
                let x = as_f64(*a)?;
                let r = match op {
                    UnOp::Neg => -x,
                    UnOp::Abs => x.abs(),
                    UnOp::Sqrt => x.sqrt(),
                    _ => return None,
                };
                Some((*dst, Value::ImmF(r)))
            } else {
                let x = as_i64(*a)?;
                let r = match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => {
                        if ty.scalar == STy::I1 {
                            (x == 0) as i64
                        } else {
                            !x
                        }
                    }
                    UnOp::Abs => x.wrapping_abs(),
                    _ => return None,
                };
                Some((*dst, Value::ImmI(r)))
            }
        }
        Inst::Cmp { pred, ty, signed, dst, a, b } if ty.width == 1 => {
            let r = if ty.scalar.is_float() {
                let (x, y) = (as_f64(*a)?, as_f64(*b)?);
                eval_cmp_f(*pred, x, y)
            } else if *signed {
                let (x, y) = (as_i64(*a)?, as_i64(*b)?);
                eval_cmp_i(*pred, x, y)
            } else {
                let (x, y) = (as_i64(*a)? as u64, as_i64(*b)? as u64);
                eval_cmp_u(*pred, x, y)
            };
            Some((*dst, Value::ImmI(r as i64)))
        }
        Inst::Select { ty, dst, cond, a, b } if ty.width == 1 => {
            let c = as_i64(*cond)?;
            if !a.is_const() || !b.is_const() {
                return None;
            }
            Some((*dst, if c != 0 { *a } else { *b }))
        }
        _ => None,
    }
}

fn eval_cmp_i(p: CmpPred, a: i64, b: i64) -> bool {
    match p {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Lt => a < b,
        CmpPred::Le => a <= b,
        CmpPred::Gt => a > b,
        CmpPred::Ge => a >= b,
    }
}

fn eval_cmp_u(p: CmpPred, a: u64, b: u64) -> bool {
    match p {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Lt => a < b,
        CmpPred::Le => a <= b,
        CmpPred::Gt => a > b,
        CmpPred::Ge => a >= b,
    }
}

fn eval_cmp_f(p: CmpPred, a: f64, b: f64) -> bool {
    match p {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Lt => a < b,
        CmpPred::Le => a <= b,
        CmpPred::Gt => a > b,
        CmpPred::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::Term;

    #[test]
    fn folds_constant_chain() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let b = f.new_reg(Type::scalar(STy::I32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Mov { ty: Type::scalar(STy::I32), dst: a, a: Value::ImmI(6) });
        blk.insts.push(Inst::Bin {
            op: BinOp::Mul,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: b,
            a: Value::Reg(a),
            b: Value::ImmI(7),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        const_fold(&mut f);
        match &f.blocks[0].insts[1] {
            Inst::Mov { a: Value::ImmI(42), .. } => {}
            other => panic!("expected folded mov 42, got {other:?}"),
        }
    }

    #[test]
    fn redefinition_invalidates_binding() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let b = f.new_reg(Type::scalar(STy::I32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Mov { ty: Type::scalar(STy::I32), dst: a, a: Value::ImmI(1) });
        // Redefine `a` from a non-constant source.
        blk.insts.push(Inst::Load {
            ty: STy::I32,
            space: crate::Space::Global,
            dst: a,
            addr: Value::ImmI(0),
        });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: b,
            a: Value::Reg(a),
            b: Value::ImmI(1),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        const_fold(&mut f);
        // The add must not be folded.
        assert!(matches!(&f.blocks[0].insts[2], Inst::Bin { .. }));
    }

    #[test]
    fn folds_unsigned_comparison() {
        let mut f = Function::new("t", 1);
        let p = f.new_reg(Type::scalar(STy::I1));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Cmp {
            pred: CmpPred::Lt,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: p,
            a: Value::ImmI(-1), // 0xFFFF_FFFF unsigned
            b: Value::ImmI(0),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        const_fold(&mut f);
        match &f.blocks[0].insts[0] {
            Inst::Mov { a: Value::ImmI(0), .. } => {}
            other => panic!("unsigned -1 < 0 must be false, got {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Bin {
            op: BinOp::Div,
            ty: Type::scalar(STy::I32),
            signed: true,
            dst: a,
            a: Value::ImmI(1),
            b: Value::ImmI(0),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        const_fold(&mut f);
        assert!(matches!(&f.blocks[0].insts[0], Inst::Bin { .. }));
    }

    #[test]
    fn f32_rounding_is_applied() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::F32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::F32),
            signed: false,
            dst: a,
            a: Value::ImmF(0.1),
            b: Value::ImmF(0.2),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        const_fold(&mut f);
        match &f.blocks[0].insts[0] {
            Inst::Mov { a: Value::ImmF(v), .. } => {
                assert_eq!(*v, ((0.1f64 + 0.2f64) as f32) as f64);
            }
            other => panic!("expected folded mov, got {other:?}"),
        }
    }
}
