//! Integration tests of the full optimization pipeline.

use crate::function::Block;
use crate::inst::{BinOp, BlockId, CtxField, Inst, Space, Term};
use crate::opt::standard_pipeline;
use crate::types::{STy, Type};
use crate::value::Value;
use crate::verify::verify;
use crate::Function;

fn i32t() -> Type {
    Type::scalar(STy::I32)
}

/// A function computing redundant thread-invariant expressions twice and
/// storing the result, with a dead chain on the side.
fn build_redundant() -> Function {
    let mut f = Function::new("t", 1);
    let a = f.new_reg(i32t());
    let b = f.new_reg(i32t());
    let c = f.new_reg(i32t());
    let d = f.new_reg(i32t());
    let dead = f.new_reg(i32t());
    let mut blk = Block::new("entry");
    blk.insts.push(Inst::CtxRead { field: CtxField::Ntid(0), lane: 0, dst: a });
    blk.insts.push(Inst::CtxRead { field: CtxField::Ntid(0), lane: 0, dst: b });
    blk.insts.push(Inst::Bin {
        op: BinOp::Mul,
        ty: i32t(),
        signed: false,
        dst: c,
        a: Value::Reg(a),
        b: Value::ImmI(4),
    });
    blk.insts.push(Inst::Bin {
        op: BinOp::Mul,
        ty: i32t(),
        signed: false,
        dst: d,
        a: Value::Reg(b),
        b: Value::ImmI(4),
    });
    blk.insts.push(Inst::Bin {
        op: BinOp::Add,
        ty: i32t(),
        signed: false,
        dst: dead,
        a: Value::Reg(c),
        b: Value::ImmI(1),
    });
    blk.insts.push(Inst::Bin {
        op: BinOp::Add,
        ty: i32t(),
        signed: false,
        dst: c,
        a: Value::Reg(c),
        b: Value::Reg(d),
    });
    blk.insts.push(Inst::Store {
        ty: STy::I32,
        space: Space::Global,
        addr: Value::ImmI(0),
        value: Value::Reg(c),
    });
    blk.term = Term::Ret;
    f.add_block(blk);
    f
}

#[test]
fn pipeline_removes_redundancy_and_verifies() {
    let mut f = build_redundant();
    let before = f.instruction_count();
    let stats = standard_pipeline(&mut f);
    verify(&f).unwrap();
    assert!(stats.total_simplifications() > 0, "{stats:?}");
    assert!(f.instruction_count() < before);
    // One ctx read, one mul, one add, one store survive at minimum.
    assert!(f.instruction_count() >= 4);
}

#[test]
fn pipeline_is_idempotent() {
    let mut f = build_redundant();
    standard_pipeline(&mut f);
    let once = f.clone();
    let stats = standard_pipeline(&mut f);
    assert_eq!(stats.total_simplifications(), 0, "{stats:?}");
    assert_eq!(f, once);
}

#[test]
fn pipeline_fuses_straightline_chains() {
    let mut f = Function::new("t", 1);
    let a = f.new_reg(i32t());
    let mut b0 = Block::new("a");
    b0.insts.push(Inst::Mov { ty: i32t(), dst: a, a: Value::ImmI(3) });
    b0.term = Term::Br(BlockId(1));
    f.add_block(b0);
    let mut b1 = Block::new("b");
    b1.insts.push(Inst::Store {
        ty: STy::I32,
        space: Space::Global,
        addr: Value::ImmI(0),
        value: Value::Reg(a),
    });
    b1.term = Term::Ret;
    f.add_block(b1);

    let stats = standard_pipeline(&mut f);
    assert_eq!(stats.blocks_fused, 1);
    assert_eq!(f.blocks.len(), 1);
    verify(&f).unwrap();
    // Constant propagation folded the mov into the store's operand or
    // kept it; either way the store must still write 3.
    match &f.blocks[0].insts[..] {
        [Inst::Store { value: Value::ImmI(3), .. }] => {}
        [Inst::Mov { .. }, Inst::Store { .. }] => {}
        other => panic!("unexpected shape: {other:?}"),
    }
}

#[test]
fn constant_branches_leave_unreachable_blocks_removable() {
    let mut f = Function::new("t", 1);
    let c = f.new_reg(Type::scalar(STy::I1));
    let mut b0 = Block::new("entry");
    b0.insts.push(Inst::Mov { ty: Type::scalar(STy::I1), dst: c, a: Value::ImmI(1) });
    b0.term = Term::CondBr { cond: Value::Reg(c), taken: BlockId(1), fall: BlockId(2) };
    f.add_block(b0);
    let mut b1 = Block::new("taken");
    b1.term = Term::Ret;
    f.add_block(b1);
    let mut b2 = Block::new("fall");
    b2.insts.push(Inst::Store {
        ty: STy::I32,
        space: Space::Global,
        addr: Value::ImmI(0),
        value: Value::ImmI(9),
    });
    b2.term = Term::Ret;
    f.add_block(b2);

    standard_pipeline(&mut f);
    verify(&f).unwrap();
    // After const-fold the branch condition is the constant 1; the VM will
    // never take the fall edge, but the pipeline keeps both targets (it
    // does not fold terminators). Ensure structure is still sound.
    assert!(f.blocks.len() >= 2);
}

#[test]
fn spills_and_resume_points_are_never_eliminated() {
    use crate::inst::ResumeStatus;
    let mut f = Function::new("t", 2);
    let a = f.new_reg(i32t());
    let mut blk = Block::new("exit");
    blk.kind = crate::BlockKind::ExitHandler;
    blk.insts.push(Inst::Mov { ty: i32t(), dst: a, a: Value::ImmI(5) });
    blk.insts.push(Inst::SetResumePoint { lane: 0, value: Value::Reg(a) });
    blk.insts.push(Inst::SetResumePoint { lane: 1, value: Value::ImmI(5) });
    blk.insts.push(Inst::SetResumeStatus { status: ResumeStatus::Branch });
    blk.term = Term::Ret;
    f.add_block(blk);
    standard_pipeline(&mut f);
    let kinds: Vec<bool> = f.blocks[0]
        .insts
        .iter()
        .map(|i| matches!(i, Inst::SetResumePoint { .. } | Inst::SetResumeStatus { .. }))
        .collect();
    assert_eq!(kinds.iter().filter(|&&k| k).count(), 3, "{:?}", f.blocks[0].insts);
}
