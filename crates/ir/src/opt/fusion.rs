//! Basic-block fusion and unreachable-block removal.

use crate::function::{BlockKind, Function};
use crate::inst::{BlockId, Term};

/// Merge each block that ends in an unconditional branch to a block with
/// exactly one predecessor into its successor, provided both are
/// [`BlockKind::Body`] blocks (handler blocks keep their identity for
/// cycle attribution). Returns the number of merges performed.
pub fn fuse_blocks(f: &mut Function) -> usize {
    let mut fused = 0;
    loop {
        let preds = f.predecessors();
        let mut candidate = None;
        for (i, b) in f.blocks.iter().enumerate() {
            if let Term::Br(succ) = b.term {
                let si = succ.index();
                if si != i
                    && si != 0
                    && preds[si].len() == 1
                    && b.kind == BlockKind::Body
                    && f.blocks[si].kind == BlockKind::Body
                {
                    candidate = Some((i, si));
                    break;
                }
            }
        }
        let Some((i, si)) = candidate else { break };
        let succ_block = f.blocks[si].clone();
        let b = &mut f.blocks[i];
        b.insts.extend(succ_block.insts);
        b.term = succ_block.term;
        // The successor is now unreachable; leave it for
        // `remove_unreachable_blocks`.
        f.blocks[si].insts.clear();
        f.blocks[si].term = Term::Ret;
        fused += 1;
    }
    if fused > 0 {
        remove_unreachable_blocks(f);
    }
    fused
}

/// Remove blocks not reachable from the entry and remap branch targets.
/// Returns the number of blocks removed.
pub fn remove_unreachable_blocks(f: &mut Function) -> usize {
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![BlockId(0)];
    if n > 0 {
        reachable[0] = true;
    }
    while let Some(b) = stack.pop() {
        for s in f.blocks[b.index()].term.successors() {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s);
            }
        }
    }
    let removed = reachable.iter().filter(|&&r| !r).count();
    if removed == 0 {
        return 0;
    }
    // Build the remapping old -> new.
    let mut remap = vec![BlockId(0); n];
    let mut next = 0u32;
    for i in 0..n {
        if reachable[i] {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let mut old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut b) in old_blocks.drain(..).enumerate() {
        if reachable[i] {
            b.term.map_targets(|t| remap[t.index()]);
            f.blocks.push(b);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{Inst, Term};
    use crate::types::{STy, Type};
    use crate::value::Value;

    fn mov_inst(f: &mut Function) -> Inst {
        let r = f.new_reg(Type::scalar(STy::I32));
        Inst::Mov { ty: Type::scalar(STy::I32), dst: r, a: Value::ImmI(0) }
    }

    #[test]
    fn fuses_linear_chain() {
        let mut f = Function::new("t", 1);
        let i0 = mov_inst(&mut f);
        let i1 = mov_inst(&mut f);
        let i2 = mov_inst(&mut f);
        let mut b0 = Block::new("a");
        b0.insts.push(i0);
        b0.term = Term::Br(BlockId(1));
        let mut b1 = Block::new("b");
        b1.insts.push(i1);
        b1.term = Term::Br(BlockId(2));
        let mut b2 = Block::new("c");
        b2.insts.push(i2);
        b2.term = Term::Ret;
        f.add_block(b0);
        f.add_block(b1);
        f.add_block(b2);

        let fused = fuse_blocks(&mut f);
        assert_eq!(fused, 2);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert_eq!(f.blocks[0].term, Term::Ret);
    }

    #[test]
    fn does_not_fuse_merge_points() {
        let mut f = Function::new("t", 1);
        let c = f.new_reg(Type::scalar(STy::I1));
        let mut b0 = Block::new("entry");
        b0.term = Term::CondBr { cond: Value::Reg(c), taken: BlockId(1), fall: BlockId(2) };
        let mut b1 = Block::new("left");
        b1.term = Term::Br(BlockId(3));
        let mut b2 = Block::new("right");
        b2.term = Term::Br(BlockId(3));
        let mut b3 = Block::new("join");
        b3.term = Term::Ret;
        f.add_block(b0);
        f.add_block(b1);
        f.add_block(b2);
        f.add_block(b3);
        // join has two predecessors: no fusion.
        assert_eq!(fuse_blocks(&mut f), 0);
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn removes_unreachable_and_remaps() {
        let mut f = Function::new("t", 1);
        let mut b0 = Block::new("entry");
        b0.term = Term::Br(BlockId(2));
        let mut dead = Block::new("dead");
        dead.term = Term::Ret;
        let mut b2 = Block::new("tail");
        b2.term = Term::Ret;
        f.add_block(b0);
        f.add_block(dead);
        f.add_block(b2);
        assert_eq!(remove_unreachable_blocks(&mut f), 1);
        assert_eq!(f.blocks.len(), 2);
        // entry now branches to remapped index 1.
        assert_eq!(f.blocks[0].term, Term::Br(BlockId(1)));
        assert_eq!(f.blocks[1].label, "tail");
    }

    #[test]
    fn self_loop_is_not_fused() {
        let mut f = Function::new("t", 1);
        let mut b0 = Block::new("entry");
        b0.term = Term::Br(BlockId(1));
        let mut b1 = Block::new("spin");
        b1.term = Term::Br(BlockId(1));
        f.add_block(b0);
        f.add_block(b1);
        // b1 -> b1: the self-loop must survive (its predecessor count is 2).
        assert_eq!(fuse_blocks(&mut f), 0);
    }
}
