//! Dead-code elimination.

use crate::analysis::use_counts;
use crate::function::Function;

/// Remove instructions that define a register with no uses anywhere in the
/// function and have no side effects. Iterates to a fixpoint (removing one
/// dead instruction can make its operands dead). Returns the number of
/// instructions removed.
///
/// The pass is conservative in the presence of register redefinition: a
/// definition is only removed when *no* use of the register exists
/// anywhere, which is sound without SSA form.
pub fn dead_code_elimination(f: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let counts = use_counts(f);
        let mut removed = 0;
        for b in &mut f.blocks {
            b.insts.retain(|inst| {
                if inst.has_side_effects() || inst.reads_memory() {
                    return true;
                }
                match inst.dst() {
                    Some(d) if counts[d.index()] == 0 => {
                        removed += 1;
                        false
                    }
                    _ => true,
                }
            });
        }
        removed_total += removed;
        if removed == 0 {
            break;
        }
    }
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{BinOp, Inst, Space, Term};
    use crate::types::{STy, Type};
    use crate::value::Value;

    #[test]
    fn removes_transitively_dead_chain() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let b = f.new_reg(Type::scalar(STy::I32));
        let c = f.new_reg(Type::scalar(STy::I32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Mov { ty: Type::scalar(STy::I32), dst: a, a: Value::ImmI(1) });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: b,
            a: Value::Reg(a),
            b: Value::ImmI(1),
        });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: c,
            a: Value::Reg(b),
            b: Value::ImmI(1),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        let removed = dead_code_elimination(&mut f);
        assert_eq!(removed, 3);
        assert_eq!(f.instruction_count(), 0);
    }

    #[test]
    fn keeps_stores_and_their_operands() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::F32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Mov { ty: Type::scalar(STy::F32), dst: a, a: Value::ImmF(1.0) });
        blk.insts.push(Inst::Store {
            ty: STy::F32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(dead_code_elimination(&mut f), 0);
        assert_eq!(f.instruction_count(), 2);
    }

    #[test]
    fn keeps_loads_with_unused_results() {
        // A load may fault or have timing effects in the model; keep it.
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::F32));
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Load {
            ty: STy::F32,
            space: Space::Global,
            dst: a,
            addr: Value::ImmI(0),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(dead_code_elimination(&mut f), 0);
    }
}
