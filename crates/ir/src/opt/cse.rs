//! Block-local common-subexpression elimination with copy propagation.
//!
//! This is the pass that implements the paper's *thread-invariant
//! expression elimination* payoff (Section 6.2): after static warp
//! formation rewrites lane-k context reads of CTA-uniform fields to lane-0
//! reads, the replicated per-lane expressions become textually identical
//! and are removed here.

use std::collections::HashMap;

use crate::function::Function;
use crate::inst::{Inst, Space};
use crate::value::{VReg, Value};

/// Key identifying a pure expression, with operands resolved to
/// `(register, version)` pairs so redefinitions invalidate entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OperandKey {
    Reg(VReg, u32),
    ImmI(i64),
    ImmF(u64),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExprKey {
    shape: String,
    operands: Vec<OperandKey>,
}

/// Run local CSE and copy propagation on every block. Returns the number
/// of instructions replaced by copies (candidates for later DCE).
pub fn local_cse(f: &mut Function) -> usize {
    let nregs = f.regs.len();
    let mut replaced = 0;
    for bi in 0..f.blocks.len() {
        let mut version = vec![0u32; nregs];
        let mut avail: HashMap<ExprKey, (VReg, u32)> = HashMap::new();
        // Copy bindings: dst -> (src, version-of-src-at-copy).
        let mut copies: HashMap<VReg, (VReg, u32)> = HashMap::new();
        let block = &mut f.blocks[bi];
        for inst in &mut block.insts {
            // Copy propagation on uses.
            inst.map_uses(|v| {
                if let Value::Reg(r) = v {
                    if let Some(&(src, ver)) = copies.get(r) {
                        if version[src.index()] == ver {
                            *v = Value::Reg(src);
                        }
                    }
                }
            });
            let key = expr_key(inst, &version);
            let mut was_replaced = false;
            if let Some(key) = &key {
                if let Some(&(prev, ver)) = avail.get(key) {
                    if version[prev.index()] == ver {
                        let dst = inst.dst().expect("keyed instructions define a register");
                        if prev != dst {
                            let ty = f.regs[dst.index()];
                            *inst = Inst::Mov { ty, dst, a: Value::Reg(prev) };
                            replaced += 1;
                        }
                        was_replaced = true;
                    }
                }
            }
            if let Some(d) = inst.dst() {
                version[d.index()] += 1;
                // Invalidate copies whose source was overwritten is handled
                // by the version check; record new binding.
                if let Inst::Mov { a: Value::Reg(src), .. } = inst {
                    if *src != d {
                        copies.insert(d, (*src, version[src.index()]));
                    } else {
                        copies.remove(&d);
                    }
                } else {
                    copies.remove(&d);
                }
                if let (Some(key), false) = (key, was_replaced) {
                    avail.insert(key, (d, version[d.index()]));
                }
            }
        }
        // Terminator copy propagation.
        let term_sub = |v: &mut Value| {
            if let Value::Reg(r) = v {
                if let Some(&(src, ver)) = copies.get(r) {
                    if version[src.index()] == ver {
                        *v = Value::Reg(src);
                    }
                }
            }
        };
        match &mut block.term {
            crate::Term::CondBr { cond, .. } => term_sub(cond),
            crate::Term::Switch { value, .. } => term_sub(value),
            _ => {}
        }
    }
    replaced
}

fn operand_key(v: Value, version: &[u32]) -> OperandKey {
    match v {
        Value::Reg(r) => OperandKey::Reg(r, version[r.index()]),
        Value::ImmI(i) => OperandKey::ImmI(i),
        Value::ImmF(x) => OperandKey::ImmF(x.to_bits()),
    }
}

/// Expression key for CSE-able instructions, `None` for the rest.
fn expr_key(inst: &Inst, version: &[u32]) -> Option<ExprKey> {
    use Inst::*;
    let shape = match inst {
        Bin { op, ty, signed, .. } => format!("bin.{op:?}.{ty}.{signed}"),
        Un { op, ty, .. } => format!("un.{op:?}.{ty}"),
        Fma { ty, .. } => format!("fma.{ty}"),
        Cmp { pred, ty, signed, .. } => format!("cmp.{pred:?}.{ty}.{signed}"),
        Select { ty, .. } => format!("sel.{ty}"),
        Cvt { to, from, signed, width, .. } => format!("cvt.{to}.{from}.{signed}.{width}"),
        Insert { ty, lane, .. } => format!("ins.{ty}.{lane}"),
        Extract { ty, lane, .. } => format!("ext.{ty}.{lane}"),
        Splat { ty, .. } => format!("splat.{ty}"),
        Reduce { op, ty, .. } => format!("red.{op:?}.{ty}"),
        CtxRead { field, lane, .. } => format!("ctx.{field:?}.{lane}"),
        // Loads from read-only spaces are pure and safe to CSE.
        Load { ty, space: Space::Param, .. } => format!("ld.param.{ty}"),
        Load { ty, space: Space::Const, .. } => format!("ld.const.{ty}"),
        _ => return None,
    };
    let operands = inst.uses().iter().map(|&v| operand_key(v, version)).collect();
    Some(ExprKey { shape, operands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{BinOp, CtxField, Term};
    use crate::opt::dead_code_elimination;
    use crate::types::{STy, Type};

    #[test]
    fn merges_identical_expressions() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let b = f.new_reg(t);
        let c = f.new_reg(t);
        let d = f.new_reg(t);
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::CtxRead { field: CtxField::Tid(0), lane: 0, dst: a });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: b,
            a: Value::Reg(a),
            b: Value::ImmI(1),
        });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: c,
            a: Value::Reg(a),
            b: Value::ImmI(1),
        });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: d,
            a: Value::Reg(b),
            b: Value::Reg(c),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(d),
        });
        blk.term = Term::Ret;
        f.add_block(blk);

        let replaced = local_cse(&mut f);
        assert_eq!(replaced, 1);
        // After copy propagation the final add reads %b twice.
        match &f.blocks[0].insts[3] {
            Inst::Bin { a: Value::Reg(x), b: Value::Reg(y), .. } => {
                assert_eq!(x, y);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The replacement mov is now dead.
        assert!(dead_code_elimination(&mut f) >= 1);
    }

    #[test]
    fn redefinition_blocks_reuse() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let b = f.new_reg(t);
        let c = f.new_reg(t);
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: b,
            a: Value::Reg(a),
            b: Value::ImmI(1),
        });
        // Redefine the operand.
        blk.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Global,
            dst: a,
            addr: Value::ImmI(0),
        });
        blk.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: c,
            a: Value::Reg(a),
            b: Value::ImmI(1),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(4),
            value: Value::Reg(c),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(8),
            value: Value::Reg(b),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(local_cse(&mut f), 0);
    }

    #[test]
    fn global_loads_are_not_cse_candidates() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let b = f.new_reg(t);
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Global,
            dst: a,
            addr: Value::ImmI(0),
        });
        blk.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Global,
            dst: b,
            addr: Value::ImmI(0),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(4),
            value: Value::Reg(a),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(8),
            value: Value::Reg(b),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(local_cse(&mut f), 0);
    }

    #[test]
    fn param_loads_are_merged() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let b = f.new_reg(t);
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Param,
            dst: a,
            addr: Value::ImmI(0),
        });
        blk.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Param,
            dst: b,
            addr: Value::ImmI(0),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(4),
            value: Value::Reg(b),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(local_cse(&mut f), 1);
    }

    #[test]
    fn ctx_reads_of_different_lanes_stay() {
        let mut f = Function::new("t", 2);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let b = f.new_reg(t);
        let mut blk = Block::new("entry");
        blk.insts.push(Inst::CtxRead { field: CtxField::Tid(0), lane: 0, dst: a });
        blk.insts.push(Inst::CtxRead { field: CtxField::Tid(0), lane: 1, dst: b });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        blk.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(4),
            value: Value::Reg(b),
        });
        blk.term = Term::Ret;
        f.add_block(blk);
        assert_eq!(local_cse(&mut f), 0);
    }
}
