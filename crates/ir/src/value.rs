//! Virtual registers and values.

use std::fmt;

/// A virtual register. The owning [`Function`](crate::Function) maps each
/// register to its [`Type`](crate::Type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl VReg {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An operand value: a register or a scalar immediate.
///
/// Immediates are always scalar; vector constants are built with
/// [`Inst::Splat`](crate::Inst::Splat). Integer immediates are stored as
/// `i64` bit patterns and interpreted at the instruction's type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A virtual register.
    Reg(VReg),
    /// An integer immediate.
    ImmI(i64),
    /// A floating-point immediate.
    ImmF(f64),
}

impl Value {
    /// The register, when this value is one.
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Value::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Whether this value is a compile-time constant.
    pub fn is_const(&self) -> bool {
        !matches!(self, Value::Reg(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Reg(r) => write!(f, "{r}"),
            Value::ImmI(v) => write!(f, "{v}"),
            Value::ImmF(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<VReg> for Value {
    fn from(r: VReg) -> Self {
        Value::Reg(r)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::ImmI(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::ImmF(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(VReg(3)).as_reg(), Some(VReg(3)));
        assert_eq!(Value::from(4i64), Value::ImmI(4));
        assert!(Value::from(1.5f64).is_const());
        assert!(!Value::Reg(VReg(0)).is_const());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Reg(VReg(7)).to_string(), "%7");
        assert_eq!(Value::ImmI(-2).to_string(), "-2");
    }
}
