//! Byte-level serialization of IR functions.
//!
//! The persistent translation cache (`dpvk-core`) stores fully translated
//! and specialized kernels on disk so a restarted process skips the
//! translate/specialize pipeline on warm kernels. This module provides the
//! codec substrate: little-endian primitive readers/writers plus a
//! round-trip codec for [`Function`].
//!
//! Design constraints:
//!
//! * **No external dependencies.** The format is hand-rolled little-endian
//!   with length-prefixed strings and sequences.
//! * **Corruption is an error, never UB or a panic.** Every read is
//!   bounds-checked and every enum tag validated; decoding truncated or
//!   bit-flipped input returns [`SerialError`]. Callers treat any error as
//!   a cache miss and recompile.
//! * **Deterministic bytes.** Encoding the same function twice yields
//!   identical bytes, so content hashes of encoded artifacts are stable.
//!
//! The format carries no version field of its own: versioning and
//! checksumming belong to the enclosing artifact container (see
//! `dpvk-core`'s persistent cache), which bumps its format version whenever
//! any layer of the encoding changes.

use std::error::Error;
use std::fmt;

use crate::function::{Block, BlockKind, Function};
use crate::inst::{
    AtomKind, BinOp, BlockId, CmpPred, CtxField, Inst, ReduceOp, ResumeStatus, Space, Term, UnOp,
};
use crate::types::{STy, Type};
use crate::value::{VReg, Value};

/// Decoding failure: truncated input, an invalid enum tag, or a
/// length field that exceeds the remaining input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl SerialError {
    /// Build an error from anything displayable.
    pub fn new(message: impl Into<String>) -> Self {
        SerialError { message: message.into() }
    }
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serial decode error: {}", self.message)
    }
}

impl Error for SerialError {}

/// Shorthand result type for decoding.
pub type SerialResult<T> = Result<T, SerialError>;

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

/// Append one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a bool as one byte (0/1).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern (NaN payloads and
/// signed zeros survive the round trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string (u32 length).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> SerialResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SerialError::new(format!(
                "truncated input: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> SerialResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool byte, rejecting values other than 0/1.
    pub fn take_bool(&mut self) -> SerialResult<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SerialError::new(format!("invalid bool byte {v}"))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> SerialResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> SerialResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn take_i64(&mut self) -> SerialResult<i64> {
        Ok(self.take_u64()? as i64)
    }

    /// Read an `f64` bit pattern.
    pub fn take_f64(&mut self) -> SerialResult<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a sequence length, rejecting lengths that cannot possibly fit
    /// in the remaining input (each element needs at least `min_elem_bytes`
    /// bytes). This keeps corrupted length fields from causing huge
    /// allocations before the inevitable truncation error.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> SerialResult<usize> {
        let n = self.take_u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(SerialError::new(format!(
                "implausible sequence length {n} with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> SerialResult<String> {
        let n = self.take_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SerialError::new("string payload is not UTF-8"))
    }
}

// ---------------------------------------------------------------------------
// Enum codecs
// ---------------------------------------------------------------------------

macro_rules! enum_codec {
    ($put:ident, $take:ident, $ty:ident, [$($variant:ident),+ $(,)?]) => {
        #[doc = concat!("Append a [`", stringify!($ty), "`] tag byte.")]
        pub fn $put(buf: &mut Vec<u8>, v: $ty) {
            const VARIANTS: &[$ty] = &[$($ty::$variant),+];
            let tag = VARIANTS.iter().position(|x| *x == v).expect("variant listed") as u8;
            put_u8(buf, tag);
        }

        #[doc = concat!("Read a [`", stringify!($ty), "`] tag byte.")]
        pub fn $take(r: &mut Reader<'_>) -> SerialResult<$ty> {
            const VARIANTS: &[$ty] = &[$($ty::$variant),+];
            let tag = r.take_u8()? as usize;
            VARIANTS.get(tag).copied().ok_or_else(|| {
                SerialError::new(format!("invalid {} tag {tag}", stringify!($ty)))
            })
        }
    };
}

enum_codec!(
    put_bin_op,
    take_bin_op,
    BinOp,
    [Add, Sub, Mul, MulHi, Div, Rem, Min, Max, And, Or, Xor, Shl, Shr]
);
enum_codec!(put_un_op, take_un_op, UnOp, [Neg, Not, Abs, Sqrt, Rsqrt, Rcp, Sin, Cos, Ex2, Lg2]);
enum_codec!(put_cmp_pred, take_cmp_pred, CmpPred, [Eq, Ne, Lt, Le, Gt, Ge]);
enum_codec!(put_space, take_space, Space, [Global, Shared, Local, Param, Const]);
enum_codec!(put_atom_kind, take_atom_kind, AtomKind, [Add, Min, Max, Exch, Cas]);
enum_codec!(put_reduce_op, take_reduce_op, ReduceOp, [Add, All, Any]);
enum_codec!(put_resume_status, take_resume_status, ResumeStatus, [Branch, Barrier, Exit]);
enum_codec!(put_sty, take_sty, STy, [I1, I8, I16, I32, I64, F32, F64]);
enum_codec!(
    put_block_kind,
    take_block_kind,
    BlockKind,
    [Body, Scheduler, EntryHandler, ExitHandler]
);

/// Encode a scalar type tag followed by a lane width.
fn put_type(buf: &mut Vec<u8>, ty: Type) {
    put_sty(buf, ty.scalar);
    put_u32(buf, ty.width);
}

fn take_type(r: &mut Reader<'_>) -> SerialResult<Type> {
    let scalar = take_sty(r)?;
    let width = r.take_u32()?;
    if width == 0 {
        return Err(SerialError::new("zero-width type"));
    }
    Ok(Type { scalar, width })
}

fn put_vreg(buf: &mut Vec<u8>, r: VReg) {
    put_u32(buf, r.0);
}

fn take_vreg(r: &mut Reader<'_>) -> SerialResult<VReg> {
    Ok(VReg(r.take_u32()?))
}

fn put_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::Reg(r) => {
            put_u8(buf, 0);
            put_vreg(buf, r);
        }
        Value::ImmI(i) => {
            put_u8(buf, 1);
            put_i64(buf, i);
        }
        Value::ImmF(f) => {
            put_u8(buf, 2);
            put_f64(buf, f);
        }
    }
}

fn take_value(r: &mut Reader<'_>) -> SerialResult<Value> {
    match r.take_u8()? {
        0 => Ok(Value::Reg(take_vreg(r)?)),
        1 => Ok(Value::ImmI(r.take_i64()?)),
        2 => Ok(Value::ImmF(r.take_f64()?)),
        t => Err(SerialError::new(format!("invalid Value tag {t}"))),
    }
}

/// Append a [`CtxField`] as a tag byte plus a dimension byte.
pub fn put_ctx_field(buf: &mut Vec<u8>, f: CtxField) {
    let (tag, dim) = match f {
        CtxField::Tid(d) => (0u8, d),
        CtxField::Ntid(d) => (1, d),
        CtxField::Ctaid(d) => (2, d),
        CtxField::Nctaid(d) => (3, d),
        CtxField::LocalBase => (4, 0),
        CtxField::LaneId => (5, 0),
        CtxField::WarpSize => (6, 0),
        CtxField::EntryId => (7, 0),
    };
    put_u8(buf, tag);
    put_u8(buf, dim);
}

/// Read a [`CtxField`] written by [`put_ctx_field`].
pub fn take_ctx_field(r: &mut Reader<'_>) -> SerialResult<CtxField> {
    let tag = r.take_u8()?;
    let dim = r.take_u8()?;
    if tag <= 3 && dim > 2 {
        return Err(SerialError::new(format!("ctx field dimension {dim} out of range")));
    }
    Ok(match tag {
        0 => CtxField::Tid(dim),
        1 => CtxField::Ntid(dim),
        2 => CtxField::Ctaid(dim),
        3 => CtxField::Nctaid(dim),
        4 => CtxField::LocalBase,
        5 => CtxField::LaneId,
        6 => CtxField::WarpSize,
        7 => CtxField::EntryId,
        t => return Err(SerialError::new(format!("invalid CtxField tag {t}"))),
    })
}

fn put_block_id(buf: &mut Vec<u8>, b: BlockId) {
    put_u32(buf, b.0);
}

fn take_block_id(r: &mut Reader<'_>) -> SerialResult<BlockId> {
    Ok(BlockId(r.take_u32()?))
}

// ---------------------------------------------------------------------------
// Instructions and terminators
// ---------------------------------------------------------------------------

fn put_inst(buf: &mut Vec<u8>, inst: &Inst) {
    match inst {
        Inst::Bin { op, ty, signed, dst, a, b } => {
            put_u8(buf, 0);
            put_bin_op(buf, *op);
            put_type(buf, *ty);
            put_bool(buf, *signed);
            put_vreg(buf, *dst);
            put_value(buf, *a);
            put_value(buf, *b);
        }
        Inst::Un { op, ty, dst, a } => {
            put_u8(buf, 1);
            put_un_op(buf, *op);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *a);
        }
        Inst::Fma { ty, dst, a, b, c } => {
            put_u8(buf, 2);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *a);
            put_value(buf, *b);
            put_value(buf, *c);
        }
        Inst::Cmp { pred, ty, signed, dst, a, b } => {
            put_u8(buf, 3);
            put_cmp_pred(buf, *pred);
            put_type(buf, *ty);
            put_bool(buf, *signed);
            put_vreg(buf, *dst);
            put_value(buf, *a);
            put_value(buf, *b);
        }
        Inst::Select { ty, dst, cond, a, b } => {
            put_u8(buf, 4);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *cond);
            put_value(buf, *a);
            put_value(buf, *b);
        }
        Inst::Cvt { to, from, signed, width, dst, a } => {
            put_u8(buf, 5);
            put_sty(buf, *to);
            put_sty(buf, *from);
            put_bool(buf, *signed);
            put_u32(buf, *width);
            put_vreg(buf, *dst);
            put_value(buf, *a);
        }
        Inst::Load { ty, space, dst, addr } => {
            put_u8(buf, 6);
            put_sty(buf, *ty);
            put_space(buf, *space);
            put_vreg(buf, *dst);
            put_value(buf, *addr);
        }
        Inst::Store { ty, space, addr, value } => {
            put_u8(buf, 7);
            put_sty(buf, *ty);
            put_space(buf, *space);
            put_value(buf, *addr);
            put_value(buf, *value);
        }
        Inst::Atom { ty, space, op, signed, dst, addr, a, b } => {
            put_u8(buf, 8);
            put_sty(buf, *ty);
            put_space(buf, *space);
            put_atom_kind(buf, *op);
            put_bool(buf, *signed);
            put_vreg(buf, *dst);
            put_value(buf, *addr);
            put_value(buf, *a);
            match b {
                Some(b) => {
                    put_bool(buf, true);
                    put_value(buf, *b);
                }
                None => put_bool(buf, false),
            }
        }
        Inst::Insert { ty, dst, vec, elem, lane } => {
            put_u8(buf, 9);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *vec);
            put_value(buf, *elem);
            put_u32(buf, *lane);
        }
        Inst::Extract { ty, dst, vec, lane } => {
            put_u8(buf, 10);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *vec);
            put_u32(buf, *lane);
        }
        Inst::Splat { ty, dst, a } => {
            put_u8(buf, 11);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *a);
        }
        Inst::Reduce { op, ty, dst, vec } => {
            put_u8(buf, 12);
            put_reduce_op(buf, *op);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *vec);
        }
        Inst::CtxRead { field, lane, dst } => {
            put_u8(buf, 13);
            put_ctx_field(buf, *field);
            put_u32(buf, *lane);
            put_vreg(buf, *dst);
        }
        Inst::SetResumePoint { lane, value } => {
            put_u8(buf, 14);
            put_u32(buf, *lane);
            put_value(buf, *value);
        }
        Inst::SetResumeStatus { status } => {
            put_u8(buf, 15);
            put_resume_status(buf, *status);
        }
        Inst::Vote { op, dst, a } => {
            put_u8(buf, 16);
            put_reduce_op(buf, *op);
            put_vreg(buf, *dst);
            put_value(buf, *a);
        }
        Inst::Mov { ty, dst, a } => {
            put_u8(buf, 17);
            put_type(buf, *ty);
            put_vreg(buf, *dst);
            put_value(buf, *a);
        }
    }
}

fn take_inst(r: &mut Reader<'_>) -> SerialResult<Inst> {
    Ok(match r.take_u8()? {
        0 => Inst::Bin {
            op: take_bin_op(r)?,
            ty: take_type(r)?,
            signed: r.take_bool()?,
            dst: take_vreg(r)?,
            a: take_value(r)?,
            b: take_value(r)?,
        },
        1 => Inst::Un {
            op: take_un_op(r)?,
            ty: take_type(r)?,
            dst: take_vreg(r)?,
            a: take_value(r)?,
        },
        2 => Inst::Fma {
            ty: take_type(r)?,
            dst: take_vreg(r)?,
            a: take_value(r)?,
            b: take_value(r)?,
            c: take_value(r)?,
        },
        3 => Inst::Cmp {
            pred: take_cmp_pred(r)?,
            ty: take_type(r)?,
            signed: r.take_bool()?,
            dst: take_vreg(r)?,
            a: take_value(r)?,
            b: take_value(r)?,
        },
        4 => Inst::Select {
            ty: take_type(r)?,
            dst: take_vreg(r)?,
            cond: take_value(r)?,
            a: take_value(r)?,
            b: take_value(r)?,
        },
        5 => Inst::Cvt {
            to: take_sty(r)?,
            from: take_sty(r)?,
            signed: r.take_bool()?,
            width: r.take_u32()?,
            dst: take_vreg(r)?,
            a: take_value(r)?,
        },
        6 => Inst::Load {
            ty: take_sty(r)?,
            space: take_space(r)?,
            dst: take_vreg(r)?,
            addr: take_value(r)?,
        },
        7 => Inst::Store {
            ty: take_sty(r)?,
            space: take_space(r)?,
            addr: take_value(r)?,
            value: take_value(r)?,
        },
        8 => {
            let ty = take_sty(r)?;
            let space = take_space(r)?;
            let op = take_atom_kind(r)?;
            let signed = r.take_bool()?;
            let dst = take_vreg(r)?;
            let addr = take_value(r)?;
            let a = take_value(r)?;
            let b = if r.take_bool()? { Some(take_value(r)?) } else { None };
            Inst::Atom { ty, space, op, signed, dst, addr, a, b }
        }
        9 => Inst::Insert {
            ty: take_type(r)?,
            dst: take_vreg(r)?,
            vec: take_value(r)?,
            elem: take_value(r)?,
            lane: r.take_u32()?,
        },
        10 => Inst::Extract {
            ty: take_type(r)?,
            dst: take_vreg(r)?,
            vec: take_value(r)?,
            lane: r.take_u32()?,
        },
        11 => Inst::Splat { ty: take_type(r)?, dst: take_vreg(r)?, a: take_value(r)? },
        12 => Inst::Reduce {
            op: take_reduce_op(r)?,
            ty: take_type(r)?,
            dst: take_vreg(r)?,
            vec: take_value(r)?,
        },
        13 => Inst::CtxRead { field: take_ctx_field(r)?, lane: r.take_u32()?, dst: take_vreg(r)? },
        14 => Inst::SetResumePoint { lane: r.take_u32()?, value: take_value(r)? },
        15 => Inst::SetResumeStatus { status: take_resume_status(r)? },
        16 => Inst::Vote { op: take_reduce_op(r)?, dst: take_vreg(r)?, a: take_value(r)? },
        17 => Inst::Mov { ty: take_type(r)?, dst: take_vreg(r)?, a: take_value(r)? },
        t => return Err(SerialError::new(format!("invalid Inst tag {t}"))),
    })
}

fn put_term(buf: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Br(b) => {
            put_u8(buf, 0);
            put_block_id(buf, *b);
        }
        Term::CondBr { cond, taken, fall } => {
            put_u8(buf, 1);
            put_value(buf, *cond);
            put_block_id(buf, *taken);
            put_block_id(buf, *fall);
        }
        Term::Switch { value, cases, default } => {
            put_u8(buf, 2);
            put_value(buf, *value);
            put_u32(buf, cases.len() as u32);
            for (v, b) in cases {
                put_i64(buf, *v);
                put_block_id(buf, *b);
            }
            put_block_id(buf, *default);
        }
        Term::Ret => put_u8(buf, 3),
    }
}

fn take_term(r: &mut Reader<'_>) -> SerialResult<Term> {
    Ok(match r.take_u8()? {
        0 => Term::Br(take_block_id(r)?),
        1 => {
            Term::CondBr { cond: take_value(r)?, taken: take_block_id(r)?, fall: take_block_id(r)? }
        }
        2 => {
            let value = take_value(r)?;
            let n = r.take_len(12)?;
            let mut cases = Vec::with_capacity(n);
            for _ in 0..n {
                let v = r.take_i64()?;
                let b = take_block_id(r)?;
                cases.push((v, b));
            }
            Term::Switch { value, cases, default: take_block_id(r)? }
        }
        3 => Term::Ret,
        t => return Err(SerialError::new(format!("invalid Term tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

/// Append the encoding of `f` to `buf`.
pub fn encode_function(f: &Function, buf: &mut Vec<u8>) {
    put_str(buf, &f.name);
    put_u32(buf, f.warp_size);
    put_u32(buf, f.regs.len() as u32);
    for ty in &f.regs {
        put_type(buf, *ty);
    }
    put_u32(buf, f.blocks.len() as u32);
    for b in &f.blocks {
        put_str(buf, &b.label);
        put_block_kind(buf, b.kind);
        put_u32(buf, b.insts.len() as u32);
        for i in &b.insts {
            put_inst(buf, i);
        }
        put_term(buf, &b.term);
    }
}

/// Decode one function from the reader.
///
/// Structural well-formedness beyond what the codec enforces (register
/// types matching uses, branch targets in range) is the caller's job —
/// run [`crate::verify`] on the result before trusting it.
pub fn decode_function(r: &mut Reader<'_>) -> SerialResult<Function> {
    let name = r.take_str()?;
    let warp_size = r.take_u32()?;
    if warp_size == 0 {
        return Err(SerialError::new("zero warp size"));
    }
    let nregs = r.take_len(5)?;
    let mut regs = Vec::with_capacity(nregs);
    for _ in 0..nregs {
        regs.push(take_type(r)?);
    }
    let nblocks = r.take_len(6)?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let label = r.take_str()?;
        let kind = take_block_kind(r)?;
        let ninsts = r.take_len(1)?;
        let mut insts = Vec::with_capacity(ninsts);
        for _ in 0..ninsts {
            insts.push(take_inst(r)?);
        }
        let term = take_term(r)?;
        blocks.push(Block { label, kind, insts, term });
    }
    Ok(Function { name, warp_size, regs, blocks })
}

/// Encode a function to a fresh byte vector.
pub fn function_to_bytes(f: &Function) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + f.instruction_count() * 24);
    encode_function(f, &mut buf);
    buf
}

/// Decode a function from a byte slice, requiring all input be consumed.
pub fn function_from_bytes(bytes: &[u8]) -> SerialResult<Function> {
    let mut r = Reader::new(bytes);
    let f = decode_function(&mut r)?;
    if !r.is_done() {
        return Err(SerialError::new(format!("{} trailing bytes after function", r.remaining())));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_function() -> Function {
        let mut f = Function::new("k_sample", 4);
        let r0 = f.new_reg(Type::scalar(STy::I64));
        let r1 = f.new_reg(Type::vector(STy::F32, 4));
        let r2 = f.new_reg(Type::vector(STy::I1, 4));
        let r3 = f.new_reg(Type::scalar(STy::I32));

        let mut entry = Block::new("entry");
        entry.kind = BlockKind::Scheduler;
        entry.insts.push(Inst::CtxRead { field: CtxField::Tid(0), lane: 2, dst: r3 });
        entry.insts.push(Inst::Load {
            ty: STy::F32,
            space: Space::Global,
            dst: r3,
            addr: Value::Reg(r0),
        });
        entry.term = Term::Switch {
            value: Value::Reg(r3),
            cases: vec![(0, BlockId(1)), (7, BlockId(1))],
            default: BlockId(1),
        };
        f.add_block(entry);

        let mut body = Block::new("body");
        body.insts.push(Inst::Fma {
            ty: Type::vector(STy::F32, 4),
            dst: r1,
            a: Value::Reg(r1),
            b: Value::ImmF(2.5),
            c: Value::ImmF(-0.0),
        });
        body.insts.push(Inst::Cmp {
            pred: CmpPred::Lt,
            ty: Type::vector(STy::F32, 4),
            signed: false,
            dst: r2,
            a: Value::Reg(r1),
            b: Value::ImmF(1.0e-30),
        });
        body.insts.push(Inst::Atom {
            ty: STy::I32,
            space: Space::Global,
            op: AtomKind::Cas,
            signed: false,
            dst: r3,
            addr: Value::Reg(r0),
            a: Value::ImmI(0),
            b: Some(Value::ImmI(1)),
        });
        body.insts.push(Inst::SetResumePoint { lane: 1, value: Value::ImmI(3) });
        body.insts.push(Inst::SetResumeStatus { status: ResumeStatus::Barrier });
        body.term = Term::CondBr { cond: Value::Reg(r2), taken: BlockId(2), fall: BlockId(2) };
        f.add_block(body);

        let mut exit = Block::new("exit");
        exit.kind = BlockKind::ExitHandler;
        exit.insts.push(Inst::Vote { op: ReduceOp::Any, dst: r2, a: Value::Reg(r2) });
        exit.term = Term::Ret;
        f.add_block(exit);
        f
    }

    #[test]
    fn function_round_trip() {
        let f = sample_function();
        let bytes = function_to_bytes(&f);
        let g = function_from_bytes(&bytes).expect("decode");
        assert_eq!(f, g);
    }

    #[test]
    fn encoding_is_deterministic() {
        let f = sample_function();
        assert_eq!(function_to_bytes(&f), function_to_bytes(&f));
    }

    #[test]
    fn nan_and_negative_zero_survive() {
        let mut f = Function::new("f", 1);
        let r = f.new_reg(Type::scalar(STy::F64));
        let mut b = Block::new("e");
        b.insts.push(Inst::Mov {
            ty: Type::scalar(STy::F64),
            dst: r,
            a: Value::ImmF(f64::from_bits(0x7ff8_dead_beef_0001)),
        });
        b.insts.push(Inst::Mov { ty: Type::scalar(STy::F64), dst: r, a: Value::ImmF(-0.0) });
        b.term = Term::Ret;
        f.add_block(b);
        let g = function_from_bytes(&function_to_bytes(&f)).expect("decode");
        match g.blocks[0].insts[0] {
            Inst::Mov { a: Value::ImmF(v), .. } => {
                assert_eq!(v.to_bits(), 0x7ff8_dead_beef_0001);
            }
            ref other => panic!("unexpected inst {other:?}"),
        }
        match g.blocks[0].insts[1] {
            Inst::Mov { a: Value::ImmF(v), .. } => assert!(v.to_bits() == (-0.0f64).to_bits()),
            ref other => panic!("unexpected inst {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = function_to_bytes(&sample_function());
        for cut in 0..bytes.len() {
            assert!(
                function_from_bytes(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let bytes = function_to_bytes(&sample_function());
        // Flip each byte in turn; decoding must either fail cleanly or
        // produce some (possibly different) function — never panic.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xff;
            let _ = function_from_bytes(&corrupt);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = function_to_bytes(&sample_function());
        bytes.push(0);
        assert!(function_from_bytes(&bytes).is_err());
    }

    #[test]
    fn implausible_length_rejected_quickly() {
        let mut bytes = Vec::new();
        put_str(&mut bytes, "f");
        put_u32(&mut bytes, 1); // warp_size
        put_u32(&mut bytes, u32::MAX); // claimed register count
        assert!(function_from_bytes(&bytes).is_err());
    }
}
