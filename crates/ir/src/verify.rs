//! IR well-formedness verification. Every pass is expected to preserve
//! `verify(f).is_ok()`.

use std::fmt;

use crate::function::Function;
use crate::inst::{BinOp, CtxField, Inst, ReduceOp, Term};
use crate::types::{STy, Type};
use crate::value::{VReg, Value};

/// A verification failure: function, block label and message.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Block label.
    pub block: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in `{}`, block `{}`: {}", self.function, self.block, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify structural and type well-formedness of a function.
///
/// Checks: register indices in range, branch targets in range, operand
/// types consistent with instruction types, scalar conditions on
/// terminators, and lane indices within instruction width.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(VerifyError {
            function: f.name.clone(),
            block: String::new(),
            message: "function has no blocks".into(),
        });
    }
    for block in &f.blocks {
        let fail = |message: String| VerifyError {
            function: f.name.clone(),
            block: block.label.clone(),
            message,
        };
        for inst in &block.insts {
            check_inst(f, inst).map_err(|m| fail(format!("{m}: {inst:?}")))?;
        }
        for target in block.term.successors() {
            if target.index() >= f.blocks.len() {
                return Err(fail(format!("branch target {target} out of range")));
            }
        }
        match &block.term {
            Term::CondBr { cond, .. } => {
                let t = value_type(f, *cond, Type::scalar(STy::I1)).map_err(fail)?;
                if t != Type::scalar(STy::I1) {
                    return Err(fail(format!("cond_br condition has type {t}, expected i1")));
                }
            }
            Term::Switch { value, .. } => {
                if let Value::Reg(r) = value {
                    let t = reg_type(f, *r).map_err(fail)?;
                    if t.is_vector() || t.scalar.is_float() {
                        return Err(fail(format!(
                            "switch value has type {t}, expected scalar int"
                        )));
                    }
                }
            }
            Term::Br(_) | Term::Ret => {}
        }
    }
    Ok(())
}

fn reg_type(f: &Function, r: VReg) -> Result<Type, String> {
    f.regs.get(r.index()).copied().ok_or_else(|| format!("register {r} out of range"))
}

/// Type of a value: register types come from the function; immediates
/// adopt `expected`.
fn value_type(f: &Function, v: Value, expected: Type) -> Result<Type, String> {
    match v {
        Value::Reg(r) => reg_type(f, r),
        Value::ImmI(_) | Value::ImmF(_) => Ok(expected),
    }
}

fn expect(f: &Function, v: Value, expected: Type, what: &str) -> Result<(), String> {
    let t = value_type(f, v, expected)?;
    if t != expected {
        return Err(format!("{what} has type {t}, expected {expected}"));
    }
    // Float immediates in integer positions and vice versa.
    match v {
        Value::ImmF(_) if !expected.scalar.is_float() => {
            Err(format!("{what} is a float immediate at integer type {expected}"))
        }
        _ => Ok(()),
    }
}

fn expect_dst(f: &Function, dst: VReg, expected: Type) -> Result<(), String> {
    let t = reg_type(f, dst)?;
    if t != expected {
        return Err(format!("destination {dst} has type {t}, expected {expected}"));
    }
    Ok(())
}

fn check_inst(f: &Function, inst: &Inst) -> Result<(), String> {
    use Inst::*;
    match inst {
        Bin { op, ty, dst, a, b, .. } => {
            if matches!(op, BinOp::Rem) && ty.scalar.is_float() {
                return Err("rem on float type".into());
            }
            expect_dst(f, *dst, *ty)?;
            expect(f, *a, *ty, "lhs")?;
            // Shift amounts are scalar-typed i32 broadcast per lane; allow
            // the operation type as well for uniformity.
            if matches!(op, BinOp::Shl | BinOp::Shr) {
                let alt = Type { scalar: STy::I32, width: ty.width };
                if expect(f, *b, *ty, "shift amount").is_err() {
                    expect(f, *b, alt, "shift amount")?;
                }
                Ok(())
            } else {
                expect(f, *b, *ty, "rhs")
            }
        }
        Un { op, ty, dst, a } => {
            if op.is_transcendental() && !ty.scalar.is_float() {
                return Err(format!("{op:?} on non-float type {ty}"));
            }
            expect_dst(f, *dst, *ty)?;
            expect(f, *a, *ty, "operand")
        }
        Fma { ty, dst, a, b, c } => {
            expect_dst(f, *dst, *ty)?;
            expect(f, *a, *ty, "a")?;
            expect(f, *b, *ty, "b")?;
            expect(f, *c, *ty, "c")
        }
        Cmp { ty, dst, a, b, .. } => {
            expect_dst(f, *dst, Type { scalar: STy::I1, width: ty.width })?;
            expect(f, *a, *ty, "lhs")?;
            expect(f, *b, *ty, "rhs")
        }
        Select { ty, dst, cond, a, b } => {
            expect_dst(f, *dst, *ty)?;
            expect(f, *cond, Type { scalar: STy::I1, width: ty.width }, "condition")?;
            expect(f, *a, *ty, "true value")?;
            expect(f, *b, *ty, "false value")
        }
        Cvt { to, from, width, dst, a, .. } => {
            expect_dst(f, *dst, Type { scalar: *to, width: *width })?;
            expect(f, *a, Type { scalar: *from, width: *width }, "operand")
        }
        Load { ty, dst, addr, .. } => {
            expect_dst(f, *dst, Type::scalar(*ty))?;
            check_addr(f, *addr)
        }
        Store { ty, addr, value, .. } => {
            check_addr(f, *addr)?;
            expect(f, *value, Type::scalar(*ty), "stored value")
        }
        Atom { ty, dst, addr, a, b, .. } => {
            expect_dst(f, *dst, Type::scalar(*ty))?;
            check_addr(f, *addr)?;
            expect(f, *a, Type::scalar(*ty), "atomic operand")?;
            if let Some(b) = b {
                expect(f, *b, Type::scalar(*ty), "swap value")?;
            }
            Ok(())
        }
        Insert { ty, dst, vec, elem, lane } => {
            if !ty.is_vector() {
                return Err("insertelement requires a vector type".into());
            }
            if *lane >= ty.width {
                return Err(format!("lane {lane} out of range for {ty}"));
            }
            expect_dst(f, *dst, *ty)?;
            expect(f, *vec, *ty, "vector")?;
            expect(f, *elem, ty.element(), "element")
        }
        Extract { ty, dst, vec, lane } => {
            if !ty.is_vector() {
                return Err("extractelement requires a vector type".into());
            }
            if *lane >= ty.width {
                return Err(format!("lane {lane} out of range for {ty}"));
            }
            expect_dst(f, *dst, ty.element())?;
            expect(f, *vec, *ty, "vector")
        }
        Splat { ty, dst, a } => {
            if !ty.is_vector() {
                return Err("splat requires a vector type".into());
            }
            expect_dst(f, *dst, *ty)?;
            expect(f, *a, ty.element(), "broadcast value")
        }
        Reduce { op, ty, dst, vec } => {
            if !ty.is_vector() {
                return Err("reduce requires a vector type".into());
            }
            let dst_ty = match op {
                ReduceOp::Add => Type::scalar(STy::I32),
                ReduceOp::All | ReduceOp::Any => Type::scalar(STy::I1),
            };
            expect_dst(f, *dst, dst_ty)?;
            expect(f, *vec, *ty, "vector")
        }
        CtxRead { field, lane, dst } => {
            let want = match field {
                CtxField::LocalBase => Type::scalar(STy::I64),
                _ => Type::scalar(STy::I32),
            };
            let _ = lane;
            expect_dst(f, *dst, want)
        }
        SetResumePoint { value, .. } => {
            // Any scalar integer value is acceptable.
            if let Value::Reg(r) = value {
                let t = reg_type(f, *r)?;
                if t.is_vector() || t.scalar.is_float() {
                    return Err(format!("resume point has type {t}, expected scalar int"));
                }
            }
            Ok(())
        }
        SetResumeStatus { .. } => Ok(()),
        Vote { dst, a, .. } => {
            expect_dst(f, *dst, Type::scalar(STy::I1))?;
            expect(f, *a, Type::scalar(STy::I1), "vote operand")
        }
        Mov { ty, dst, a } => {
            expect_dst(f, *dst, *ty)?;
            expect(f, *a, *ty, "source")
        }
    }
}

fn check_addr(f: &Function, addr: Value) -> Result<(), String> {
    match addr {
        Value::Reg(r) => {
            let t = reg_type(f, r)?;
            if t.is_vector() || t.scalar.is_float() {
                return Err(format!("address has type {t}, expected scalar int"));
            }
            Ok(())
        }
        Value::ImmI(_) => Ok(()),
        Value::ImmF(_) => Err("address is a float immediate".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{BinOp, UnOp};

    fn func_with(insts: Vec<Inst>, regs: Vec<Type>) -> Function {
        let mut f = Function::new("t", 1);
        f.regs = regs;
        let mut b = Block::new("entry");
        b.insts = insts;
        b.term = Term::Ret;
        f.add_block(b);
        f
    }

    #[test]
    fn accepts_well_typed() {
        let f = func_with(
            vec![Inst::Bin {
                op: BinOp::Add,
                ty: Type::scalar(STy::I32),
                signed: false,
                dst: VReg(0),
                a: Value::ImmI(1),
                b: Value::ImmI(2),
            }],
            vec![Type::scalar(STy::I32)],
        );
        verify(&f).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let f = func_with(
            vec![Inst::Bin {
                op: BinOp::Add,
                ty: Type::scalar(STy::F32),
                signed: false,
                dst: VReg(0),
                a: Value::ImmF(1.0),
                b: Value::ImmF(2.0),
            }],
            vec![Type::scalar(STy::I32)],
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_out_of_range_register() {
        let f = func_with(
            vec![Inst::Mov { ty: Type::scalar(STy::I32), dst: VReg(5), a: Value::ImmI(0) }],
            vec![Type::scalar(STy::I32)],
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut f = Function::new("t", 1);
        let mut b = Block::new("entry");
        b.term = Term::Br(crate::BlockId(9));
        f.add_block(b);
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_vector_condition() {
        let mut f = Function::new("t", 1);
        let c = f.new_reg(Type::vector(STy::I1, 4));
        let mut b = Block::new("entry");
        b.term =
            Term::CondBr { cond: Value::Reg(c), taken: crate::BlockId(0), fall: crate::BlockId(0) };
        f.add_block(b);
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_lane_out_of_range() {
        let mut f = Function::new("t", 1);
        let v = f.new_reg(Type::vector(STy::F32, 2));
        let d = f.new_reg(Type::scalar(STy::F32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Extract {
            ty: Type::vector(STy::F32, 2),
            dst: d,
            vec: Value::Reg(v),
            lane: 2,
        });
        f.add_block(b);
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_float_rem() {
        let f = func_with(
            vec![Inst::Bin {
                op: BinOp::Rem,
                ty: Type::scalar(STy::F32),
                signed: false,
                dst: VReg(0),
                a: Value::ImmF(1.0),
                b: Value::ImmF(2.0),
            }],
            vec![Type::scalar(STy::F32)],
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_int_transcendental() {
        let f = func_with(
            vec![Inst::Un {
                op: UnOp::Sin,
                ty: Type::scalar(STy::I32),
                dst: VReg(0),
                a: Value::ImmI(1),
            }],
            vec![Type::scalar(STy::I32)],
        );
        assert!(verify(&f).is_err());
    }
}
