//! # dpvk-ir
//!
//! A typed, register-machine intermediate representation with first-class
//! vector types — the compilation substrate of the CGO 2012 reproduction
//! ("Dynamic Compilation of Data-Parallel Kernels for Vector Processors").
//! It plays the role LLVM IR plays in the paper: scalar kernels are lowered
//! into it, the vectorization transform rewrites it, and a verifier plus a
//! pipeline of classical optimizations (constant folding, local CSE with
//! copy propagation, dead-code elimination, basic-block fusion) clean up
//! the result before execution.
//!
//! Key design points:
//!
//! * **Register machine, not SSA.** Registers are typed
//!   ([`Type`] = scalar kind × lane count) and may be redefined; the
//!   optimization passes use block-local versioning to stay sound.
//! * **Scalar memory ops.** Loads and stores are always scalar — the
//!   modeled machines (SSE-class) have no gather/scatter, so vectorization
//!   replicates memory operations per lane and packs/unpacks with
//!   [`Inst::Insert`]/[`Inst::Extract`] (paper, Section 4).
//! * **Yield support.** [`Inst::SetResumePoint`], [`Inst::SetResumeStatus`]
//!   and the [`CtxField::EntryId`] context read give the vectorizer the
//!   vocabulary for *yield-on-diverge* exit/entry handlers.
//!
//! ## Example
//!
//! ```
//! use dpvk_ir::{Block, Function, Inst, Term, Type, STy, Value, BinOp};
//!
//! let mut f = Function::new("axpy_body", 1);
//! let x = f.new_reg(Type::scalar(STy::F32));
//! let y = f.new_reg(Type::scalar(STy::F32));
//! let mut b = Block::new("entry");
//! b.insts.push(Inst::Bin {
//!     op: BinOp::Add,
//!     ty: Type::scalar(STy::F32),
//!     signed: false,
//!     dst: y,
//!     a: Value::Reg(x),
//!     b: Value::ImmF(1.0),
//! });
//! b.term = Term::Ret;
//! f.add_block(b);
//! dpvk_ir::verify(&f)?;
//! # Ok::<(), dpvk_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]

mod analysis;
mod function;
mod inst;
mod printer;
mod types;
mod value;
mod verify;

pub mod opt;
pub mod serial;

pub use analysis::{max_live_vector_regs, use_counts, Liveness};
pub use function::{Block, BlockKind, Function};
pub use inst::{
    AtomKind, BinOp, BlockId, CmpPred, CtxField, Inst, ReduceOp, ResumeStatus, Space, Term, UnOp,
    EXIT_ENTRY_ID,
};
pub use printer::print_function;
pub use types::{STy, Type};
pub use value::{VReg, Value};
pub use verify::{verify, VerifyError};
