//! IR instructions and block terminators.

use std::fmt;

use crate::types::{STy, Type};
use crate::value::{VReg, Value};

/// Binary arithmetic/logic operators. Signedness, where it matters, is
/// carried by the instruction's `signed` flag; float-ness by its type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low half for integers).
    Mul,
    /// High half of the widened integer product.
    MulHi,
    /// Division.
    Div,
    /// Remainder (integers only).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic when `signed`, logical otherwise).
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not (logical not on `i1`).
    Not,
    /// Absolute value.
    Abs,
    /// Square root (floats).
    Sqrt,
    /// Reciprocal square root (floats).
    Rsqrt,
    /// Reciprocal (floats).
    Rcp,
    /// Sine (floats, radians).
    Sin,
    /// Cosine (floats, radians).
    Cos,
    /// Base-2 exponential (floats).
    Ex2,
    /// Base-2 logarithm (floats).
    Lg2,
}

impl UnOp {
    /// Whether the operator is one of the transcendental/special functions
    /// (costed differently by the machine model).
    pub fn is_transcendental(self) -> bool {
        matches!(
            self,
            UnOp::Sqrt | UnOp::Rsqrt | UnOp::Rcp | UnOp::Sin | UnOp::Cos | UnOp::Ex2 | UnOp::Lg2
        )
    }
}

/// Comparison predicates (signedness from the instruction's flag,
/// orderedness from the type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Memory spaces, mirroring the virtual ISA's state spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Grid-wide weakly consistent memory.
    Global,
    /// Per-CTA scratchpad.
    Shared,
    /// Per-thread private memory (holds spill slots).
    Local,
    /// Read-only parameter buffer.
    Param,
    /// Read-only constant bank.
    Const,
}

/// Atomic read-modify-write kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomKind {
    /// Fetch-add.
    Add,
    /// Fetch-min.
    Min,
    /// Fetch-max.
    Max,
    /// Exchange.
    Exch,
    /// Compare-and-swap.
    Cas,
}

/// Horizontal reduction kinds over vector lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Integer sum of lanes (predicates count as 0/1). This is the
    /// `sum(predicates)` of the paper's Algorithm 2.
    Add,
    /// True when all lanes are non-zero.
    All,
    /// True when any lane is non-zero.
    Any,
}

/// Per-thread context fields readable by kernels.
///
/// The execution manager materializes one context object per thread; the
/// `lane` index on [`Inst::CtxRead`] selects which warp member's context is
/// read. Scalar (pre-vectorization) functions always use lane 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtxField {
    /// Thread index within the CTA, dimension 0..=2.
    Tid(u8),
    /// CTA dimensions, dimension 0..=2.
    Ntid(u8),
    /// CTA index within the grid, dimension 0..=2.
    Ctaid(u8),
    /// Grid dimensions in CTAs, dimension 0..=2.
    Nctaid(u8),
    /// Byte offset of this thread's private memory within the local arena.
    LocalBase,
    /// Lane index of the thread within the executing warp.
    LaneId,
    /// Width of the executing warp.
    WarpSize,
    /// The warp's current entry-point id (used by the scheduler block).
    EntryId,
}

/// Why a vectorized kernel returned to the execution manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResumeStatus {
    /// Threads diverged (or branched to a yield point); per-thread resume
    /// points say where each continues.
    Branch,
    /// Threads reached a CTA-wide barrier.
    Barrier,
    /// Threads terminated.
    Exit,
}

/// Entry id recorded for a terminated thread. Chosen to fit in `i32`
/// because resume points flow through `i32`-typed `select` instructions in
/// exit handlers.
pub const EXIT_ENTRY_ID: i64 = i32::MAX as i64;

/// One (non-terminator) IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = a <op> b` at type `ty` (element-wise for vectors).
    Bin {
        /// Operator.
        op: BinOp,
        /// Operation type.
        ty: Type,
        /// Signed interpretation for Div/Rem/Shr/Min/Max/MulHi.
        signed: bool,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// `dst = <op> a` at type `ty`.
    Un {
        /// Operator.
        op: UnOp,
        /// Operation type.
        ty: Type,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: Value,
    },
    /// Fused multiply-add `dst = a*b + c` (floats) or integer
    /// multiply-add (low half).
    Fma {
        /// Operation type.
        ty: Type,
        /// Destination.
        dst: VReg,
        /// Multiplicand.
        a: Value,
        /// Multiplier.
        b: Value,
        /// Addend.
        c: Value,
    },
    /// `dst = a <pred> b`, producing `i1` (or `<w x i1>`).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Operand type.
        ty: Type,
        /// Signed integer comparison when true.
        signed: bool,
        /// Destination (`i1` at the operand's width).
        dst: VReg,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// `dst = cond ? a : b`, lane-wise for vectors.
    Select {
        /// Result type.
        ty: Type,
        /// Destination.
        dst: VReg,
        /// Condition (`i1` at the result width).
        cond: Value,
        /// Value when true.
        a: Value,
        /// Value when false.
        b: Value,
    },
    /// Element-kind conversion, lane-wise.
    Cvt {
        /// Destination element kind.
        to: STy,
        /// Source element kind.
        from: STy,
        /// Signed source interpretation.
        signed: bool,
        /// Lane count (shared by source and destination).
        width: u32,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: Value,
    },
    /// Scalar load `dst = [addr]` from `space`. Loads are never vector:
    /// the machine model has no gather (paper, Section 4,
    /// "Non-vectorizable Instructions").
    Load {
        /// Element kind.
        ty: STy,
        /// Address space.
        space: Space,
        /// Destination.
        dst: VReg,
        /// Byte address within the space.
        addr: Value,
    },
    /// Scalar store `[addr] = value` to `space`.
    Store {
        /// Element kind.
        ty: STy,
        /// Address space.
        space: Space,
        /// Byte address within the space.
        addr: Value,
        /// Stored value.
        value: Value,
    },
    /// Atomic read-modify-write; `dst` receives the old value. `b` is only
    /// used by `Cas` (the swap value; `a` is the compare value).
    Atom {
        /// Element kind.
        ty: STy,
        /// Address space.
        space: Space,
        /// Operation.
        op: AtomKind,
        /// Signed interpretation for Min/Max.
        signed: bool,
        /// Destination (old value).
        dst: VReg,
        /// Byte address within the space.
        addr: Value,
        /// First operand.
        a: Value,
        /// Second operand (CAS swap value only).
        b: Option<Value>,
    },
    /// `dst = insertelement(vec, elem, lane)`.
    Insert {
        /// Vector type of the destination.
        ty: Type,
        /// Destination.
        dst: VReg,
        /// Source vector (may be a register or an immediate splat base).
        vec: Value,
        /// Inserted element.
        elem: Value,
        /// Lane index.
        lane: u32,
    },
    /// `dst = extractelement(vec, lane)`.
    Extract {
        /// Vector type of the source.
        ty: Type,
        /// Destination (scalar).
        dst: VReg,
        /// Source vector.
        vec: Value,
        /// Lane index.
        lane: u32,
    },
    /// `dst = splat(a)` broadcasting a scalar to all lanes.
    Splat {
        /// Vector type of the destination.
        ty: Type,
        /// Destination.
        dst: VReg,
        /// Broadcast scalar.
        a: Value,
    },
    /// Horizontal reduction of a vector to a scalar.
    Reduce {
        /// Reduction kind.
        op: ReduceOp,
        /// Source vector type.
        ty: Type,
        /// Destination (scalar `i32` for Add, `i1` for All/Any).
        dst: VReg,
        /// Source vector.
        vec: Value,
    },
    /// Read a per-thread context field of warp member `lane`.
    CtxRead {
        /// Field to read.
        field: CtxField,
        /// Warp member whose context is read.
        lane: u32,
        /// Destination (scalar; `i32` except `LocalBase` which is `i64`).
        dst: VReg,
    },
    /// Record the resume entry-point id of warp member `lane`.
    SetResumePoint {
        /// Warp member whose resume point is set.
        lane: u32,
        /// Entry id value ([`EXIT_ENTRY_ID`] marks termination).
        value: Value,
    },
    /// Record why the warp is returning to the execution manager.
    SetResumeStatus {
        /// The status.
        status: ResumeStatus,
    },
    /// Warp-wide vote over a per-thread predicate. In scalar (width-1)
    /// functions this is the identity; the vectorizer rewrites it into
    /// pack + [`Inst::Reduce`] + broadcast.
    Vote {
        /// Reduction kind (All/Any/Uni encoded as All over agreement).
        op: ReduceOp,
        /// Destination predicate.
        dst: VReg,
        /// Source predicate.
        a: Value,
    },
    /// Register copy.
    Mov {
        /// Value type.
        ty: Type,
        /// Destination.
        dst: VReg,
        /// Source.
        a: Value,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn dst(&self) -> Option<VReg> {
        use Inst::*;
        match self {
            Bin { dst, .. }
            | Un { dst, .. }
            | Fma { dst, .. }
            | Cmp { dst, .. }
            | Select { dst, .. }
            | Cvt { dst, .. }
            | Load { dst, .. }
            | Atom { dst, .. }
            | Insert { dst, .. }
            | Extract { dst, .. }
            | Splat { dst, .. }
            | Reduce { dst, .. }
            | CtxRead { dst, .. }
            | Vote { dst, .. }
            | Mov { dst, .. } => Some(*dst),
            Store { .. } | SetResumePoint { .. } | SetResumeStatus { .. } => None,
        }
    }

    /// Mutable access to the defined register, if any.
    pub fn dst_mut(&mut self) -> Option<&mut VReg> {
        use Inst::*;
        match self {
            Bin { dst, .. }
            | Un { dst, .. }
            | Fma { dst, .. }
            | Cmp { dst, .. }
            | Select { dst, .. }
            | Cvt { dst, .. }
            | Load { dst, .. }
            | Atom { dst, .. }
            | Insert { dst, .. }
            | Extract { dst, .. }
            | Splat { dst, .. }
            | Reduce { dst, .. }
            | CtxRead { dst, .. }
            | Vote { dst, .. }
            | Mov { dst, .. } => Some(dst),
            Store { .. } | SetResumePoint { .. } | SetResumeStatus { .. } => None,
        }
    }

    /// The values this instruction uses, in operand order.
    pub fn uses(&self) -> Vec<Value> {
        use Inst::*;
        match self {
            Bin { a, b, .. } | Cmp { a, b, .. } => vec![*a, *b],
            Un { a, .. } | Cvt { a, .. } | Splat { a, .. } | Vote { a, .. } | Mov { a, .. } => {
                vec![*a]
            }
            Fma { a, b, c, .. } => vec![*a, *b, *c],
            Select { cond, a, b, .. } => vec![*cond, *a, *b],
            Load { addr, .. } => vec![*addr],
            Store { addr, value, .. } => vec![*addr, *value],
            Atom { addr, a, b, .. } => {
                let mut v = vec![*addr, *a];
                if let Some(b) = b {
                    v.push(*b);
                }
                v
            }
            Insert { vec, elem, .. } => vec![*vec, *elem],
            Extract { vec, .. } | Reduce { vec, .. } => vec![*vec],
            CtxRead { .. } | SetResumeStatus { .. } => vec![],
            SetResumePoint { value, .. } => vec![*value],
        }
    }

    /// Apply `f` to every used value in place.
    pub fn map_uses(&mut self, mut f: impl FnMut(&mut Value)) {
        use Inst::*;
        match self {
            Bin { a, b, .. } | Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Un { a, .. } | Cvt { a, .. } | Splat { a, .. } | Vote { a, .. } | Mov { a, .. } => f(a),
            Fma { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Select { cond, a, b, .. } => {
                f(cond);
                f(a);
                f(b);
            }
            Load { addr, .. } => f(addr),
            Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Atom { addr, a, b, .. } => {
                f(addr);
                f(a);
                if let Some(b) = b {
                    f(b);
                }
            }
            Insert { vec, elem, .. } => {
                f(vec);
                f(elem);
            }
            Extract { vec, .. } | Reduce { vec, .. } => f(vec),
            CtxRead { .. } | SetResumeStatus { .. } => {}
            SetResumePoint { value, .. } => f(value),
        }
    }

    /// Whether this instruction has side effects beyond defining `dst`
    /// (memory writes, context writes, atomics).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Atom { .. }
                | Inst::SetResumePoint { .. }
                | Inst::SetResumeStatus { .. }
        )
    }

    /// Whether this instruction reads memory (loads and atomics).
    pub fn reads_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Atom { .. })
    }
}

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Br(BlockId),
    /// Two-way conditional jump on a scalar `i1`.
    CondBr {
        /// Condition.
        cond: Value,
        /// Target when true.
        taken: BlockId,
        /// Target when false.
        fall: BlockId,
    },
    /// Multi-way jump on a scalar integer.
    Switch {
        /// Discriminant.
        value: Value,
        /// `(case value, target)` pairs.
        cases: Vec<(i64, BlockId)>,
        /// Default target.
        default: BlockId,
    },
    /// Return to the execution manager.
    Ret,
}

impl Term {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr { taken, fall, .. } => vec![*taken, *fall],
            Term::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Term::Ret => vec![],
        }
    }

    /// The values this terminator uses.
    pub fn uses(&self) -> Vec<Value> {
        match self {
            Term::CondBr { cond, .. } => vec![*cond],
            Term::Switch { value, .. } => vec![*value],
            Term::Br(_) | Term::Ret => vec![],
        }
    }

    /// Rewrite every successor block id with `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Term::Br(b) => *b = f(*b),
            Term::CondBr { taken, fall, .. } => {
                *taken = f(*taken);
                *fall = f(*fall);
            }
            Term::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    *b = f(*b);
                }
                *default = f(*default);
            }
            Term::Ret => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: VReg(2),
            a: Value::Reg(VReg(0)),
            b: Value::ImmI(4),
        };
        assert_eq!(i.dst(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![Value::Reg(VReg(0)), Value::ImmI(4)]);
        assert!(!i.has_side_effects());
    }

    #[test]
    fn store_has_no_dst_and_side_effects() {
        let s = Inst::Store {
            ty: STy::F32,
            space: Space::Global,
            addr: Value::Reg(VReg(1)),
            value: Value::Reg(VReg(2)),
        };
        assert_eq!(s.dst(), None);
        assert!(s.has_side_effects());
        assert_eq!(s.uses().len(), 2);
    }

    #[test]
    fn map_uses_rewrites_all() {
        let mut i = Inst::Select {
            ty: Type::scalar(STy::F32),
            dst: VReg(5),
            cond: Value::Reg(VReg(1)),
            a: Value::Reg(VReg(2)),
            b: Value::Reg(VReg(3)),
        };
        i.map_uses(|v| {
            if let Value::Reg(r) = v {
                *v = Value::Reg(VReg(r.0 + 10));
            }
        });
        assert_eq!(
            i.uses(),
            vec![Value::Reg(VReg(11)), Value::Reg(VReg(12)), Value::Reg(VReg(13))]
        );
    }

    #[test]
    fn term_successors() {
        let t = Term::Switch {
            value: Value::Reg(VReg(0)),
            cases: vec![(0, BlockId(1)), (4, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(Term::Ret.successors(), vec![]);
    }

    #[test]
    fn term_map_targets() {
        let mut t = Term::CondBr { cond: Value::Reg(VReg(0)), taken: BlockId(1), fall: BlockId(2) };
        t.map_targets(|b| BlockId(b.0 + 1));
        assert_eq!(t.successors(), vec![BlockId(2), BlockId(3)]);
    }

    #[test]
    fn atom_cas_uses_three() {
        let i = Inst::Atom {
            ty: STy::I32,
            space: Space::Global,
            op: AtomKind::Cas,
            signed: false,
            dst: VReg(0),
            addr: Value::Reg(VReg(1)),
            a: Value::ImmI(0),
            b: Some(Value::ImmI(1)),
        };
        assert_eq!(i.uses().len(), 3);
        assert!(i.reads_memory());
    }
}
