//! Functions and basic blocks.

use crate::inst::{BlockId, Inst, Term};
use crate::types::Type;
use crate::value::VReg;

/// Role of a block, used for cycle attribution in the machine model
/// (the paper's Figure 9 separates subkernel execution from yield
/// save/restore overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Ordinary kernel code.
    Body,
    /// The compiler-inserted scheduler (trampoline) block.
    Scheduler,
    /// An entry handler restoring live state from thread-local memory.
    EntryHandler,
    /// An exit handler spilling live state before yielding.
    ExitHandler,
}

/// A basic block: label, role, straight-line instructions, terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Label for printing and debugging.
    pub label: String,
    /// Role of the block.
    pub kind: BlockKind,
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

impl Block {
    /// Create an empty body block ending in `Ret` (replace the terminator
    /// while building).
    pub fn new(label: impl Into<String>) -> Self {
        Block { label: label.into(), kind: BlockKind::Body, insts: Vec::new(), term: Term::Ret }
    }
}

/// An IR function: a register file typed per virtual register and a list
/// of basic blocks, entered at block 0.
///
/// The implicit signature of every function is
/// `(warp: &[ThreadContext], entry_id: i64) -> (ResumeStatus, resume points)`
/// — the interpreter in `dpvk-vm` supplies the contexts and reads back the
/// yield information written by [`Inst::SetResumePoint`] and
/// [`Inst::SetResumeStatus`].
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (kernel name plus specialization tag).
    pub name: String,
    /// Warp width this function was specialized for (1 = scalar).
    pub warp_size: u32,
    /// Type of each virtual register, indexed by [`VReg`].
    pub regs: Vec<Type>,
    /// Basic blocks; index 0 is the entry (the scheduler block in
    /// vectorized functions).
    pub blocks: Vec<Block>,
}

impl Function {
    /// Create an empty function.
    pub fn new(name: impl Into<String>, warp_size: u32) -> Self {
        Function { name: name.into(), warp_size, regs: Vec::new(), blocks: Vec::new() }
    }

    /// Allocate a fresh virtual register of the given type.
    pub fn new_reg(&mut self, ty: Type) -> VReg {
        let r = VReg(self.regs.len() as u32);
        self.regs.push(ty);
        r
    }

    /// Type of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register is out of range.
    pub fn reg_type(&self, r: VReg) -> Type {
        self.regs[r.index()]
    }

    /// Append a block, returning its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Find a block id by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.label == label).map(|i| BlockId(i as u32))
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry; unreachable blocks are
    /// appended in index order.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        if n > 0 {
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            visited[0] = true;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let succs = self.blocks[b.index()].term.successors();
                if *next < succs.len() {
                    let s = succs[*next];
                    *next += 1;
                    if !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        for (i, seen) in visited.iter().enumerate() {
            if !seen {
                post.push(BlockId(i as u32));
            }
        }
        post
    }

    /// Total instruction count (terminators excluded).
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Term;
    use crate::types::{STy, Type};

    #[test]
    fn register_allocation() {
        let mut f = Function::new("f", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let b = f.new_reg(Type::vector(STy::F32, 4));
        assert_ne!(a, b);
        assert_eq!(f.reg_type(b), Type::vector(STy::F32, 4));
    }

    #[test]
    fn rpo_and_preds() {
        let mut f = Function::new("f", 1);
        let mut b0 = Block::new("entry");
        let b1 = Block::new("then");
        let mut b2 = Block::new("join");
        b2.term = Term::Ret;
        // entry -> (then | join), then -> join
        let id0 = f.add_block(Block::new("placeholder"));
        let id1 = f.add_block(b1);
        let id2 = f.add_block(b2);
        b0.term = Term::CondBr { cond: crate::Value::ImmI(1), taken: id1, fall: id2 };
        f.blocks[id0.index()] = b0;
        f.block_mut(id1).term = Term::Br(id2);

        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], id0);
        assert_eq!(rpo.len(), 3);
        let preds = f.predecessors();
        assert_eq!(preds[id2.index()].len(), 2);
    }

    #[test]
    fn block_lookup_by_label() {
        let mut f = Function::new("f", 2);
        f.add_block(Block::new("a"));
        f.add_block(Block::new("b"));
        assert_eq!(f.block_by_label("b"), Some(BlockId(1)));
        assert_eq!(f.block_by_label("c"), None);
    }
}
