//! Human-readable printing of IR functions for debugging and snapshots.

use std::fmt::Write as _;

use crate::function::{BlockKind, Function};
use crate::inst::{Inst, Term};

/// Render a function as readable text.
pub fn print_function(f: &Function) -> String {
    let mut s = String::new();
    writeln!(s, "fn {} (warp_size={}) {{", f.name, f.warp_size).expect("string write");
    for (i, b) in f.blocks.iter().enumerate() {
        let kind = match b.kind {
            BlockKind::Body => "",
            BlockKind::Scheduler => "  ; scheduler",
            BlockKind::EntryHandler => "  ; entry handler",
            BlockKind::ExitHandler => "  ; exit handler",
        };
        writeln!(s, "b{i} ({}):{kind}", b.label).expect("string write");
        for inst in &b.insts {
            writeln!(s, "  {}", render_inst(f, inst)).expect("string write");
        }
        writeln!(s, "  {}", render_term(&b.term)).expect("string write");
    }
    s.push_str("}\n");
    s
}

fn render_inst(f: &Function, inst: &Inst) -> String {
    use Inst::*;
    let ty_of = |r: crate::VReg| f.reg_type(r);
    match inst {
        Bin { op, ty, signed, dst, a, b } => {
            format!("{dst} = {op:?}.{ty}{} {a}, {b}", if *signed { ".s" } else { "" })
        }
        Un { op, ty, dst, a } => format!("{dst} = {op:?}.{ty} {a}"),
        Fma { ty, dst, a, b, c } => format!("{dst} = fma.{ty} {a}, {b}, {c}"),
        Cmp { pred, ty, signed, dst, a, b } => {
            format!("{dst} = cmp.{pred:?}.{ty}{} {a}, {b}", if *signed { ".s" } else { "" })
        }
        Select { ty, dst, cond, a, b } => format!("{dst} = select.{ty} {cond}, {a}, {b}"),
        Cvt { to, from, signed, width, dst, a } => {
            format!("{dst} = cvt.{to}.{from}{} x{width} {a}", if *signed { ".s" } else { "" })
        }
        Load { ty, space, dst, addr } => format!("{dst} = ld.{space:?}.{ty} [{addr}]"),
        Store { ty, space, addr, value } => format!("st.{space:?}.{ty} [{addr}], {value}"),
        Atom { ty, space, op, dst, addr, a, b, .. } => {
            let extra = b.map(|b| format!(", {b}")).unwrap_or_default();
            format!("{dst} = atom.{space:?}.{op:?}.{ty} [{addr}], {a}{extra}")
        }
        Insert { ty, dst, vec, elem, lane } => {
            format!("{dst} = insert.{ty} {vec}, {elem}, lane {lane}")
        }
        Extract { ty, dst, vec, lane } => format!("{dst} = extract.{ty} {vec}, lane {lane}"),
        Splat { ty, dst, a } => format!("{dst} = splat.{ty} {a}"),
        Reduce { op, ty, dst, vec } => format!("{dst} = reduce.{op:?}.{ty} {vec}"),
        CtxRead { field, lane, dst } => {
            format!("{dst} = ctx[{lane}].{field:?} : {}", ty_of(*dst))
        }
        SetResumePoint { lane, value } => format!("ctx[{lane}].resume_point = {value}"),
        SetResumeStatus { status } => format!("resume_status = {status:?}"),
        Vote { op, dst, a } => format!("{dst} = vote.{op:?} {a}"),
        Mov { ty, dst, a } => format!("{dst} = mov.{ty} {a}"),
    }
}

fn render_term(t: &Term) -> String {
    match t {
        Term::Br(b) => format!("br {b}"),
        Term::CondBr { cond, taken, fall } => format!("br {cond}, {taken}, {fall}"),
        Term::Switch { value, cases, default } => {
            let cs: Vec<String> = cases.iter().map(|(v, b)| format!("{v} -> {b}")).collect();
            format!("switch {value} [{}], default {default}", cs.join(", "))
        }
        Term::Ret => "ret".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{BinOp, BlockId};
    use crate::types::{STy, Type};
    use crate::value::Value;

    #[test]
    fn prints_every_block_and_inst() {
        let mut f = Function::new("demo", 2);
        let a = f.new_reg(Type::vector(STy::F32, 2));
        let mut b0 = Block::new("entry");
        b0.insts.push(Inst::Splat { ty: Type::vector(STy::F32, 2), dst: a, a: Value::ImmF(0.0) });
        b0.term = Term::Br(BlockId(1));
        f.add_block(b0);
        let mut b1 = Block::new("exit");
        b1.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::vector(STy::F32, 2),
            signed: false,
            dst: a,
            a: Value::Reg(a),
            b: Value::Reg(a),
        });
        b1.term = Term::Ret;
        f.add_block(b1);

        let text = print_function(&f);
        assert!(text.contains("fn demo (warp_size=2)"));
        assert!(text.contains("splat.<2 x f32>"));
        assert!(text.contains("br b1"));
        assert!(text.contains("ret"));
    }
}
