//! The memory system: a shared global arena plus per-CTA and per-thread
//! spaces threaded through the interpreter by reference.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dpvk_ir::Space;

use crate::error::VmError;

/// Grid-wide global memory with the paper's weakly consistent semantics:
/// worker threads access it concurrently without synchronization, and
/// cross-CTA visibility is only guaranteed at kernel boundaries.
///
/// Bounds are always checked; data races between threads of *different*
/// CTAs writing the same location are the kernel's responsibility, exactly
/// as on the modeled hardware.
#[derive(Debug)]
pub struct GlobalMem {
    bytes: UnsafeCell<Box<[u8]>>,
    len: usize,
}

// SAFETY: access is bounds-checked, and the execution model (weakly
// consistent global memory, synchronization only at kernel boundaries)
// makes concurrent mutation part of the contract. Torn reads can only be
// observed by racy kernels, matching real GPU/CPU behaviour for such code.
unsafe impl Send for GlobalMem {}
unsafe impl Sync for GlobalMem {}

impl GlobalMem {
    /// Allocate a zeroed global arena of `size` bytes.
    pub fn new(size: usize) -> Arc<Self> {
        Arc::new(GlobalMem {
            bytes: UnsafeCell::new(vec![0u8; size].into_boxed_slice()),
            len: size,
        })
    }

    /// Base pointer of the arena.
    fn base(&self) -> *mut u8 {
        // SAFETY: the boxed slice is never reallocated after construction.
        unsafe { (*self.bytes.get()).as_mut_ptr() }
    }

    /// Size of the arena in bytes.
    pub fn size(&self) -> usize {
        self.len
    }

    /// Raw base/len of the arena, used by the JIT tier's inline
    /// bounds-checked address computations (the JIT mirrors [`Self::check`]
    /// in generated code).
    pub(crate) fn raw_parts(&self) -> (*mut u8, usize) {
        (self.base(), self.len)
    }

    fn check(&self, addr: u64, size: usize) -> Result<usize, VmError> {
        let len = self.size();
        let addr_usize = addr as usize;
        // A zero-sized access still names the byte at `addr`, so `addr ==
        // len` is rejected even though the empty range [len, len) would fit.
        let in_bounds = match addr_usize.checked_add(size) {
            Some(end) => end <= len && (size > 0 || addr_usize < len),
            None => false,
        };
        if in_bounds {
            Ok(addr_usize)
        } else {
            Err(VmError::OutOfBounds { space: Space::Global, addr, size, space_size: len })
        }
    }

    /// Read `N` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] when the access exceeds the arena.
    pub fn read<const N: usize>(&self, addr: u64) -> Result<[u8; N], VmError> {
        let off = self.check(addr, N)?;
        let mut out = [0u8; N];
        // SAFETY: bounds checked; concurrent access is part of the model.
        unsafe {
            std::ptr::copy_nonoverlapping(self.base().add(off), out.as_mut_ptr(), N);
        }
        Ok(out)
    }

    /// Write `N` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] when the access exceeds the arena.
    pub fn write<const N: usize>(&self, addr: u64, data: [u8; N]) -> Result<(), VmError> {
        let off = self.check(addr, N)?;
        // SAFETY: bounds checked; concurrent access is part of the model.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.base().add(off), N);
        }
        Ok(())
    }

    /// Copy host data into the arena (the `cudaMemcpy` host→device analog).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] when the copy exceeds the arena.
    pub fn copy_in(&self, addr: u64, data: &[u8]) -> Result<(), VmError> {
        let off = self.check(addr, data.len())?;
        // SAFETY: bounds checked; called between kernels by the host.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.base().add(off), data.len());
        }
        Ok(())
    }

    /// Copy arena data out to the host (device→host).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] when the copy exceeds the arena.
    pub fn copy_out(&self, addr: u64, out: &mut [u8]) -> Result<(), VmError> {
        let off = self.check(addr, out.len())?;
        // SAFETY: bounds checked; called between kernels by the host.
        unsafe {
            std::ptr::copy_nonoverlapping(self.base().add(off), out.as_mut_ptr(), out.len());
        }
        Ok(())
    }

    /// Zero `len` bytes starting at `addr` (the `cudaMemset(0)` analog).
    ///
    /// The device allocator uses this to re-establish the
    /// fresh-allocations-are-zeroed invariant when it recycles a freed
    /// block, so reuse is indistinguishable from a bump allocation.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] when the range exceeds the arena.
    pub fn fill_zero(&self, addr: u64, len: usize) -> Result<(), VmError> {
        let off = self.check(addr, len)?;
        // SAFETY: bounds checked; called between kernels by the host.
        unsafe {
            std::ptr::write_bytes(self.base().add(off), 0, len);
        }
        Ok(())
    }

    /// Atomically apply `f` to the aligned `u32` at `addr`, returning the
    /// previous value.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Unsupported`] for misaligned addresses and
    /// [`VmError::OutOfBounds`] for out-of-range ones.
    pub fn atomic_rmw_u32(&self, addr: u64, mut f: impl FnMut(u32) -> u32) -> Result<u32, VmError> {
        let off = self.check(addr, 4)?;
        if off % 4 != 0 {
            return Err(VmError::Unsupported(format!("misaligned u32 atomic at {addr:#x}")));
        }
        // SAFETY: in-bounds and aligned; AtomicU32 has the same layout as u32.
        let atom = unsafe { &*(self.base().add(off) as *const AtomicU32) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let new = f(cur);
            match atom.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prev) => return Ok(prev),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Atomically apply `f` to the aligned `u64` at `addr`, returning the
    /// previous value.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Unsupported`] for misaligned addresses and
    /// [`VmError::OutOfBounds`] for out-of-range ones.
    pub fn atomic_rmw_u64(&self, addr: u64, mut f: impl FnMut(u64) -> u64) -> Result<u64, VmError> {
        let off = self.check(addr, 8)?;
        if off % 8 != 0 {
            return Err(VmError::Unsupported(format!("misaligned u64 atomic at {addr:#x}")));
        }
        // SAFETY: in-bounds and aligned; AtomicU64 has the same layout as u64.
        let atom = unsafe { &*(self.base().add(off) as *const AtomicU64) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let new = f(cur);
            match atom.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prev) => return Ok(prev),
                Err(observed) => cur = observed,
            }
        }
    }
}

/// The per-warp view of all address spaces, assembled by the execution
/// manager before calling into a kernel.
#[derive(Debug)]
pub struct MemAccess<'a> {
    /// Grid-wide global memory.
    pub global: &'a GlobalMem,
    /// This CTA's shared memory.
    pub shared: &'a mut [u8],
    /// The local-memory arena of this execution manager; thread contexts
    /// carry byte offsets into it.
    pub local: &'a mut [u8],
    /// The kernel parameter buffer.
    pub param: &'a [u8],
    /// The module constant bank.
    pub cbank: &'a [u8],
}

impl<'a> MemAccess<'a> {
    fn slice_for(&self, space: Space) -> Result<&[u8], VmError> {
        Ok(match space {
            Space::Shared => &*self.shared,
            Space::Local => &*self.local,
            Space::Param => self.param,
            Space::Const => self.cbank,
            Space::Global => unreachable!("global handled separately"),
        })
    }

    /// Read `size` (1/2/4/8) bytes from `space` at `addr` as a little-endian
    /// `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] on a bad access.
    pub fn read(&self, space: Space, addr: u64, size: usize) -> Result<u64, VmError> {
        if space == Space::Global {
            return Ok(match size {
                1 => self.global.read::<1>(addr)?[0] as u64,
                2 => u16::from_le_bytes(self.global.read::<2>(addr)?) as u64,
                4 => u32::from_le_bytes(self.global.read::<4>(addr)?) as u64,
                8 => u64::from_le_bytes(self.global.read::<8>(addr)?),
                _ => return Err(VmError::Unsupported(format!("load size {size}"))),
            });
        }
        let s = self.slice_for(space)?;
        let a = addr as usize;
        if a.checked_add(size).map(|e| e <= s.len()).unwrap_or(false) {
            let mut buf = [0u8; 8];
            buf[..size].copy_from_slice(&s[a..a + size]);
            Ok(u64::from_le_bytes(buf))
        } else {
            Err(VmError::OutOfBounds { space, addr, size, space_size: s.len() })
        }
    }

    /// Write the low `size` bytes of `value` to `space` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfBounds`] on a bad access and
    /// [`VmError::Unsupported`] for writes to read-only spaces.
    pub fn write(
        &mut self,
        space: Space,
        addr: u64,
        size: usize,
        value: u64,
    ) -> Result<(), VmError> {
        let bytes = value.to_le_bytes();
        match space {
            Space::Global => match size {
                1 => self.global.write::<1>(addr, [bytes[0]]),
                2 => self.global.write::<2>(addr, [bytes[0], bytes[1]]),
                4 => self.global.write::<4>(addr, [bytes[0], bytes[1], bytes[2], bytes[3]]),
                8 => self.global.write::<8>(addr, bytes),
                _ => Err(VmError::Unsupported(format!("store size {size}"))),
            },
            Space::Param | Space::Const => {
                Err(VmError::Unsupported(format!("store to read-only space {space:?}")))
            }
            Space::Shared | Space::Local => {
                let s: &mut [u8] = if space == Space::Shared { self.shared } else { self.local };
                let a = addr as usize;
                if a.checked_add(size).map(|e| e <= s.len()).unwrap_or(false) {
                    s[a..a + size].copy_from_slice(&bytes[..size]);
                    Ok(())
                } else {
                    Err(VmError::OutOfBounds { space, addr, size, space_size: s.len() })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_read_write_round_trip() {
        let g = GlobalMem::new(64);
        g.write::<4>(8, 0xDEADBEEFu32.to_le_bytes()).unwrap();
        assert_eq!(u32::from_le_bytes(g.read::<4>(8).unwrap()), 0xDEADBEEF);
    }

    #[test]
    fn global_bounds_checked() {
        let g = GlobalMem::new(16);
        assert!(g.read::<8>(12).is_err());
        assert!(g.write::<4>(u64::MAX, [0; 4]).is_err());
    }

    #[test]
    fn zero_sized_access_past_the_end_is_rejected() {
        let g = GlobalMem::new(16);
        assert!(g.copy_in(16, &[]).is_err());
        assert!(g.copy_out(17, &mut []).is_err());
        // Zero-sized copies at a valid address remain fine.
        assert!(g.copy_in(15, &[]).is_ok());
        assert!(g.copy_in(0, &[]).is_ok());
    }

    #[test]
    fn atomic_add_accumulates() {
        let g = GlobalMem::new(16);
        for _ in 0..10 {
            g.atomic_rmw_u32(4, |v| v + 3).unwrap();
        }
        assert_eq!(u32::from_le_bytes(g.read::<4>(4).unwrap()), 30);
    }

    #[test]
    fn atomic_rejects_misaligned() {
        let g = GlobalMem::new(16);
        assert!(matches!(g.atomic_rmw_u32(2, |v| v), Err(VmError::Unsupported(_))));
    }

    #[test]
    fn mem_access_spaces() {
        let g = GlobalMem::new(32);
        let mut shared = vec![0u8; 16];
        let mut local = vec![0u8; 16];
        let param = vec![7u8, 0, 0, 0];
        let cbank = vec![9u8];
        let mut m = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &param,
            cbank: &cbank,
        };
        m.write(Space::Shared, 0, 4, 42).unwrap();
        assert_eq!(m.read(Space::Shared, 0, 4).unwrap(), 42);
        m.write(Space::Local, 8, 8, u64::MAX).unwrap();
        assert_eq!(m.read(Space::Local, 8, 8).unwrap(), u64::MAX);
        assert_eq!(m.read(Space::Param, 0, 4).unwrap(), 7);
        assert_eq!(m.read(Space::Const, 0, 1).unwrap(), 9);
        assert!(m.write(Space::Param, 0, 4, 1).is_err());
        assert!(m.read(Space::Shared, 14, 4).is_err());
    }

    #[test]
    fn concurrent_atomic_adds_do_not_lose_updates() {
        let g = GlobalMem::new(8);
        let g2 = Arc::clone(&g);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = Arc::clone(&g2);
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.atomic_rmw_u32(0, |v| v + 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 4000);
    }
}
