//! Runtime errors of the vector machine.

use std::fmt;

use dpvk_ir::Space;

/// Error raised while executing a kernel on the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A memory access fell outside its space.
    OutOfBounds {
        /// The accessed space.
        space: Space,
        /// Byte address of the access.
        addr: u64,
        /// Access size in bytes.
        size: usize,
        /// Size of the space in bytes.
        space_size: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The watchdog instruction limit was exceeded (runaway kernel).
    Watchdog {
        /// The limit that was hit.
        limit: u64,
    },
    /// The launch's wall-clock deadline passed while a warp was running.
    Deadline,
    /// The launch was cancelled cooperatively (by the host or by the
    /// runtime aborting a doomed launch).
    Cancelled,
    /// An instruction the interpreter cannot execute (e.g. a misaligned
    /// atomic).
    Unsupported(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { space, addr, size, space_size } => write!(
                f,
                "out-of-bounds access: {size} bytes at {addr:#x} in {space:?} (size {space_size})"
            ),
            VmError::DivisionByZero => write!(f, "integer division by zero"),
            VmError::Watchdog { limit } => {
                write!(f, "watchdog: instruction limit {limit} exceeded")
            }
            VmError::Deadline => write!(f, "launch deadline exceeded"),
            VmError::Cancelled => write!(f, "launch cancelled"),
            VmError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_space_and_address() {
        let e = VmError::OutOfBounds { space: Space::Global, addr: 64, size: 4, space_size: 32 };
        let s = e.to_string();
        assert!(s.contains("Global") && s.contains("0x40"), "{s}");
    }
}
