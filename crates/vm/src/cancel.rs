//! Cooperative cancellation for kernel launches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag checked cooperatively by the interpreter
/// (every [`ExecLimits::check_interval`](crate::ExecLimits::check_interval)
/// instructions) and by the execution manager at CTA boundaries.
///
/// Clones share the same flag, so one token handed to
/// `Device::launch_cancellable` can be cancelled from any thread. The
/// runtime also cancels the launch's token itself when a worker faults,
/// so sibling workers stop early instead of burning CPU on a doomed
/// launch; a token is therefore good for **one** launch and should not be
/// reused.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn cancel_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancel_crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }
}
