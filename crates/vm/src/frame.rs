//! Flat register frames: the per-function slot layout the interpreter
//! executes against.
//!
//! A [`FrameLayout`] is computed once per compiled specialization and maps
//! every virtual register to a contiguous run of `u64` lane slots (one
//! slot for scalars, `width` slots for vectors). [`RegFrame`] is the
//! reusable backing storage: an execution manager keeps one per worker
//! and re-prepares it for each warp call, so the interpreter performs no
//! heap allocation per instruction — or, once the frame has grown to the
//! largest specialization it has seen, per warp.

use dpvk_ir::{Function, VReg};

/// Slot offsets and lane widths for every register of one function.
///
/// The layout assumes the function is verified: the declared type of each
/// register (width included) matches every instruction that reads or
/// writes it, which `dpvk-core` guarantees by running the IR verifier on
/// all compiled specializations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// First slot of each register, indexed by `VReg::index()`.
    offsets: Vec<u32>,
    /// Lane count of each register (1 for scalars).
    widths: Vec<u32>,
    /// Total slot count.
    slots: usize,
}

impl FrameLayout {
    /// Compute the layout of `f`'s register file.
    pub fn of(f: &Function) -> Self {
        let mut offsets = Vec::with_capacity(f.regs.len());
        let mut widths = Vec::with_capacity(f.regs.len());
        let mut slots = 0u32;
        for t in &f.regs {
            offsets.push(slots);
            let w = if t.is_vector() { t.width } else { 1 };
            widths.push(w);
            slots += w;
        }
        FrameLayout { offsets, widths, slots: slots as usize }
    }

    /// Total `u64` slots a frame for this layout needs.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of registers covered by this layout.
    pub fn regs(&self) -> usize {
        self.offsets.len()
    }

    /// First slot of register `r`.
    #[inline]
    pub fn offset(&self, r: VReg) -> usize {
        self.offsets[r.index()] as usize
    }

    /// Lane count of register `r` (1 for scalars).
    #[inline]
    pub fn width(&self, r: VReg) -> usize {
        self.widths[r.index()] as usize
    }
}

/// Reusable backing storage for a register frame.
///
/// `prepare` zeroes and sizes the buffer for a layout without shrinking
/// its capacity, so a frame reused across warp calls stops allocating once
/// it has grown to the largest layout it serves.
#[derive(Debug, Default)]
pub struct RegFrame {
    slots: Vec<u64>,
}

impl RegFrame {
    /// An empty frame (allocates nothing until first use).
    pub fn new() -> Self {
        RegFrame { slots: Vec::new() }
    }

    /// Zero the frame and size it for `layout`, returning the slot slice.
    pub(crate) fn prepare(&mut self, layout: &FrameLayout) -> &mut [u64] {
        self.prepare_slots(layout.slots())
    }

    /// Zero the frame and size it to `slots` slots, returning the slot
    /// slice. The bytecode engine's entry point: a decoded program caches
    /// its slot count, so no layout walk is needed per warp call.
    pub(crate) fn prepare_slots(&mut self, slots: usize) -> &mut [u64] {
        self.slots.clear();
        self.slots.resize(slots, 0);
        &mut self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_ir::{STy, Type};

    #[test]
    fn layout_packs_scalars_and_vectors() {
        let mut f = Function::new("t", 4);
        let a = f.new_reg(Type::scalar(STy::I32));
        let v = f.new_reg(Type::vector(STy::F32, 4));
        let b = f.new_reg(Type::scalar(STy::I64));
        let l = FrameLayout::of(&f);
        assert_eq!(l.slots(), 6);
        assert_eq!(l.regs(), 3);
        assert_eq!((l.offset(a), l.width(a)), (0, 1));
        assert_eq!((l.offset(v), l.width(v)), (1, 4));
        assert_eq!((l.offset(b), l.width(b)), (5, 1));
    }

    #[test]
    fn frame_reuse_keeps_capacity() {
        let mut f = Function::new("t", 4);
        f.new_reg(Type::vector(STy::I32, 8));
        let big = FrameLayout::of(&f);
        let mut g = Function::new("t", 1);
        g.new_reg(Type::scalar(STy::I32));
        let small = FrameLayout::of(&g);

        let mut frame = RegFrame::new();
        let s = frame.prepare(&big);
        s[7] = 99;
        let cap = frame.slots.capacity();
        let s = frame.prepare(&small);
        assert_eq!(s, &[0]);
        assert_eq!(frame.slots.capacity(), cap, "prepare must not shrink");
        assert!(frame.prepare(&big).iter().all(|&v| v == 0), "prepare zeroes");
    }
}
