//! The instruction cost model.
//!
//! Costs are issue-slot counts on the modeled core. The two mechanisms
//! that shape the paper's results are reproduced directly:
//!
//! 1. A vector operation of `w` lanes costs `ceil(w / machine_width)`
//!    issues — warps up to the machine width amortize perfectly, wider
//!    warps serialize into multiple machine ops.
//! 2. When the live vector state of a function (in machine-register units)
//!    exceeds the architectural vector register file, every vector
//!    instruction pays a spill penalty — this is the Table 1 collapse at
//!    warp size 8 on a 4-wide machine.

use std::collections::HashSet;

use dpvk_ir::{BinOp, Function, Inst, Liveness, Space, Term, Type, UnOp, VReg};

use crate::machine::MachineModel;

/// Per-function cost information computed once at translation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostInfo {
    /// Maximum machine vector registers simultaneously live.
    pub max_live_machine_vregs: u64,
    /// Extra cycles added to each vector-instruction chunk when the live
    /// set exceeds the register file (0 when it fits).
    pub spill_extra_per_chunk: u64,
}

impl CostInfo {
    /// Analyze `f` under `model`.
    pub fn analyze(f: &Function, model: &MachineModel) -> Self {
        let max_live = max_live_machine_vregs(f, model);
        let spill_extra_per_chunk =
            if max_live > model.vector_registers as u64 { model.spill_penalty as u64 } else { 0 };
        CostInfo { max_live_machine_vregs: max_live, spill_extra_per_chunk }
    }

    /// Cost info with no pressure (useful for tests).
    pub fn zero() -> Self {
        CostInfo { max_live_machine_vregs: 0, spill_extra_per_chunk: 0 }
    }
}

/// Maximum, over all program points, of the number of *machine* vector
/// registers needed to hold the live vector values (each IR vector
/// register of width `w` needs `chunks(w)` machine registers).
fn max_live_machine_vregs(f: &Function, model: &MachineModel) -> u64 {
    let lv = Liveness::compute(f);
    let weight = |r: VReg| -> u64 {
        let t = f.reg_type(r);
        if t.is_vector() {
            model.chunks(t.width, t.scalar.size_bytes())
        } else {
            0
        }
    };
    let mut max = 0u64;
    for (i, b) in f.blocks.iter().enumerate() {
        let mut live: HashSet<VReg> =
            lv.live_out[i].iter().copied().filter(|&r| f.reg_type(r).is_vector()).collect();
        let mut cur: u64 = live.iter().map(|&r| weight(r)).sum();
        max = max.max(cur);
        for inst in b.insts.iter().rev() {
            if let Some(d) = inst.dst() {
                if live.remove(&d) {
                    cur -= weight(d);
                }
            }
            for v in inst.uses() {
                if let Some(r) = v.as_reg() {
                    if f.reg_type(r).is_vector() && live.insert(r) {
                        cur += weight(r);
                    }
                }
            }
            max = max.max(cur);
        }
    }
    max
}

fn chunks_of(ty: Type, model: &MachineModel) -> u64 {
    model.chunks(ty.width, ty.scalar.size_bytes())
}

/// Modeled issue cost of one instruction.
pub fn inst_cost(inst: &Inst, model: &MachineModel, info: &CostInfo) -> u64 {
    use Inst::*;
    let vec_cost = |ty: Type, base: u64| -> u64 {
        let c = chunks_of(ty, model);
        let spill = if ty.is_vector() { info.spill_extra_per_chunk * c } else { 0 };
        base * c + spill
    };
    match inst {
        Bin { op, ty, .. } => {
            let base = match op {
                BinOp::Div => {
                    if ty.scalar.is_float() {
                        14
                    } else {
                        20
                    }
                }
                BinOp::Rem => 20,
                BinOp::MulHi => 3,
                _ => 1,
            };
            vec_cost(*ty, base)
        }
        Un { op, ty, .. } => {
            let base = match op {
                UnOp::Sqrt => 14,
                UnOp::Rsqrt | UnOp::Rcp => 5,
                UnOp::Sin | UnOp::Cos => 16,
                UnOp::Ex2 | UnOp::Lg2 => 12,
                UnOp::Neg | UnOp::Not | UnOp::Abs => 1,
            };
            vec_cost(*ty, base)
        }
        Fma { ty, .. } => vec_cost(*ty, 1),
        Cmp { ty, .. } => vec_cost(*ty, 1),
        Select { ty, .. } => vec_cost(*ty, 1),
        Cvt { to, from, width, .. } => {
            let ty = Type {
                scalar: if to.size_bytes() > from.size_bytes() { *to } else { *from },
                width: *width,
            };
            vec_cost(ty, 2)
        }
        // Loads model L1-resident latency-hidden accesses (Sandybridge
        // sustains two loads per cycle; in this 1-IPC model a hot load is
        // one issue). Global memory pays an extra cycle for the cache
        // hierarchy.
        Load { space, .. } => match space {
            Space::Global => 2,
            _ => 1,
        },
        Store { .. } => 1,
        Atom { .. } => 20,
        // Pack/unpack touch a single machine register regardless of the
        // IR vector width.
        Insert { .. } | Extract { .. } => 1 + info.spill_extra_per_chunk,
        Splat { ty, .. } => vec_cost(*ty, 1),
        Reduce { ty, .. } => vec_cost(*ty, 1) + 1,
        CtxRead { .. } => 2,
        SetResumePoint { .. } => 2,
        SetResumeStatus { .. } => 1,
        Vote { .. } => 1,
        Mov { ty, .. } => vec_cost(*ty, 1),
    }
}

/// Modeled issue cost of a terminator.
pub fn term_cost(term: &Term) -> u64 {
    match term {
        Term::Br(_) => 1,
        Term::CondBr { .. } => 2,
        Term::Switch { .. } => 3,
        Term::Ret => 2,
    }
}

/// Single-precision-equivalent FLOPs performed by one instruction.
pub fn inst_flops(inst: &Inst) -> u64 {
    use Inst::*;
    match inst {
        Bin {
            op: BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max,
            ty,
            ..
        } if ty.scalar.is_float() => ty.width as u64,
        Fma { ty, .. } if ty.scalar.is_float() => 2 * ty.width as u64,
        Un { op, ty, .. } if ty.scalar.is_float() && op.is_transcendental() => ty.width as u64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpvk_ir::{STy, Value};

    fn fma(ty: Type) -> Inst {
        Inst::Fma {
            ty,
            dst: VReg(0),
            a: Value::Reg(VReg(0)),
            b: Value::Reg(VReg(0)),
            c: Value::Reg(VReg(0)),
        }
    }

    #[test]
    fn vector_fma_amortizes_up_to_machine_width() {
        let m = MachineModel::sandybridge_sse();
        let z = CostInfo::zero();
        assert_eq!(inst_cost(&fma(Type::scalar(STy::F32)), &m, &z), 1);
        assert_eq!(inst_cost(&fma(Type::vector(STy::F32, 4)), &m, &z), 1);
        assert_eq!(inst_cost(&fma(Type::vector(STy::F32, 8)), &m, &z), 2);
    }

    #[test]
    fn spill_pressure_adds_cost() {
        let m = MachineModel::sandybridge_sse();
        let info = CostInfo { max_live_machine_vregs: 20, spill_extra_per_chunk: 2 };
        // width 8 = 2 chunks, each paying 2 extra: 2*1 + 2*2 = 6.
        assert_eq!(inst_cost(&fma(Type::vector(STy::F32, 8)), &m, &info), 6);
        // scalar ops never pay the penalty.
        assert_eq!(inst_cost(&fma(Type::scalar(STy::F32)), &m, &info), 1);
    }

    #[test]
    fn flops_counting() {
        assert_eq!(inst_flops(&fma(Type::vector(STy::F32, 4))), 8);
        assert_eq!(inst_flops(&fma(Type::scalar(STy::F32))), 2);
        let add = Inst::Bin {
            op: BinOp::Add,
            ty: Type::vector(STy::F32, 2),
            signed: false,
            dst: VReg(0),
            a: Value::Reg(VReg(0)),
            b: Value::Reg(VReg(0)),
        };
        assert_eq!(inst_flops(&add), 2);
        let iadd = Inst::Bin {
            op: BinOp::Add,
            ty: Type::scalar(STy::I32),
            signed: false,
            dst: VReg(0),
            a: Value::Reg(VReg(0)),
            b: Value::Reg(VReg(0)),
        };
        assert_eq!(inst_flops(&iadd), 0);
    }

    #[test]
    fn pressure_analysis_detects_overflow() {
        // Build a function with 20 live 8-wide vectors on a 4-wide machine:
        // 40 machine registers, far over the 16 available.
        let m = MachineModel::sandybridge_sse();
        let mut f = Function::new("hot", 8);
        let ty = Type::vector(STy::F32, 8);
        let regs: Vec<VReg> = (0..20).map(|_| f.new_reg(ty)).collect();
        let acc = f.new_reg(ty);
        let mut b = dpvk_ir::Block::new("entry");
        for &r in &regs {
            b.insts.push(Inst::Splat { ty, dst: r, a: Value::ImmF(1.0) });
        }
        // Use them all at once so they are simultaneously live.
        for &r in &regs {
            b.insts.push(Inst::Bin {
                op: BinOp::Add,
                ty,
                signed: false,
                dst: acc,
                a: Value::Reg(acc),
                b: Value::Reg(r),
            });
        }
        b.term = Term::Ret;
        f.add_block(b);
        // `acc` must be kept live: store it.
        let info = CostInfo::analyze(&f, &m);
        assert!(info.max_live_machine_vregs >= 40, "{info:?}");
        assert_eq!(info.spill_extra_per_chunk, m.spill_penalty as u64);
    }

    #[test]
    fn narrow_function_has_no_penalty() {
        let m = MachineModel::sandybridge_sse();
        let mut f = Function::new("cold", 4);
        let ty = Type::vector(STy::F32, 4);
        let a = f.new_reg(ty);
        let mut b = dpvk_ir::Block::new("entry");
        b.insts.push(Inst::Splat { ty, dst: a, a: Value::ImmF(0.0) });
        b.term = Term::Ret;
        f.add_block(b);
        let info = CostInfo::analyze(&f, &m);
        assert_eq!(info.spill_extra_per_chunk, 0);
    }
}
