//! Per-thread execution contexts.

use dpvk_ir::EXIT_ENTRY_ID;

/// The context object of one logical thread, as described in the paper's
/// Section 4: grid and block geometry, the thread's position, and the base
/// of its private (local) memory. The execution manager owns one context
/// per live thread and hands warps of them to vectorized kernels.
/// The layout is `repr(C)` so the JIT tier (`crate::jit`) can address
/// fields with compile-time offsets; field order is part of that
/// contract.
#[derive(Debug, Clone, PartialEq, Eq)]
#[repr(C)]
pub struct ThreadContext {
    /// Thread index within its CTA.
    pub tid: [u32; 3],
    /// CTA dimensions.
    pub ntid: [u32; 3],
    /// CTA index within the grid.
    pub ctaid: [u32; 3],
    /// Grid dimensions in CTAs.
    pub nctaid: [u32; 3],
    /// Byte offset of this thread's private memory within the execution
    /// manager's local arena.
    pub local_base: u64,
    /// Entry-point id at which the thread resumes ([`EXIT_ENTRY_ID`] once
    /// terminated). Entry id 0 is the kernel entry.
    pub resume_point: i64,
}

impl ThreadContext {
    /// Context for thread `tid` of CTA `ctaid` in a grid of `nctaid` CTAs
    /// of `ntid` threads, starting at the kernel entry.
    pub fn new(tid: [u32; 3], ntid: [u32; 3], ctaid: [u32; 3], nctaid: [u32; 3]) -> Self {
        ThreadContext { tid, ntid, ctaid, nctaid, local_base: 0, resume_point: 0 }
    }

    /// Flat thread index within its CTA.
    pub fn flat_tid(&self) -> u32 {
        self.tid[0] + self.ntid[0] * (self.tid[1] + self.ntid[1] * self.tid[2])
    }

    /// Flat CTA index within the grid.
    pub fn flat_ctaid(&self) -> u32 {
        self.ctaid[0] + self.nctaid[0] * (self.ctaid[1] + self.nctaid[1] * self.ctaid[2])
    }

    /// Threads per CTA.
    pub fn cta_size(&self) -> u32 {
        self.ntid[0] * self.ntid[1] * self.ntid[2]
    }

    /// Whether this thread has terminated.
    pub fn is_terminated(&self) -> bool {
        self.resume_point == EXIT_ENTRY_ID
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_indices() {
        let c = ThreadContext::new([1, 2, 0], [4, 4, 1], [3, 0, 0], [8, 1, 1]);
        assert_eq!(c.flat_tid(), 1 + 4 * 2);
        assert_eq!(c.flat_ctaid(), 3);
        assert_eq!(c.cta_size(), 16);
        assert!(!c.is_terminated());
    }

    #[test]
    fn termination_flag() {
        let mut c = ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1]);
        c.resume_point = EXIT_ENTRY_ID;
        assert!(c.is_terminated());
    }
}
