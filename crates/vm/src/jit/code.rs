//! W^X executable code pages for the JIT tier.
//!
//! Pages are allocated read/write with raw `mmap`, filled with emitted
//! machine code, then flipped to read/execute with `mprotect` — never
//! writable and executable at the same time. The syscalls are declared
//! directly (no `libc` dependency); the module only compiles on the
//! Unix hosts the JIT supports, and callers gate on
//! [`ExecMem::supported`] before allocating.

#![allow(non_camel_case_types)]

#[cfg(all(target_arch = "x86_64", any(target_os = "linux", target_os = "macos")))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 2;
    #[cfg(target_os = "linux")]
    pub const MAP_ANONYMOUS: i32 = 0x20;
    #[cfg(target_os = "macos")]
    pub const MAP_ANONYMOUS: i32 = 0x1000;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// One mmap'd code region, write-filled once and then sealed RX for the
/// rest of its life. Unmapped on drop.
#[derive(Debug)]
pub struct ExecMem {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: after `seal` the region is immutable executable memory; the
// raw pointer is only written between `new` and `seal`, on one thread.
unsafe impl Send for ExecMem {}
unsafe impl Sync for ExecMem {}

impl ExecMem {
    /// Whether this host can map executable pages at all.
    pub fn supported() -> bool {
        cfg!(all(target_arch = "x86_64", any(target_os = "linux", target_os = "macos")))
    }

    /// Map a writable (not yet executable) region, copy `code` into it,
    /// and seal it read/execute. Returns `None` off-platform or if the
    /// kernel refuses the mapping.
    pub fn with_code(code: &[u8]) -> Option<ExecMem> {
        #[cfg(all(target_arch = "x86_64", any(target_os = "linux", target_os = "macos")))]
        {
            if code.is_empty() {
                return None;
            }
            let page = 4096usize;
            let len = code.len().div_ceil(page) * page;
            // SAFETY: anonymous private mapping with no fixed address;
            // the result is checked against MAP_FAILED.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if ptr == sys::MAP_FAILED || ptr.is_null() {
                return None;
            }
            let ptr = ptr as *mut u8;
            // SAFETY: the region is `len >= code.len()` bytes, RW, freshly
            // mapped and exclusively owned.
            unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len()) };
            // SAFETY: flipping our own fresh mapping from RW to RX.
            let rc = unsafe { sys::mprotect(ptr as *mut _, len, sys::PROT_READ | sys::PROT_EXEC) };
            if rc != 0 {
                // SAFETY: unmapping the mapping created above.
                unsafe { sys::munmap(ptr as *mut _, len) };
                return None;
            }
            Some(ExecMem { ptr, len })
        }
        #[cfg(not(all(target_arch = "x86_64", any(target_os = "linux", target_os = "macos"))))]
        {
            let _ = code;
            None
        }
    }

    /// Base address of the sealed region.
    pub fn base(&self) -> *const u8 {
        self.ptr
    }

    /// Mapped length in bytes (page-rounded).
    pub fn len(&self) -> usize {
        self.len
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", any(target_os = "linux", target_os = "macos")))]
        // SAFETY: `ptr`/`len` came from the successful mmap in `with_code`
        // and the region is not referenced after drop (callers hold the
        // `ExecMem` alive for as long as any code pointer into it).
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}
